"""Extension ablation — boundary refinement vs deeper recursion.

Refinement competes with simply recursing to smaller blocks: both shave
the delta at the cost of map bytes.  The interesting regime is coarse
minimum block sizes, where a handful of binary-search probes replaces
whole extra rounds of hashes.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig


def test_ablation_refinement(benchmark, gcc_tree):
    rows = []
    totals = {}
    for min_block in (256, 128, 64):
        for refine in (False, True):
            config = ProtocolConfig(
                min_block_size=min_block,
                continuation_min_block_size=None,
                refine_boundaries=refine,
            )
            run = run_method_on_collection(
                OursMethod(config), gcc_tree.old, gcc_tree.new
            )
            totals[(min_block, refine)] = run.total_bytes
            rows.append(
                [
                    min_block,
                    "on" if refine else "off",
                    format_kb(
                        run.breakdown.get("s2c/map", 0)
                        + run.breakdown.get("c2s/map", 0)
                    ),
                    format_kb(run.breakdown.get("s2c/delta", 0)),
                    format_kb(run.total_bytes),
                ]
            )

    publish(
        "ablation_refinement",
        render_table(
            ["min block", "refinement", "map KB", "delta KB", "total KB"],
            rows,
            title="Ablation — boundary refinement (gcc-like)",
        ),
    )

    # Refinement must help at coarse granularity...
    assert totals[(256, True)] < totals[(256, False)]
    # ...and never hurt badly anywhere.
    for min_block in (256, 128, 64):
        assert totals[(min_block, True)] < 1.1 * totals[(min_block, False)]

    benchmark.extra_info["gain_at_256"] = round(
        (totals[(256, False)] - totals[(256, True)]) / 1024, 1
    )
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
