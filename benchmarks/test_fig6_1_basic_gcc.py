"""Figure 6.1 — basic protocol vs minimum block size on the gcc data set.

The paper's basic configuration: recursive halving + decomposable hashes
+ one (trivial) verification hash per candidate, *no* continuation/local
hashes or phase splitting.  Cost is plotted against the minimum block
size, with bars split into map-phase server→client, map-phase
client→server, and the final delta; rsync (default and per-file optimal)
and zdelta are the reference lines.

Expected shape (paper): a U-curve with the optimum around 32–128 bytes;
the basic protocol already beats rsync but stays ~2x above zdelta.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    RsyncMethod,
    RsyncOptimalMethod,
    ZdeltaMethod,
    format_kb,
    render_grouped_bars,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig

MIN_BLOCK_SIZES = (512, 256, 128, 64, 32, 16)


def basic_config(min_block: int) -> ProtocolConfig:
    """The Figure 6.1 configuration (techniques a + d only)."""
    return ProtocolConfig(
        min_block_size=min_block,
        continuation_min_block_size=None,
        continuation_first=False,
        use_decomposable=True,
        verification="trivial",
    )


def test_fig6_1_basic_gcc(benchmark, gcc_tree):
    rows = []
    series: dict[str, list[float]] = {"s2c map": [], "c2s map": [], "delta": []}
    totals = {}
    for min_block in MIN_BLOCK_SIZES:
        run = run_method_on_collection(
            OursMethod(basic_config(min_block), name=f"ours(min={min_block})"),
            gcc_tree.old,
            gcc_tree.new,
        )
        s2c_map = run.breakdown.get("s2c/map", 0)
        c2s_map = run.breakdown.get("c2s/map", 0)
        delta = run.breakdown.get("s2c/delta", 0)
        series["s2c map"].append(s2c_map / 1024)
        series["c2s map"].append(c2s_map / 1024)
        series["delta"].append(delta / 1024)
        totals[min_block] = run.total_bytes
        rows.append(
            [
                min_block,
                format_kb(s2c_map),
                format_kb(c2s_map),
                format_kb(delta),
                format_kb(run.total_bytes),
            ]
        )

    baselines = {}
    for method in (RsyncMethod(), RsyncOptimalMethod(), ZdeltaMethod()):
        run = run_method_on_collection(method, gcc_tree.old, gcc_tree.new)
        baselines[method.name] = run.total_bytes
        rows.append(
            [method.name, "-", "-", "-", format_kb(run.total_bytes)]
        )

    table = render_table(
        ["min block / method", "s2c map KB", "c2s map KB", "delta KB",
         "total KB"],
        rows,
        title=(
            "Figure 6.1 — basic protocol on gcc-like data set "
            f"({len(gcc_tree.old)} files, {gcc_tree.old_bytes / 1e6:.2f} MB)"
        ),
    )
    chart = render_grouped_bars(
        [str(b) for b in MIN_BLOCK_SIZES], series,
        title="cost split by phase (KB)",
    )
    publish("fig6_1_basic_gcc", table + "\n\n" + chart)

    # Shape assertions from the paper.
    best = min(totals.values())
    assert best < baselines["rsync"], "basic protocol must beat rsync default"
    assert best < baselines["rsync-opt"], "and the idealised rsync"
    assert best < 4.0 * baselines["zdelta"], "within a small factor of zdelta"
    # U-shape: the extremes are worse than the interior optimum.
    interior_best = min(totals[b] for b in (128, 64, 32))
    assert interior_best <= totals[512]
    assert interior_best <= totals[16]

    # Time one representative unit: a full collection pass at min block 64.
    benchmark.extra_info["best_total_kb"] = round(best / 1024, 1)
    benchmark.extra_info["rsync_kb"] = round(baselines["rsync"] / 1024, 1)
    benchmark.extra_info["zdelta_kb"] = round(baselines["zdelta"] / 1024, 1)
    benchmark.pedantic(
        run_method_on_collection,
        args=(OursMethod(basic_config(64)), gcc_tree.old, gcc_tree.new),
        iterations=1,
        rounds=1,
    )
