"""Ablation 4 — candidate-hash bit budget.

The paper: "decreasing the number of bits sent to the server ... results
in some real matches being lost due to false positives taking their
place, and ultimately a larger delta."  Sweeping the global hash width
should show: too few bits → larger delta (lost matches); too many bits →
larger map phase; a plateau in between.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig

BIT_WIDTHS = (8, 12, 16, 20, 24, 28)


def test_ablation_candidate_bits(benchmark, gcc_tree):
    rows = []
    deltas = {}
    maps = {}
    totals = {}
    for bits in BIT_WIDTHS:
        config = ProtocolConfig(
            min_block_size=64,
            continuation_min_block_size=16,
            global_hash_bits=bits,
        )
        run = run_method_on_collection(
            OursMethod(config), gcc_tree.old, gcc_tree.new
        )
        deltas[bits] = run.breakdown.get("s2c/delta", 0)
        maps[bits] = run.breakdown.get("s2c/map", 0) + run.breakdown.get(
            "c2s/map", 0
        )
        totals[bits] = run.total_bytes
        rows.append(
            [
                bits,
                format_kb(maps[bits]),
                format_kb(deltas[bits]),
                format_kb(run.total_bytes),
            ]
        )

    publish(
        "ablation_candidate_bits",
        render_table(
            ["global hash bits", "map KB", "delta KB", "total KB"],
            rows,
            title="Ablation — candidate hash bit budget (gcc-like)",
        ),
    )

    # Starved hashes lose real matches: the delta at 8 bits must exceed
    # the delta at 20 bits.
    assert deltas[8] > deltas[20]
    # Starved hashes ALSO inflate the map phase: floods of false
    # candidates burn verification bits and force deeper recursion.
    assert maps[8] > maps[16]
    # Fat hashes pay in map bytes within the sane regime.
    assert maps[28] > maps[16]
    # And the best total sits strictly inside the sweep.
    best = min(totals, key=totals.get)
    assert best not in (BIT_WIDTHS[0],)

    benchmark.extra_info["best_bits"] = best
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
