"""Surgical repair vs full-transfer fallback: the recovery-byte gate.

The ISSUE's headline number: when a truncated-hash collision corrupts a
single block, the group-digest repair descent (DESIGN §15) must recover
the file with at least **4× fewer** bytes than the historical
NACK-plus-whole-file fallback, across every file of the seeded 64-file
workload.  The measured ratios are committed to ``BENCH_integrity.json``
— the artifact the CI ``integrity`` job uploads.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

from benchmarks.conftest import publish
from repro.bench import render_table
from repro.bench.perfbaseline import build_workload
from repro.multiround.protocol import multiround_rsync_sync
from repro.net.faults import CollisionFaultPlan, FaultKind
from repro.rsync import rsync_sync

#: Committed baseline: per-protocol repair-vs-fallback savings.
INTEGRITY_BASELINE = Path(__file__).parent.parent / "BENCH_integrity.json"

#: The acceptance bar: surgical repair must beat the full-transfer
#: fallback by at least this factor on every single-block collision.
MIN_SAVINGS_RATIO = 4.0


def _measure(sync, old: bytes, new: bytes, seed: int) -> tuple[int, int]:
    """(repair bytes, fallback bytes) for one forced collision."""
    repaired_plan = CollisionFaultPlan(seed=seed)
    repaired = sync(old, new, channel=repaired_plan.channel())
    assert repaired_plan.injected[FaultKind.COLLIDE] == 1
    assert repaired.reconstructed == new
    assert repaired.repaired, "collision must be repaired, not fallen back"
    assert repaired.collisions_detected == 1

    fallback_plan = CollisionFaultPlan(seed=seed)
    fallback = sync(
        old, new, channel=fallback_plan.channel(), repair=False
    )
    assert fallback.reconstructed == new
    assert fallback.used_fallback
    # The doomed delta plus the whole-file rescue, as rebilled by the
    # retransmission satellite.
    return repaired.repair_bytes, fallback.stats.retransmitted_bytes


def _multiround(old, new, channel, repair=True):
    from repro.multiround.protocol import MultiroundConfig

    return multiround_rsync_sync(
        old, new, config=MultiroundConfig(repair=repair), channel=channel
    )


def test_repair_savings_on_single_block_collisions():
    old_side, new_side = build_workload()
    assert len(old_side) == 64

    protocols = {
        "rsync": lambda old, new, channel, repair=True: rsync_sync(
            old, new, channel=channel, repair=repair
        ),
        "multiround": lambda old, new, channel, repair=True: (
            _multiround(old, new, channel, repair=repair)
        ),
    }

    results: dict[str, dict[str, object]] = {}
    rows = []
    for label, sync in protocols.items():
        ratios = []
        repair_total = fallback_total = 0
        for index, name in enumerate(sorted(old_side)):
            repair_bytes, fallback_bytes = _measure(
                sync, old_side[name], new_side[name], seed=index
            )
            assert repair_bytes > 0
            ratios.append(fallback_bytes / repair_bytes)
            repair_total += repair_bytes
            fallback_total += fallback_bytes
        worst = min(ratios)
        results[label] = {
            "files": len(ratios),
            "repair_bytes_total": repair_total,
            "fallback_bytes_total": fallback_total,
            "ratio_min": round(worst, 2),
            "ratio_median": round(statistics.median(ratios), 2),
            "ratio_max": round(max(ratios), 2),
        }
        rows.append([
            label,
            str(len(ratios)),
            f"{repair_total:,}",
            f"{fallback_total:,}",
            f"{worst:.1f}x",
            f"{statistics.median(ratios):.1f}x",
        ])
        # The gate: every file, not just the average, clears the bar.
        assert worst >= MIN_SAVINGS_RATIO, (
            f"{label}: worst repair savings {worst:.2f}x is below the "
            f"{MIN_SAVINGS_RATIO}x acceptance bar"
        )

    publish(
        "repair_savings",
        render_table(
            ["protocol", "files", "repair B", "fallback B",
             "worst savings", "median savings"],
            rows,
            title=(
                "surgical repair vs full-transfer fallback — forced "
                "single-block collisions, 64-file seeded workload "
                f"(gate: >= {MIN_SAVINGS_RATIO}x everywhere)"
            ),
        ),
    )
    INTEGRITY_BASELINE.write_text(
        json.dumps(
            {
                "workload": "build_workload(files=64, file_kb=384, "
                            "seed=20240806)",
                "collision": "CollisionFaultPlan(seed=<file index>), "
                             "one forced collision per file",
                "min_savings_ratio_gate": MIN_SAVINGS_RATIO,
                "protocols": results,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
