"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper's §6
(see DESIGN.md's per-experiment index).  Results are printed and also
written to ``benchmarks/results/<name>.txt`` so the numbers survive
pytest's output capturing; the ``benchmark`` fixture times a
representative unit of work for each experiment.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads import emacs_like, gcc_like, make_web_collection

RESULTS_DIR = Path(__file__).parent / "results"

#: Collection scale for the tree workloads (~1 MB at 0.4).  The real
#: data sets are ~27 MB; structure, not volume, drives the comparisons.
TREE_SCALE = 0.4
WEB_PAGES = 80


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def gcc_tree():
    return gcc_like(scale=TREE_SCALE, seed=0)


@pytest.fixture(scope="session")
def emacs_tree():
    return emacs_like(scale=TREE_SCALE, seed=1)


@pytest.fixture(scope="session")
def web_collection():
    return make_web_collection(page_count=WEB_PAGES, days=(0, 1, 2, 7), seed=2)
