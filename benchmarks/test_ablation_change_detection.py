"""Extension ablation — manifest vs Merkle-trie change detection.

The paper uses a full per-file fingerprint manifest ("efficient enough
for our data sets") and cites the file-comparison literature for better;
the trie reconciliation implements that better option.  Expected shape:
reconciliation cost tracks the number of *changes* (log-factor included),
the manifest tracks the number of *files*; the crossover sits at a small
changed fraction.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import format_kb, render_table
from repro.collection import Manifest, reconcile_manifests


def _collections(total: int, changed: int) -> tuple[Manifest, Manifest]:
    files = {f"site/page{i:06d}.html": b"v1:%d" % i for i in range(total)}
    new_files = dict(files)
    for i in range(changed):
        new_files[f"site/page{i:06d}.html"] = b"v2:%d" % i
    return Manifest.of_collection(files), Manifest.of_collection(new_files)


def test_ablation_change_detection(benchmark):
    total = 2000
    rows = []
    costs = {}
    for changed in (0, 1, 5, 20, 100, 500, 2000):
        client, server = _collections(total, changed)
        diff, channel = reconcile_manifests(client, server)
        assert len(diff.changed) == changed
        reconcile_cost = channel.stats.total_bytes
        manifest_cost = server.wire_bytes()
        costs[changed] = (reconcile_cost, manifest_cost)
        rows.append(
            [
                changed,
                format_kb(reconcile_cost),
                format_kb(manifest_cost),
                f"{manifest_cost / max(reconcile_cost, 1):.1f}x",
            ]
        )

    publish(
        "ablation_change_detection",
        render_table(
            ["files changed", "reconcile KB", "manifest KB", "advantage"],
            rows,
            title=(
                f"Ablation — change detection over {total} files "
                "(Merkle trie vs full manifest)"
            ),
        ),
    )

    # Near-static collections: an order of magnitude cheaper.
    assert costs[1][0] < costs[1][1] / 10
    # Cost grows with the change count...
    assert costs[1][0] < costs[20][0] < costs[500][0]
    # ...and degrades gracefully at full churn (bounded blowup).
    assert costs[2000][0] < 3 * costs[2000][1]

    client, server = _collections(total, 5)
    benchmark.pedantic(
        reconcile_manifests, args=(client, server), iterations=1, rounds=1
    )
