"""Extension ablation — broadcast vs per-client unicast (§7).

One server, ``k`` clients with different stale copies.  Unicast prunes
each client's hash stream aggressively but sends it ``k`` times;
broadcast sends one *unpruned* stream (no skip rules, no continuation)
whose cost amortises over the fleet.  The table reports server egress
per client as ``k`` grows and locates the crossover.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import format_kb, render_table
from repro.core import ProtocolConfig, synchronize
from repro.core.broadcast import synchronize_broadcast
from broadcast_data import make_fleet

FLEET_SIZES = (1, 2, 4, 8, 16)


def test_ablation_broadcast(benchmark):
    _clients, current = make_fleet(1, nbytes=40000, seed=20)
    config = ProtocolConfig(min_block_size=128)

    rows = []
    unicast_per_client = {}
    broadcast_per_client = {}
    for k in FLEET_SIZES:
        clients, _ = make_fleet(k, nbytes=40000, seed=20)
        # Unicast: server sends each client its own pruned stream.
        unicast_egress = 0
        for old in clients.values():
            result = synchronize(old, current, config)
            assert result.reconstructed == current
            unicast_egress += result.stats.server_to_client_bytes
        unicast_per_client[k] = unicast_egress / k

        report = synchronize_broadcast(clients, current, config)
        assert all(
            report.reconstructed[name] == current for name in clients
        )
        private_s2c = sum(
            stats.server_to_client_bytes
            for stats in report.per_client_stats.values()
        )
        broadcast_per_client[k] = (report.shared_bytes + private_s2c) / k
        rows.append(
            [
                k,
                format_kb(unicast_per_client[k]),
                format_kb(report.shared_bytes),
                format_kb(broadcast_per_client[k]),
            ]
        )

    publish(
        "ablation_broadcast",
        render_table(
            ["clients", "unicast s2c/client KB", "shared stream KB",
             "broadcast s2c/client KB"],
            rows,
            title="Ablation — server egress per client, unicast vs broadcast",
        ),
    )

    # Unicast egress per client is flat; broadcast's falls with k (the
    # remaining floor is each client's private delta + bitmaps, which no
    # amount of broadcasting removes).
    assert broadcast_per_client[16] < 0.5 * broadcast_per_client[1]
    assert broadcast_per_client[16] < broadcast_per_client[4]
    # The shared stream is the fixed overhead: at k=1 broadcast loses.
    assert broadcast_per_client[1] > unicast_per_client[1]

    clients, _ = make_fleet(4, nbytes=40000, seed=20)
    benchmark.pedantic(
        synchronize_broadcast, args=(clients, current, config),
        iterations=1, rounds=1,
    )
