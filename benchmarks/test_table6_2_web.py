"""Table 6.2 — cost of updating the web collection, by update frequency.

The paper's application benchmark: a client mirrors a crawled page
collection and synchronises every 1, 2, or 7 days.  Reported cost is KB
per update for each method.  Expected shape: our protocol improves over
rsync by nearly a factor of 2 and stays within a modest factor of zdelta;
longer gaps cost more per update but less per day.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    FullTransferMethod,
    OursMethod,
    RsyncMethod,
    ZdeltaMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig

WEB_CONFIG = ProtocolConfig(
    min_block_size=32,
    continuation_min_block_size=8,
    verification="group2",
)

GAPS = (1, 2, 7)


def test_table6_2_web(benchmark, web_collection):
    base = web_collection.snapshot(0)
    methods = [
        OursMethod(WEB_CONFIG),
        RsyncMethod(),
        ZdeltaMethod(),
        FullTransferMethod(),
    ]
    totals: dict[tuple[str, int], int] = {}
    rows = []
    for method in methods:
        row = [method.name]
        for gap in GAPS:
            run = run_method_on_collection(
                method, base, web_collection.snapshot(gap)
            )
            totals[(method.name, gap)] = run.total_bytes
            row.append(format_kb(run.total_bytes))
        rows.append(row)

    publish(
        "table6_2_web",
        render_table(
            ["method"] + [f"every {gap}d KB" for gap in GAPS],
            rows,
            title=(
                "Table 6.2 — updating the web collection "
                f"({web_collection.page_count} pages, "
                f"{web_collection.snapshot_bytes(0) / 1e6:.1f} MB)"
            ),
        ),
    )

    for gap in GAPS:
        ours = totals[("ours", gap)]
        # Nearly a factor of 2 over rsync (accept >= 1.5).
        assert totals[("rsync", gap)] > 1.5 * ours, gap
        assert ours < 3.0 * totals[("zdelta", gap)], gap
        assert totals[("gzip-full", gap)] > totals[("rsync", gap)], gap
    # Longer gaps cost more per update...
    assert totals[("ours", 7)] > totals[("ours", 1)]
    # ...but less per day of staleness.
    assert totals[("ours", 7)] / 7 < totals[("ours", 1)]

    benchmark.extra_info["ours_kb_by_gap"] = {
        gap: round(totals[("ours", gap)] / 1024, 1) for gap in GAPS
    }
    benchmark.pedantic(
        run_method_on_collection,
        args=(OursMethod(WEB_CONFIG), base, web_collection.snapshot(1)),
        iterations=1,
        rounds=1,
    )
