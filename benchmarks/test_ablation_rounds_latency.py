"""Extension ablation — roundtrip budget vs link latency (§7).

The paper notes that for large collections roundtrips amortise across
files, but asks what happens "restricted to just one or two round-trips".
Capping map-construction rounds trades bytes for latency; on a
high-latency link the capped variants win on wall-clock despite sending
more data.  (Wall-clock is modelled per file here — the uncapped
protocol's latency penalty is an upper bound, since batching across
files would amortise it.)
"""

from __future__ import annotations

from conftest import publish

from repro.bench import format_kb, render_table
from repro.core import ProtocolConfig, synchronize
from repro.net import LinkModel, SimulatedChannel
from repro.workloads import gcc_like

ROUND_CAPS = (1, 2, 4, None)
LINKS = {
    "lan (1ms)": LinkModel(bandwidth_bps=10_000_000, latency_s=0.001),
    "dsl (50ms)": LinkModel(bandwidth_bps=1_000_000, latency_s=0.05),
    "satellite (300ms)": LinkModel(bandwidth_bps=1_000_000, latency_s=0.3),
}


def test_ablation_rounds_latency(benchmark):
    tree = gcc_like(scale=0.1, seed=5)
    # One representative changed file pair keeps per-file latency honest.
    name = next(
        n for n in tree.common_names() if tree.old[n] != tree.new[n]
    )
    old, new = tree.old[name], tree.new[name]

    rows = []
    times: dict[tuple[str, object], float] = {}
    bytes_by_cap = {}
    for cap in ROUND_CAPS:
        config = ProtocolConfig(max_rounds=cap)
        base_channel = SimulatedChannel()
        result = synchronize(old, new, config, base_channel)
        assert result.reconstructed == new
        bytes_by_cap[cap] = result.total_bytes
        row = [
            "uncapped" if cap is None else f"{cap} rounds",
            format_kb(result.total_bytes),
            result.stats.roundtrips,
        ]
        for link_name, link in LINKS.items():
            seconds = link.transfer_time_directional(
                result.stats.client_to_server_bytes,
                result.stats.server_to_client_bytes,
                result.stats.roundtrips,
            )
            times[(link_name, cap)] = seconds
            row.append(f"{seconds:.2f}")
        rows.append(row)

    publish(
        "ablation_rounds_latency",
        render_table(
            ["round cap", "KB", "roundtrips"] + [f"{n} s" for n in LINKS],
            rows,
            title=f"Ablation — rounds vs latency (file {name}, "
                  f"{len(new)} B)",
        ),
    )

    # More rounds, fewer bytes.
    assert bytes_by_cap[1] >= bytes_by_cap[2] >= bytes_by_cap[None]
    # On the satellite link a capped variant beats the uncapped one.
    best_capped = min(times[("satellite (300ms)", cap)] for cap in (1, 2))
    assert best_capped < times[("satellite (300ms)", None)]
    # On the LAN the uncapped variant is at no meaningful disadvantage.
    assert times[("lan (1ms)", None)] < times[("satellite (300ms)", None)]

    benchmark.pedantic(
        synchronize, args=(old, new, ProtocolConfig(max_rounds=2)),
        iterations=1, rounds=1,
    )
