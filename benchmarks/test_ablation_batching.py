"""Extension ablation — roundtrip amortization across a collection.

"As in rsync itself, the roundtrip latencies are not incurred for each
file since many files can be processed simultaneously.  Thus, for large
collections additional roundtrips are not a problem."  Batched mode runs
every changed file in lockstep so the whole collection pays roughly one
latency budget; this table quantifies the claim on the web workload.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import format_kb, render_table
from repro.collection import sync_collection_batched
from repro.core import ProtocolConfig, synchronize
from repro.core.batch import synchronize_batch
from repro.net import LinkModel, SimulatedChannel


def test_ablation_batching(benchmark, web_collection):
    base = web_collection.snapshot(0)
    target = web_collection.snapshot(2)
    changed = {
        name: base[name]
        for name in base
        if base[name] != target[name]
    }
    link = LinkModel(bandwidth_bps=1_000_000, latency_s=0.05)

    # Per-file: every file pays its own roundtrips.
    per_file_bytes = 0
    per_file_roundtrips = 0
    for name in sorted(changed):
        channel = SimulatedChannel(link)
        result = synchronize(base[name], target[name], channel=channel)
        assert result.reconstructed == target[name]
        per_file_bytes += result.total_bytes
        per_file_roundtrips += channel.stats.roundtrips

    # Batched: one lockstep run.
    channel = SimulatedChannel(link)
    batch = synchronize_batch(
        changed, {name: target[name] for name in changed},
        ProtocolConfig(), channel,
    )
    assert all(batch.reconstructed[n] == target[n] for n in changed)

    rows = [
        [
            "per-file",
            format_kb(per_file_bytes),
            per_file_roundtrips,
            f"{link.transfer_time(per_file_bytes, per_file_roundtrips):.1f}",
        ],
        [
            "batched",
            format_kb(batch.total_bytes),
            batch.roundtrips,
            f"{link.transfer_time(batch.total_bytes, batch.roundtrips):.1f}",
        ],
    ]
    publish(
        "ablation_batching",
        render_table(
            ["mode", "KB", "roundtrips", "est. seconds (dsl)"],
            rows,
            title=(
                f"Ablation — roundtrip amortization "
                f"({len(changed)} changed pages, 2-day gap)"
            ),
        ),
    )

    assert batch.roundtrips < per_file_roundtrips / 3
    assert batch.total_bytes <= per_file_bytes * 1.05

    benchmark.extra_info["batched_roundtrips"] = batch.roundtrips
    benchmark.extra_info["per_file_roundtrips"] = per_file_roundtrips
    benchmark.pedantic(
        sync_collection_batched, args=(base, target), iterations=1, rounds=1
    )
