"""Perf-regression gate: current substrate timings vs the committed
baselines (BENCH_parallel.json and BENCH_delta.json).

Runs the same measurements that produced the committed baselines (see
``repro.bench.perfbaseline``) and fails if any op has slowed past the
tolerance, if the zero-copy arena dispatch has lost its edge over the
pickle path, or if the vectorized delta matcher has lost its edge over
the scalar oracle.

Environment knobs (CI machines differ from the reference box):

* ``REPRO_PERF_WORKERS``     executor workers (default 4)
* ``REPRO_PERF_TOLERANCE``   allowed slowdown fraction vs the committed
  baseline (default 2.0, i.e. 3x budget — generous for shared runners)
* ``REPRO_PERF_MIN_SPEEDUP`` arena-over-pickle floor for the *current*
  machine (default 1.05; the committed baseline itself must show >= 1.3)
* ``REPRO_PERF_MIN_DELTA_SPEEDUP`` vectorized-over-scalar delta floor
  for the *current* machine (default 1.5; the committed baseline itself
  must show >= 3.0)
* ``REPRO_PERF_MIN_PROTOCOL_SPEEDUP`` vectorized-over-scalar protocol
  engine floor for the *current* machine (default 1.5; the committed
  baseline itself must show >= 3.0)
* ``REPRO_PERF_MIN_PIPELINE_SPEEDUP`` pipelined-over-sequential link
  wall-clock floor (default 4.0 — the measurement is simulated and
  machine-independent, so current and committed use the same floor)
* ``REPRO_PERF_MIN_REUSE_SPEEDUP`` warm-over-cold Nth-client serve
  floor for the *current* machine (default 5.0; the committed baseline
  itself must show >= 5.0 too — the ISSUE 10 acceptance floor)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from conftest import publish
from repro.bench.perfbaseline import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_DELTA_BASELINE_NAME,
    DEFAULT_PIPELINE_BASELINE_NAME,
    DEFAULT_PROTOCOL_BASELINE_NAME,
    DEFAULT_REUSE_BASELINE_NAME,
    compare_baselines,
    load_baseline,
    measure,
    measure_delta,
    measure_pipeline,
    measure_protocol,
    measure_reuse,
    render_baseline,
    save_baseline,
)
from repro.parallel import arena_available

REPO_ROOT = Path(__file__).parent.parent
BASELINE_PATH = REPO_ROOT / DEFAULT_BASELINE_NAME
DELTA_BASELINE_PATH = REPO_ROOT / DEFAULT_DELTA_BASELINE_NAME
PROTOCOL_BASELINE_PATH = REPO_ROOT / DEFAULT_PROTOCOL_BASELINE_NAME
PIPELINE_BASELINE_PATH = REPO_ROOT / DEFAULT_PIPELINE_BASELINE_NAME
REUSE_BASELINE_PATH = REPO_ROOT / DEFAULT_REUSE_BASELINE_NAME

WORKERS = int(os.environ.get("REPRO_PERF_WORKERS", "4"))
TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "2.0"))
MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_MIN_SPEEDUP", "1.05"))
MIN_DELTA_SPEEDUP = float(
    os.environ.get("REPRO_PERF_MIN_DELTA_SPEEDUP", "1.5")
)
MIN_PROTOCOL_SPEEDUP = float(
    os.environ.get("REPRO_PERF_MIN_PROTOCOL_SPEEDUP", "1.5")
)
MIN_PIPELINE_SPEEDUP = float(
    os.environ.get("REPRO_PERF_MIN_PIPELINE_SPEEDUP", "4.0")
)
MIN_REUSE_SPEEDUP = float(
    os.environ.get("REPRO_PERF_MIN_REUSE_SPEEDUP", "5.0")
)

#: The committed reference baseline must demonstrate this dispatch
#: speedup (the PR 4 acceptance floor), independent of this machine.
COMMITTED_SPEEDUP_FLOOR = 1.3

#: The committed delta baseline must demonstrate this vectorized-over-
#: scalar matching speedup (the ISSUE 5 acceptance floor).
COMMITTED_DELTA_SPEEDUP_FLOOR = 3.0

#: The committed protocol baseline must demonstrate this vectorized-
#: over-scalar whole-round engine speedup (the ISSUE 6 acceptance floor).
COMMITTED_PROTOCOL_SPEEDUP_FLOOR = 3.0

#: The committed pipeline baseline must demonstrate this pipelined-over-
#: sequential link wall-clock speedup (the ISSUE 9 acceptance floor).
COMMITTED_PIPELINE_SPEEDUP_FLOOR = 4.0

#: The committed reuse baseline must demonstrate this warm-over-cold
#: Nth-client serve speedup (the ISSUE 10 acceptance floor).
COMMITTED_REUSE_SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def committed():
    if not BASELINE_PATH.exists():
        pytest.fail(f"missing committed baseline {BASELINE_PATH}")
    return load_baseline(BASELINE_PATH)


@pytest.fixture(scope="module")
def current():
    baseline = measure(workers=WORKERS)
    # Persist this machine's numbers for the CI artifact.
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    save_baseline(baseline, results_dir / "BENCH_parallel.current.json")
    return baseline


def test_committed_baseline_demonstrates_arena_speedup(committed):
    """The checked-in trajectory point must show the >= 1.3x dispatch win."""
    assert committed.arena_speedup >= COMMITTED_SPEEDUP_FLOOR, (
        f"committed BENCH_parallel.json records arena speedup "
        f"{committed.arena_speedup:.2f}x < {COMMITTED_SPEEDUP_FLOOR}x"
    )
    assert committed.ops["executor_arena"].payload_bytes == (
        committed.ops["executor_pickle"].payload_bytes
    )


def test_no_op_regressed_past_tolerance(current, committed):
    publish("perf_baseline", render_baseline(current))
    findings = compare_baselines(current, committed, tolerance=TOLERANCE)
    assert not findings, "\n".join(findings)


@pytest.mark.skipif(
    not arena_available(), reason="POSIX shared memory unavailable"
)
def test_arena_dispatch_still_faster_than_pickle(current):
    """The zero-copy path must keep beating pickling on this machine."""
    assert "executor_arena" in current.ops, (
        "arena path did not engage despite arena_available()"
    )
    assert current.arena_speedup >= MIN_SPEEDUP, (
        f"arena dispatch speedup {current.arena_speedup:.2f}x fell below "
        f"the {MIN_SPEEDUP}x floor on this machine"
    )


# ----------------------------------------------------------------------
# Delta-encode throughput gate (BENCH_delta.json)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def committed_delta():
    if not DELTA_BASELINE_PATH.exists():
        pytest.fail(f"missing committed baseline {DELTA_BASELINE_PATH}")
    return load_baseline(DELTA_BASELINE_PATH)


@pytest.fixture(scope="module")
def current_delta():
    baseline = measure_delta()
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    save_baseline(baseline, results_dir / "BENCH_delta.current.json")
    return baseline


def test_committed_delta_baseline_demonstrates_speedup(committed_delta):
    """The checked-in trajectory point must show the >= 3x matching win."""
    assert committed_delta.delta_speedup >= COMMITTED_DELTA_SPEEDUP_FLOOR, (
        f"committed BENCH_delta.json records delta speedup "
        f"{committed_delta.delta_speedup:.2f}x < "
        f"{COMMITTED_DELTA_SPEEDUP_FLOOR}x"
    )
    for op in ("delta_index_build", "delta_match_vectorized",
               "delta_match_scalar"):
        assert op in committed_delta.ops, f"committed baseline missing {op}"


def test_no_delta_op_regressed_past_tolerance(current_delta, committed_delta):
    publish("perf_baseline_delta", render_baseline(current_delta))
    findings = compare_baselines(
        current_delta, committed_delta, tolerance=TOLERANCE
    )
    assert not findings, "\n".join(findings)


def test_vectorized_matching_still_faster_than_scalar(current_delta):
    """The batched engine must keep beating the oracle on this machine."""
    assert current_delta.delta_speedup >= MIN_DELTA_SPEEDUP, (
        f"vectorized delta speedup {current_delta.delta_speedup:.2f}x fell "
        f"below the {MIN_DELTA_SPEEDUP}x floor on this machine"
    )


# ----------------------------------------------------------------------
# Whole-round protocol-engine throughput gate (BENCH_protocol.json)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def committed_protocol():
    if not PROTOCOL_BASELINE_PATH.exists():
        pytest.fail(f"missing committed baseline {PROTOCOL_BASELINE_PATH}")
    return load_baseline(PROTOCOL_BASELINE_PATH)


@pytest.fixture(scope="module")
def current_protocol():
    baseline = measure_protocol()
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    save_baseline(baseline, results_dir / "BENCH_protocol.current.json")
    return baseline


def test_committed_protocol_baseline_demonstrates_speedup(committed_protocol):
    """The checked-in trajectory point must show the >= 3x engine win."""
    assert (
        committed_protocol.protocol_speedup >= COMMITTED_PROTOCOL_SPEEDUP_FLOOR
    ), (
        f"committed BENCH_protocol.json records protocol speedup "
        f"{committed_protocol.protocol_speedup:.2f}x < "
        f"{COMMITTED_PROTOCOL_SPEEDUP_FLOOR}x"
    )
    for op in ("protocol_sync_vectorized", "protocol_sync_scalar"):
        assert op in committed_protocol.ops, (
            f"committed baseline missing {op}"
        )


def test_no_protocol_op_regressed_past_tolerance(
    current_protocol, committed_protocol
):
    publish("perf_baseline_protocol", render_baseline(current_protocol))
    findings = compare_baselines(
        current_protocol, committed_protocol, tolerance=TOLERANCE
    )
    assert not findings, "\n".join(findings)


def test_vectorized_protocol_still_faster_than_scalar(current_protocol):
    """The whole-round engine must keep beating the oracle on this machine."""
    assert current_protocol.protocol_speedup >= MIN_PROTOCOL_SPEEDUP, (
        f"vectorized protocol speedup "
        f"{current_protocol.protocol_speedup:.2f}x fell below the "
        f"{MIN_PROTOCOL_SPEEDUP}x floor on this machine"
    )


# ----------------------------------------------------------------------
# Pipelined-scheduler latency gate (BENCH_pipeline.json)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def committed_pipeline():
    if not PIPELINE_BASELINE_PATH.exists():
        pytest.fail(f"missing committed baseline {PIPELINE_BASELINE_PATH}")
    return load_baseline(PIPELINE_BASELINE_PATH)


@pytest.fixture(scope="module")
def current_pipeline():
    baseline = measure_pipeline()
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    save_baseline(baseline, results_dir / "BENCH_pipeline.current.json")
    return baseline


def test_committed_pipeline_baseline_demonstrates_speedup(committed_pipeline):
    """The checked-in trajectory point must show the >= 4x latency win."""
    assert (
        committed_pipeline.pipeline_speedup >= COMMITTED_PIPELINE_SPEEDUP_FLOOR
    ), (
        f"committed BENCH_pipeline.json records pipeline speedup "
        f"{committed_pipeline.pipeline_speedup:.2f}x < "
        f"{COMMITTED_PIPELINE_SPEEDUP_FLOOR}x"
    )
    for op in ("collection_sequential", "collection_pipelined"):
        assert op in committed_pipeline.ops, (
            f"committed baseline missing {op}"
        )


def test_pipeline_measurement_is_reproducible(current_pipeline,
                                              committed_pipeline):
    """Modelled wall clocks are machine-independent: the current run must
    reproduce the committed numbers exactly, not merely within tolerance."""
    publish("perf_baseline_pipeline", render_baseline(current_pipeline))
    for name, committed_op in committed_pipeline.ops.items():
        current_op = current_pipeline.ops.get(name)
        assert current_op is not None, f"current measurement missing {name}"
        assert current_op.rounds == committed_op.rounds, (
            f"{name}: {current_op.rounds} wire roundtrips != committed "
            f"{committed_op.rounds}"
        )
        assert abs(current_op.seconds - committed_op.seconds) < 1e-3, (
            f"{name}: modelled {current_op.seconds:.4f}s != committed "
            f"{committed_op.seconds:.4f}s"
        )


def test_pipelined_wall_clock_beats_sequential(current_pipeline):
    """The pipelined scheduler must hide >= 4x of the link wall clock."""
    assert current_pipeline.pipeline_speedup >= MIN_PIPELINE_SPEEDUP, (
        f"pipeline speedup {current_pipeline.pipeline_speedup:.2f}x fell "
        f"below the {MIN_PIPELINE_SPEEDUP}x floor"
    )


# ----------------------------------------------------------------------
# Cross-file reuse gate (BENCH_reuse.json)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def committed_reuse():
    if not REUSE_BASELINE_PATH.exists():
        pytest.fail(f"missing committed baseline {REUSE_BASELINE_PATH}")
    return load_baseline(REUSE_BASELINE_PATH)


@pytest.fixture(scope="module")
def current_reuse():
    baseline = measure_reuse()
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    save_baseline(baseline, results_dir / "BENCH_reuse.current.json")
    return baseline


def test_committed_reuse_baseline_demonstrates_speedup(committed_reuse):
    """The checked-in trajectory point must show the >= 5x memo win."""
    assert committed_reuse.reuse_speedup >= COMMITTED_REUSE_SPEEDUP_FLOOR, (
        f"committed BENCH_reuse.json records reuse speedup "
        f"{committed_reuse.reuse_speedup:.2f}x < "
        f"{COMMITTED_REUSE_SPEEDUP_FLOOR}x"
    )
    for op in ("broadcast_cold_client", "broadcast_warm_client",
               "broadcast_wire_sibling", "broadcast_wire_full"):
        assert op in committed_reuse.ops, f"committed baseline missing {op}"


def test_committed_reuse_baseline_shows_sibling_savings(committed_reuse):
    """Sibling references must save measurable fleet wire bytes."""
    assert committed_reuse.sibling_wire_savings > 0.0, (
        "committed BENCH_reuse.json records no sibling wire savings"
    )


def test_no_reuse_op_regressed_past_tolerance(current_reuse, committed_reuse):
    publish("perf_baseline_reuse", render_baseline(current_reuse))
    findings = compare_baselines(
        current_reuse, committed_reuse, tolerance=TOLERANCE
    )
    assert not findings, "\n".join(findings)


def test_warm_serve_still_faster_than_cold(current_reuse):
    """The Nth-client memo speedup must hold on this machine."""
    assert current_reuse.reuse_speedup >= MIN_REUSE_SPEEDUP, (
        f"reuse memo speedup {current_reuse.reuse_speedup:.2f}x fell "
        f"below the {MIN_REUSE_SPEEDUP}x floor on this machine"
    )


def test_sibling_wire_savings_reproducible(current_reuse, committed_reuse):
    """Wire bytes are deterministic: the current run must reproduce the
    committed byte counts exactly, not merely within tolerance."""
    for name in ("broadcast_wire_sibling", "broadcast_wire_full"):
        assert current_reuse.ops[name].payload_bytes == (
            committed_reuse.ops[name].payload_bytes
        ), (
            f"{name}: {current_reuse.ops[name].payload_bytes} wire bytes "
            f"!= committed {committed_reuse.ops[name].payload_bytes}"
        )
