"""Perf-regression gate: current substrate timings vs BENCH_parallel.json.

Runs the same measurement that produced the committed baseline (see
``repro.bench.perfbaseline``) and fails if any op has slowed past the
tolerance, or if the zero-copy arena dispatch has lost its edge over the
pickle path.

Environment knobs (CI machines differ from the reference box):

* ``REPRO_PERF_WORKERS``     executor workers (default 4)
* ``REPRO_PERF_TOLERANCE``   allowed slowdown fraction vs the committed
  baseline (default 2.0, i.e. 3x budget — generous for shared runners)
* ``REPRO_PERF_MIN_SPEEDUP`` arena-over-pickle floor for the *current*
  machine (default 1.05; the committed baseline itself must show >= 1.3)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from conftest import publish
from repro.bench.perfbaseline import (
    DEFAULT_BASELINE_NAME,
    compare_baselines,
    load_baseline,
    measure,
    render_baseline,
    save_baseline,
)
from repro.parallel import arena_available

REPO_ROOT = Path(__file__).parent.parent
BASELINE_PATH = REPO_ROOT / DEFAULT_BASELINE_NAME

WORKERS = int(os.environ.get("REPRO_PERF_WORKERS", "4"))
TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "2.0"))
MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_MIN_SPEEDUP", "1.05"))

#: The committed reference baseline must demonstrate this dispatch
#: speedup (the PR 4 acceptance floor), independent of this machine.
COMMITTED_SPEEDUP_FLOOR = 1.3


@pytest.fixture(scope="module")
def committed():
    if not BASELINE_PATH.exists():
        pytest.fail(f"missing committed baseline {BASELINE_PATH}")
    return load_baseline(BASELINE_PATH)


@pytest.fixture(scope="module")
def current():
    baseline = measure(workers=WORKERS)
    # Persist this machine's numbers for the CI artifact.
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    save_baseline(baseline, results_dir / "BENCH_parallel.current.json")
    return baseline


def test_committed_baseline_demonstrates_arena_speedup(committed):
    """The checked-in trajectory point must show the >= 1.3x dispatch win."""
    assert committed.arena_speedup >= COMMITTED_SPEEDUP_FLOOR, (
        f"committed BENCH_parallel.json records arena speedup "
        f"{committed.arena_speedup:.2f}x < {COMMITTED_SPEEDUP_FLOOR}x"
    )
    assert committed.ops["executor_arena"].payload_bytes == (
        committed.ops["executor_pickle"].payload_bytes
    )


def test_no_op_regressed_past_tolerance(current, committed):
    publish("perf_baseline", render_baseline(current))
    findings = compare_baselines(current, committed, tolerance=TOLERANCE)
    assert not findings, "\n".join(findings)


@pytest.mark.skipif(
    not arena_available(), reason="POSIX shared memory unavailable"
)
def test_arena_dispatch_still_faster_than_pickle(current):
    """The zero-copy path must keep beating pickling on this machine."""
    assert "executor_arena" in current.ops, (
        "arena path did not engage despite arena_available()"
    )
    assert current.arena_speedup >= MIN_SPEEDUP, (
        f"arena dispatch speedup {current.arena_speedup:.2f}x fell below "
        f"the {MIN_SPEEDUP}x floor on this machine"
    )
