"""Resume-from-checkpoint savings vs. restart-from-scratch.

Not a paper experiment — this measures the checkpoint subsystem: when a
session dies after round *k*, how much of the already-paid-for traffic
does the resume handshake salvage, net of its own cost (the handshake
bits plus re-sending nothing)?  One row per disconnect point; the
comparison is against the same fault under PR-2 semantics (restart the
rung from round 0).  Rows land in ``benchmarks/results/``.
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.bench import OursMethod, render_table
from repro.net import FaultPlan
from repro.resilience import CheckpointStore, SyncSupervisor
from repro.workloads import EditProfile, TextGenerator, mutate

SEED = 42
NBYTES = 60_000
DISCONNECT_POINTS = (3, 8, 14, 20, 28, 38, 50)


def make_pair():
    import random

    generator = TextGenerator(SEED)
    rng = random.Random(SEED)
    old = generator.generate(NBYTES, rng)
    profile = EditProfile(edit_count=14, cluster_count=4,
                          cluster_spread=220.0, min_size=6, max_size=200)
    new = mutate(old, rng, profile, content=generator.snippet)
    return old, new


def grand_total(outcome) -> int:
    return outcome.total_bytes + outcome.retransmitted_bytes


def test_resume_savings_vs_restart():
    old, new = make_pair()
    clean = OursMethod().sync_file(old, new)

    rows = []
    salvage_rows = 0
    for cutoff in DISCONNECT_POINTS:
        restart = SyncSupervisor(
            OursMethod(),
            fault_plan=FaultPlan(seed=SEED, disconnect_after_sends=cutoff),
        ).sync_file(old, new)
        resumed = SyncSupervisor(
            OursMethod(),
            fault_plan=FaultPlan(seed=SEED, disconnect_after_sends=cutoff),
            checkpoints=CheckpointStore.in_memory(),
        ).sync_file(old, new)
        assert restart.correct and resumed.correct

        saved = grand_total(restart) - grand_total(resumed)
        rows.append([
            str(cutoff),
            str(resumed.rounds_salvaged),
            f"{grand_total(restart):,}",
            f"{grand_total(resumed):,}",
            str(resumed.resume_handshake_bits),
            f"{saved:+,}",
            f"{saved / grand_total(restart):+.1%}",
        ])
        if resumed.rounds_salvaged >= 1:
            salvage_rows += 1
            # The acceptance property: salvaging any round must beat
            # restarting, handshake included.
            assert grand_total(resumed) < grand_total(restart), (
                f"cutoff={cutoff}: resume did not pay for itself"
            )

    publish(
        "resume_savings",
        render_table(
            ["disconnect @send", "rounds salvaged", "restart B",
             "resume B", "handshake bits", "saved B", "saved %"],
            rows,
            title=(
                f"checkpoint resume vs. restart after a mid-session "
                f"disconnect — {NBYTES // 1000} KB file, clean run "
                f"{clean.total_bytes:,} B, method=ours, seed={SEED}"
            ),
        ),
    )

    # The sweep must include disconnects late enough to salvage rounds.
    assert salvage_rows >= 3
