"""Parallel collection-sync engine: wall-clock scaling and cache reuse.

Not a paper experiment — this measures the implementation itself: the
``SyncExecutor`` process-pool fan-out and the content-keyed hash-index
cache added for collection-scale deployments (DESIGN.md §8).  Three runs
over a ≥50-file collection:

1. serial, cold cache        (baseline wall-clock)
2. parallel, cold cache      (speedup when CPUs are available)
3. serial repeat, warm cache (hit-rate on version-chained/repeated syncs)
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import publish
from repro.bench import OursMethod, render_table
from repro.collection import sync_collection
from repro.parallel import reset_default_cache
from repro.workloads import make_web_collection

FILE_COUNT = 60
PARALLEL_WORKERS = max(2, min(4, os.cpu_count() or 1))


def _timed(old, new, workers, warm=False):
    if not warm:
        reset_default_cache()
    started = time.perf_counter()
    report = sync_collection(old, new, OursMethod(), workers=workers)
    return report, time.perf_counter() - started


def test_parallel_collection_scaling():
    collection = make_web_collection(
        page_count=FILE_COUNT, days=(0, 1), seed=17
    )
    old, new = collection.snapshot(0), collection.snapshot(1)
    assert len(new) >= 50

    serial, serial_seconds = _timed(old, new, 1)
    # Warm repeat: same data again, reusing what the serial run cached.
    repeat, repeat_seconds = _timed(old, new, 1, warm=True)
    parallel, parallel_seconds = _timed(old, new, PARALLEL_WORKERS)

    # Determinism: the parallel report is byte-identical to the serial one.
    assert parallel.summary() == serial.summary()
    assert parallel.reconstructed == serial.reconstructed
    assert list(parallel.per_file) == list(serial.per_file)

    # The warm repeat must reuse hash indexes (version-chain scenario) …
    lookups = repeat.cache_hits + repeat.cache_misses
    hit_rate = repeat.cache_hits / lookups if lookups else 0.0
    assert repeat.cache_hits > 0
    assert hit_rate > 0.5
    # … and skipping the numpy rebuilds should never be slower.
    assert repeat_seconds <= serial_seconds * 1.10

    rows = [
        ["serial (cold)", 1, f"{serial_seconds:.2f}", f"{serial.cpu_seconds:.2f}",
         f"{serial.cache_hits}/{serial.cache_hits + serial.cache_misses}"],
        [f"parallel x{parallel.workers} (cold)", parallel.workers,
         f"{parallel_seconds:.2f}", f"{parallel.cpu_seconds:.2f}",
         f"{parallel.cache_hits}/{parallel.cache_hits + parallel.cache_misses}"],
        ["serial repeat (warm)", 1, f"{repeat_seconds:.2f}",
         f"{repeat.cpu_seconds:.2f}",
         f"{repeat.cache_hits}/{lookups}"],
    ]
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    publish(
        "parallel_scaling",
        render_table(
            ["run", "workers", "wall s", "cpu s", "cache hits"],
            rows,
            title=(
                f"parallel collection sync — {len(new)} files, "
                f"{len(serial.diff.changed)} changed; parallel speedup "
                f"{speedup:.2f}x on {os.cpu_count()} CPU(s); warm hit rate "
                f"{hit_rate:.0%}"
            ),
        ),
    )

    if (os.cpu_count() or 1) >= 2:
        # With real CPUs the pool must beat serial on a 50+ file batch.
        assert parallel_seconds < serial_seconds
    else:
        # Single CPU: only bound the pool's dispatch overhead.
        assert parallel_seconds <= serial_seconds * 2.0
