"""Cost-model validation — predicted vs measured over the block-size sweep.

The Bernoulli-edit predictor (`repro.core.estimate`) exists to pick
parameters without running the protocol; this bench checks its curve
against reality on a workload matching its own assumptions (dispersed
single-byte edits on incompressible content) and records the error.
"""

from __future__ import annotations

import random

from conftest import publish

from repro.bench import render_table
from repro.core import ProtocolConfig, synchronize
from repro.core.estimate import estimate_protocol_cost

FILE_LENGTH = 80_000
DIRTY_RATE = 0.0006
MIN_BLOCKS = (32, 64, 128, 256)


def _bernoulli_pair(seed: int) -> tuple[bytes, bytes]:
    rng = random.Random(seed)
    old = bytes(rng.randrange(256) for _ in range(FILE_LENGTH))
    new = bytearray(old)
    for i in range(FILE_LENGTH):
        if rng.random() < DIRTY_RATE:
            new[i] = (new[i] + 1) % 256
    return old, bytes(new)


def test_model_validation(benchmark):
    old, new = _bernoulli_pair(seed=99)
    rows = []
    ratios = []
    measured_curve = {}
    predicted_curve = {}
    for min_block in MIN_BLOCKS:
        config = ProtocolConfig(
            min_block_size=min_block,
            continuation_min_block_size=max(4, min_block // 4),
        )
        result = synchronize(old, new, config)
        assert result.reconstructed == new
        predicted = estimate_protocol_cost(
            FILE_LENGTH, DIRTY_RATE, config, literal_bits_per_byte=8.0
        )
        measured_curve[min_block] = result.total_bytes
        predicted_curve[min_block] = predicted.total_bytes
        ratio = predicted.total_bytes / result.total_bytes
        ratios.append(ratio)
        rows.append(
            [
                min_block,
                result.total_bytes,
                round(predicted.total_bytes),
                f"{ratio:.2f}",
            ]
        )

    publish(
        "model_validation",
        render_table(
            ["min block", "measured B", "predicted B", "ratio"],
            rows,
            title=(
                "Cost model vs measurement "
                f"(Bernoulli edits, n={FILE_LENGTH}, p={DIRTY_RATE})"
            ),
        ),
    )

    # Point estimates within a small constant factor...
    assert all(0.4 < r < 2.5 for r in ratios), ratios
    # ...and the curves agree on the *direction* between extremes, which
    # is what parameter selection needs.
    measured_slope = measured_curve[256] - measured_curve[32]
    predicted_slope = predicted_curve[256] - predicted_curve[32]
    assert (measured_slope > 0) == (predicted_slope > 0)

    benchmark.pedantic(
        estimate_protocol_cost,
        args=(FILE_LENGTH, DIRTY_RATE),
        iterations=10,
        rounds=3,
    )
