"""Technique progression: rsync → multiround splitting → the paper.

The paper's contribution is the delta between plain recursive splitting
(Langford [25], which it builds on) and the refined protocol (group
verification + continuation hashes + decomposable hashes + map/delta
framework).  This table makes each step of the lineage visible, ending
at the zdelta lower bound.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    MultiroundRsyncMethod,
    OursMethod,
    RsyncMethod,
    RsyncOptimalMethod,
    ZdeltaMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig

LINEUP = [
    ("rsync (1996)", RsyncMethod()),
    ("rsync optimal-b (oracle)", RsyncOptimalMethod()),
    ("multiround splitting [25]", MultiroundRsyncMethod()),
    (
        "this paper (all techniques)",
        OursMethod(
            ProtocolConfig(min_block_size=32, continuation_min_block_size=8)
        ),
    ),
    ("zdelta (local lower bound)", ZdeltaMethod()),
]


def test_technique_progression(benchmark, gcc_tree):
    rows = []
    totals = {}
    for label, method in LINEUP:
        run = run_method_on_collection(method, gcc_tree.old, gcc_tree.new)
        totals[label] = run.total_bytes
        rows.append(
            [
                label,
                format_kb(run.total_bytes),
                f"{run.total_bytes / totals[LINEUP[0][0]]:.2f}"
                if LINEUP[0][0] in totals
                else "1.00",
            ]
        )

    publish(
        "technique_progression",
        render_table(
            ["method", "total KB", "vs rsync"],
            rows,
            title="Technique progression on the gcc-like data set",
        ),
    )

    # Strict ordering of the lineage.
    assert totals["rsync optimal-b (oracle)"] <= totals["rsync (1996)"]
    assert (
        totals["multiround splitting [25]"]
        < totals["rsync optimal-b (oracle)"]
    )
    assert (
        totals["this paper (all techniques)"]
        < totals["multiround splitting [25]"]
    )
    assert (
        totals["zdelta (local lower bound)"]
        < totals["this paper (all techniques)"]
    )

    benchmark.extra_info.update(
        {label: round(total / 1024, 1) for label, total in totals.items()}
    )
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
