"""Figure 6.4 — match-verification strategies on the gcc data set.

Compares trivial 16-bit per-candidate verification against the optimized
group-testing schemes with 1, 2 and 3 verification roundtrips.  The paper
finds slight improvements for each added roundtrip, with almost all of
the benefit captured by one or two roundtrips.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig
from repro.grouptesting import make_strategy

STRATEGIES = ("trivial", "light", "group1", "group2", "group3")


def verification_config(strategy: str) -> ProtocolConfig:
    return ProtocolConfig(
        min_block_size=64,
        continuation_min_block_size=16,
        verification=strategy,
    )


def test_fig6_4_verification(benchmark, gcc_tree):
    rows = []
    totals = {}
    c2s_map = {}
    for name in STRATEGIES:
        run = run_method_on_collection(
            OursMethod(verification_config(name)),
            gcc_tree.old,
            gcc_tree.new,
        )
        totals[name] = run.total_bytes
        c2s_map[name] = run.breakdown.get("c2s/map", 0)
        rows.append(
            [
                name,
                make_strategy(name).roundtrips,
                format_kb(c2s_map[name]),
                format_kb(run.breakdown.get("s2c/map", 0)),
                format_kb(run.breakdown.get("s2c/delta", 0)),
                format_kb(run.total_bytes),
            ]
        )

    publish(
        "fig6_4_verification",
        render_table(
            ["strategy", "verify roundtrips", "c2s map KB", "s2c map KB",
             "delta KB", "total KB"],
            rows,
            title="Figure 6.4 — verification strategies on the gcc-like "
                  "data set",
        ),
    )

    # Shape: group testing sends fewer client->server verification bytes
    # than trivial per-candidate hashing...
    assert c2s_map["group2"] < c2s_map["trivial"]
    assert c2s_map["group3"] < c2s_map["trivial"]
    # ...and almost all total benefit arrives within 1-2 roundtrips: the
    # third roundtrip adds at most a small improvement.
    best_two = min(totals[n] for n in ("group1", "group2"))
    assert totals["group3"] > 0.9 * best_two

    benchmark.extra_info.update(
        {name: round(total / 1024, 1) for name, total in totals.items()}
    )
    benchmark.pedantic(
        run_method_on_collection,
        args=(
            OursMethod(verification_config("group2")),
            gcc_tree.old,
            gcc_tree.new,
        ),
        iterations=1,
        rounds=1,
    )
