"""Ablations 2/3 — phase splitting, skip rules, and local hashes.

The paper implemented "first sending continuation hashes, and then global
hashes [in the next roundtrip], and observed some moderate benefits";
local hashes showed no significant improvement ("Local hashes do not fare
well in this context").  Both findings should reproduce.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig

VARIANTS = {
    "two-phase (paper best)": ProtocolConfig(
        min_block_size=64, continuation_min_block_size=16,
        continuation_first=True,
    ),
    "single mixed phase": ProtocolConfig(
        min_block_size=64, continuation_min_block_size=16,
        continuation_first=False,
    ),
    "no continuation": ProtocolConfig(
        min_block_size=64, continuation_min_block_size=None,
    ),
    "two-phase + local hashes": ProtocolConfig(
        min_block_size=64, continuation_min_block_size=16,
        continuation_first=True, use_local_hashes=True,
    ),
}


def test_ablation_phase_split(benchmark, gcc_tree):
    totals = {}
    rows = []
    for label, config in VARIANTS.items():
        run = run_method_on_collection(
            OursMethod(config), gcc_tree.old, gcc_tree.new
        )
        totals[label] = run.total_bytes
        rows.append(
            [
                label,
                format_kb(run.breakdown.get("s2c/map", 0)),
                format_kb(run.breakdown.get("c2s/map", 0)),
                format_kb(run.breakdown.get("s2c/delta", 0)),
                format_kb(run.total_bytes),
            ]
        )

    publish(
        "ablation_phase_split",
        render_table(
            ["variant", "s2c map KB", "c2s map KB", "delta KB", "total KB"],
            rows,
            title="Ablation — phase splitting and local hashes (gcc-like)",
        ),
    )

    # Continuation (either phasing) beats no continuation.
    best_cont = min(totals["two-phase (paper best)"],
                    totals["single mixed phase"])
    assert best_cont <= totals["no continuation"]
    # Local hashes: no improvement — "Local hashes do not fare well in
    # this context" (the paper); here they actively cost extra hash bits
    # on blocks that rarely match.  They must never *win*.
    assert totals["two-phase + local hashes"] >= totals[
        "two-phase (paper best)"
    ]
    assert totals["two-phase + local hashes"] < 1.5 * totals[
        "two-phase (paper best)"
    ]

    benchmark.extra_info.update(
        {k: round(v / 1024, 1) for k, v in totals.items()}
    )
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
