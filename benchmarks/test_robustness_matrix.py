"""Robustness matrix — every method across every workload family.

Beyond the paper's source-tree and web data sets, deployments move
append-mostly logs, incompressible binaries, and record stores.  The
matrix checks that the paper's ordering (zdelta <= ours < rsync <= full)
survives across content types, and that the protocol exploits structure
where it exists (appends nearly free, binary patches paying only for the
patched bytes).
"""

from __future__ import annotations

import zlib

from conftest import publish

from repro.bench import format_kb, render_table
from repro.core import ProtocolConfig, synchronize
from repro.delta import zdelta_size
from repro.rsync import rsync_sync
from repro.workloads import robustness_suite


def test_robustness_matrix(benchmark):
    rows = []
    measurements: dict[tuple[str, str], int] = {}
    suite = robustness_suite(seed=42)
    for index, pair in enumerate(suite):
        label = f"{pair.name}#{index}"
        ours = synchronize(pair.old, pair.new, ProtocolConfig())
        assert ours.reconstructed == pair.new
        rsync_result = rsync_sync(pair.old, pair.new)
        assert rsync_result.reconstructed == pair.new
        lower = zdelta_size(pair.old, pair.new)
        full = len(zlib.compress(pair.new, 9))
        measurements[(label, "ours")] = ours.total_bytes
        measurements[(label, "rsync")] = rsync_result.total_bytes
        measurements[(label, "zdelta")] = lower
        measurements[(label, "full")] = full
        rows.append(
            [
                label,
                pair.description,
                format_kb(ours.total_bytes),
                format_kb(rsync_result.total_bytes),
                format_kb(lower),
                format_kb(full),
            ]
        )

    publish(
        "robustness_matrix",
        render_table(
            ["workload", "change", "ours KB", "rsync KB", "zdelta KB",
             "gzip-full KB"],
            rows,
            title="Robustness matrix — method cost across content types",
        ),
    )

    for index, pair in enumerate(suite):
        label = f"{pair.name}#{index}"
        ours = measurements[(label, "ours")]
        # The headline ordering must hold for every family.
        assert ours < measurements[(label, "rsync")], label
        assert ours < measurements[(label, "full")], label
        # And the local delta coder stays a lower bound (within framing
        # noise for tiny deltas).
        assert measurements[(label, "zdelta")] < ours + 256, label

    benchmark.pedantic(
        synchronize, args=(suite[0].old, suite[0].new), iterations=1, rounds=1
    )
