"""Extension ablation — direct vs chained catch-up in the web scenario.

A client that skipped crawls can catch up either directly (old → day 7)
or by replaying stored intermediate snapshots (old → day 1 → day 2 →
day 7, the versions the crawler kept anyway).  Chaining gives each hop
very similar files (cheap maps) but pays per-hop floors; direct pays one
floor against a more-diverged file.  The sweep shows where each wins.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig

CONFIG = ProtocolConfig(min_block_size=32, continuation_min_block_size=8)


def test_ablation_version_chaining(benchmark, web_collection):
    base = web_collection.snapshot(0)
    method = OursMethod(CONFIG)

    direct = run_method_on_collection(
        method, base, web_collection.snapshot(7)
    )

    chained_total = 0
    state = dict(base)
    hops = []
    for day in (1, 2, 7):
        run = run_method_on_collection(
            method, state, web_collection.snapshot(day)
        )
        chained_total += run.total_bytes
        hops.append((day, run.total_bytes))
        state = dict(web_collection.snapshot(day))

    rows = [["direct 0->7", format_kb(direct.total_bytes)]]
    for day, cost in hops:
        rows.append([f"hop ->{day}d", format_kb(cost)])
    rows.append(["chained total", format_kb(chained_total)])

    publish(
        "ablation_version_chaining",
        render_table(
            ["path", "KB"],
            rows,
            title="Ablation — direct vs chained catch-up "
                  f"({web_collection.page_count} pages, 7-day gap)",
        ),
    )

    # Both must beat a full transfer by a wide margin (sanity).
    full = sum(len(v) for v in web_collection.snapshot(7).values())
    assert direct.total_bytes < full / 5
    assert chained_total < full / 5
    # Chaining costs extra per-hop floors (manifests, handshakes): it
    # should not beat direct by much, and typically loses.
    assert chained_total > 0.8 * direct.total_bytes

    benchmark.extra_info["direct_kb"] = round(direct.total_bytes / 1024, 1)
    benchmark.extra_info["chained_kb"] = round(chained_total / 1024, 1)
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
