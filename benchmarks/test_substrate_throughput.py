"""CPU throughput of the substrates (the paper's §6.2 closing note).

"The prototype currently runs at a speed of up to a few MB of raw data
per second" — these microbenchmarks record what our Python/numpy
substrates manage, so EXPERIMENTS.md can report the honest CPU story
alongside the bandwidth results.
"""

from __future__ import annotations

import random

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.delta import zdelta_encode
from repro.hashing import DecomposableAdler, HashIndex, window_hashes
from repro.rsync import compute_signatures, match_tokens
from tests_data import make_pair  # local helper module


@pytest.fixture(scope="module")
def payload():
    return make_pair(seed=1, nbytes=1_000_000, edits=60)


def test_window_hash_scan_throughput(benchmark, payload):
    """Vectorised all-position hashing of a 1 MB buffer."""
    old, _new = payload
    hasher = DecomposableAdler(seed=1)
    result = benchmark(window_hashes, old, 64, hasher)
    assert result.size == len(old) - 63


def test_hash_index_build_throughput(benchmark, payload):
    old, _new = payload
    hasher = DecomposableAdler(seed=1)

    def build():
        index = HashIndex(old, 64, hasher)
        index.lookup(index.packed_hash_at(1000, 20), 20)
        return index

    benchmark(build)


def test_zdelta_encode_throughput(benchmark, payload):
    old, new = payload
    delta = benchmark(zdelta_encode, old, new)
    assert len(delta) < len(new)


def test_rsync_match_throughput(benchmark, payload):
    old, new = payload
    signatures = compute_signatures(old, 700)
    tokens = benchmark(match_tokens, new, signatures, 2)
    assert tokens


def test_full_protocol_throughput(benchmark, payload):
    """End-to-end protocol speed on a 1 MB file (the paper's 'few MB of
    raw data per second' claim, in Python)."""
    old, new = payload
    result = benchmark.pedantic(
        synchronize, args=(old, new, ProtocolConfig()),
        iterations=1, rounds=3,
    )
    assert result.reconstructed == new
