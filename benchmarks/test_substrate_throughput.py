"""CPU throughput of the substrates (the paper's §6.2 closing note).

"The prototype currently runs at a speed of up to a few MB of raw data
per second" — these microbenchmarks record what our Python/numpy
substrates manage, so EXPERIMENTS.md can report the honest CPU story
alongside the bandwidth results.
"""

from __future__ import annotations

import random

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.delta import zdelta_encode
from repro.hashing import DecomposableAdler, HashIndex, window_hashes
from repro.rsync import compute_signatures, match_tokens
from tests_data import make_pair  # local helper module


@pytest.fixture(scope="module")
def payload():
    return make_pair(seed=1, nbytes=1_000_000, edits=60)


def test_window_hash_scan_throughput(benchmark, payload):
    """Vectorised all-position hashing of a 1 MB buffer."""
    old, _new = payload
    hasher = DecomposableAdler(seed=1)
    result = benchmark(window_hashes, old, 64, hasher)
    assert result.size == len(old) - 63


def test_hash_index_build_throughput(benchmark, payload):
    old, _new = payload
    hasher = DecomposableAdler(seed=1)

    def build():
        index = HashIndex(old, 64, hasher)
        index.lookup(index.packed_hash_at(1000, 20), 20)
        return index

    benchmark(build)


def test_zdelta_encode_throughput(benchmark, payload):
    old, new = payload
    delta = benchmark(zdelta_encode, old, new)
    assert len(delta) < len(new)


def test_rsync_match_throughput(benchmark, payload):
    old, new = payload
    signatures = compute_signatures(old, 700)
    tokens = benchmark(match_tokens, new, signatures, 2)
    assert tokens


def test_common_prefix_scan_throughput(benchmark, payload):
    """Chunked XOR prefix scan vs the naive per-byte loop it replaced.

    The matcher extends every candidate match with
    ``_common_prefix_length``; on long matches the chunked version is
    two orders of magnitude faster, and must never fall back below the
    naive loop.
    """
    from repro.delta.matcher import _common_prefix_length

    old, _new = payload
    a = memoryview(old)
    # Identical except the last byte: the worst case for the scan is the
    # longest possible common prefix.
    b = memoryview(old[:-1] + bytes([old[-1] ^ 0xFF]))

    def naive(x, y):
        limit = min(len(x), len(y))
        i = 0
        while i < limit and x[i] == y[i]:
            i += 1
        return i

    expected = naive(a, b)
    result = benchmark(_common_prefix_length, a, b)
    assert result == expected == len(old) - 1

    # One comparative timing (not under the benchmark fixture): the
    # chunked scan must beat per-byte by a wide margin.
    import time

    started = time.perf_counter()
    naive(a, b)
    naive_s = time.perf_counter() - started
    started = time.perf_counter()
    _common_prefix_length(a, b)
    chunked_s = time.perf_counter() - started
    assert chunked_s * 3 < naive_s, (
        f"chunked prefix scan ({chunked_s:.4f}s) not at least 3x faster "
        f"than per-byte ({naive_s:.4f}s)"
    )


def test_sorted_position_map_throughput(benchmark):
    """Batched candidate probing vs per-key dict lookups.

    The client session resolves expected positions for a whole round of
    blocks at once via :meth:`SortedPositionMap.get_many`; the batched
    searchsorted probe must beat looping ``dict.get`` across a
    round-sized query set.
    """
    import numpy as np

    from repro.core.client import SortedPositionMap

    rng = random.Random(7)
    entries = [(rng.randrange(10_000_000), i) for i in range(50_000)]
    position_map = SortedPositionMap()
    plain_dict = {}
    for key, value in entries:
        position_map[key] = value
        plain_dict[key] = value
    queries = np.array(
        [rng.randrange(10_000_000) for _ in range(8192)], dtype=np.int64
    )

    expected = np.array(
        [plain_dict.get(int(q), -1) for q in queries], dtype=np.int64
    )
    result = benchmark(position_map.get_many, queries)
    assert np.array_equal(result, expected)

    # One comparative timing (not under the benchmark fixture): the
    # batched probe must beat the per-key dict loop.
    import time

    query_list = queries.tolist()
    started = time.perf_counter()
    for q in query_list:
        plain_dict.get(q, -1)
    dict_s = time.perf_counter() - started
    started = time.perf_counter()
    position_map.get_many(queries)
    batched_s = time.perf_counter() - started
    assert batched_s < dict_s, (
        f"batched get_many ({batched_s:.5f}s) not faster than per-key "
        f"dict probes ({dict_s:.5f}s)"
    )


def test_mux_batch_pack_throughput(benchmark):
    """Multiplexed sub-frame encode+decode for one scheduler wave.

    The pipelined collection scheduler packs every in-flight file's
    round message into one shared batch per direction group; framing
    must stay a rounding error next to protocol compute.  A wave of 64
    small sub-frames round-trips through
    :func:`~repro.net.frame.encode_mux_batch` /
    :func:`~repro.net.frame.decode_mux_batch` per call.
    """
    from repro.net.frame import (
        MuxSubframe,
        decode_mux_batch,
        encode_mux_batch,
        mux_overhead_bytes,
    )

    rng = random.Random(11)
    subframes = [
        MuxSubframe(
            stream_id=index,
            round_index=rng.randrange(12),
            seq=rng.randrange(6),
            bit_length=8 * 600,
            payload=rng.randbytes(600),
        )
        for index in range(64)
    ]

    def roundtrip():
        batch = encode_mux_batch(subframes)
        return batch, decode_mux_batch(batch)

    batch, decoded = benchmark(roundtrip)
    assert decoded == subframes
    # Header cost: count + 4 uvarints per sub-frame — a few bytes each.
    assert mux_overhead_bytes(batch, subframes) < 10 * len(subframes)


def test_full_protocol_throughput(benchmark, payload):
    """End-to-end protocol speed on a 1 MB file (the paper's 'few MB of
    raw data per second' claim, in Python)."""
    old, new = payload
    result = benchmark.pedantic(
        synchronize, args=(old, new, ProtocolConfig()),
        iterations=1, rounds=3,
    )
    assert result.reconstructed == new


def test_minhash_sketch_throughput(benchmark, payload):
    """Content-defined shingling plus min-wise signature of 1 MB.

    The sketch must stay far cheaper than the delta encode it may save;
    a min-hash over all ~16K shingles of a 1 MB file is one vectorised
    pass, not a per-byte loop.
    """
    from repro.reuse import sketch

    old, _new = payload
    result = benchmark(sketch, old)
    assert result.signature.size == 64


def test_lsh_candidate_lookup_latency(benchmark):
    """Best-sibling lookup latency against a 512-file index.

    LSH banding makes the lookup touch only colliding buckets — the
    point is that candidate retrieval does not scan all signatures.
    """
    from repro.reuse import SimilarityIndex

    rng = random.Random(7)
    index = SimilarityIndex()
    base = rng.randbytes(16_384)
    for i in range(512):
        mutated = bytearray(base)
        for _ in range(1 + i % 9):
            at = rng.randrange(len(mutated) - 64)
            mutated[at : at + 32] = rng.randbytes(32)
        index.add(f"file{i:04d}", bytes(mutated))

    probe = bytearray(base)
    probe[100:140] = rng.randbytes(40)
    probe = bytes(probe)
    signature = index.signature_of(probe)

    best = benchmark(index.best_reference, signature=signature, threshold=0.5)
    assert best is not None
    name, resemblance = best
    assert resemblance > 0.5
