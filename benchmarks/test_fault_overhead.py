"""Retransmission overhead vs. fault rate for the resilient supervisor.

Not a paper experiment — this measures the resilience layer itself: how
much extra wire traffic (failed-attempt retransmissions, fallback-ladder
descents) a given channel fault rate costs, on top of the clean-run
payload.  One row per fault rate; rows are published as a table and
exported to ``benchmarks/results/fault_overhead.csv`` like the
parallel-scaling benchmark's rows.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, publish
from repro.bench import OursMethod, render_table, run_method_on_collection
from repro.bench.export import export_runs, run_to_row
from repro.net import FaultPlan
from repro.net.chaos import chaos_plan
from repro.resilience import RetryPolicy
from repro.workloads import gcc_like, make_web_collection

FAULT_RATES = (0.0, 0.02, 0.05, 0.10)
SEED = 42

#: Committed baseline for the adaptive-vs-static comparison below.
RESILIENCE_BASELINE = Path(__file__).parent.parent / "BENCH_resilience.json"


def test_fault_overhead_vs_rate():
    collection = make_web_collection(page_count=30, days=(0, 1), seed=SEED)
    old, new = collection.snapshot(0), collection.snapshot(1)

    runs = []
    rows = []
    baseline_bytes = None
    for rate in FAULT_RATES:
        plan = FaultPlan.uniform(rate, seed=SEED) if rate else None
        run = run_method_on_collection(
            OursMethod(), old, new,
            on_error="fallback", fault_plan=plan,
        )
        assert run.failed_files == 0
        if baseline_bytes is None:
            baseline_bytes = run.total_bytes
            assert run.retries == 0
            assert run.retransmitted_bytes == 0
        wire_total = run.total_bytes + run.retransmitted_bytes
        overhead = wire_total / baseline_bytes - 1.0
        runs.append(run)
        rows.append([
            f"{rate:.2f}",
            f"{run.total_bytes:,}",
            f"{run.retransmitted_bytes:,}",
            f"{overhead:+.1%}",
            str(run.retries),
            str(run.fallback_files),
            f"{run.recovery_seconds:.1f}",
        ])

    publish(
        "fault_overhead",
        render_table(
            ["fault rate", "payload B", "retransmit B", "overhead",
             "retries", "fallbacks", "recovery s"],
            rows,
            title=(
                f"retransmission overhead vs. channel fault rate — "
                f"{len(new)} files, method=ours+supervisor, seed={SEED}"
            ),
        ),
    )
    export_runs(runs, RESULTS_DIR / "fault_overhead.csv")

    # Sanity: injected faults actually cost something at the top rate.
    assert runs[-1].retries > 0
    assert runs[-1].retransmitted_bytes > 0


def test_adaptive_vs_static_under_bursty_chaos():
    """The ISSUE's headline comparison: on a link with hostile fault
    bursts, the adaptive stack (AIMD backoff + per-file breakers +
    per-file deadlines) bounds what a pathological file may cost and
    *reports* it — the run returns even under ``on_error="raise"`` —
    while the static supervisor grinds every rung of every ladder:
    it either stalls past the deadline the adaptive run honours or
    wastes at least twice the retransmitted bytes."""
    deadline_s = 600.0
    tree = gcc_like(scale=0.08, seed=77)

    def bursty_plan():
        # Fresh same-seed plan per run: the schedule is identical, the
        # plan object is stateful.
        return chaos_plan("bursty", seed=9, rate=0.3)

    static = run_method_on_collection(
        OursMethod(), tree.old, tree.new,
        on_error="skip", fault_plan=bursty_plan(),
        retry_policy=RetryPolicy(max_attempts=6),
    )
    adaptive = run_method_on_collection(
        OursMethod(), tree.old, tree.new,
        on_error="raise", fault_plan=bursty_plan(),
        adaptive_retry=True, breaker_threshold=3, deadline_s=deadline_s,
    )

    # Graceful degradation: pathological files are *reported* — the call
    # above returned despite on_error="raise" — and every file the
    # breakers spared was completed and verified.
    assert adaptive.failed_files < adaptive.files_changed
    healthy = adaptive.files_changed - adaptive.failed_files
    assert healthy >= 1

    # The static baseline pays for its stubbornness, both ways here; the
    # acceptance bar is the disjunction.
    waste_ratio = static.retransmitted_bytes / max(
        1, adaptive.retransmitted_bytes
    )
    stalled = static.recovery_seconds > deadline_s
    assert stalled or waste_ratio >= 2.0

    rows = [
        [
            label,
            str(run.files_changed - run.failed_files),
            str(run.failed_files),
            str(run.retries),
            f"{run.retransmitted_bytes:,}",
            f"{run.recovery_seconds:.1f}",
            str(run.breaker_opens),
            f"{run.health_score:.2f}",
        ]
        for label, run in (("static", static), ("adaptive", adaptive))
    ]
    publish(
        "fault_adaptive_vs_static",
        render_table(
            ["policy", "synced", "failed", "retries", "retransmit B",
             "recovery s", "breaker opens", "health"],
            rows,
            title=(
                f"adaptive vs static under bursty chaos — "
                f"{adaptive.files_changed} changed files, rate=0.3, "
                f"deadline={deadline_s:.0f}s, "
                f"waste ratio {waste_ratio:.2f}x"
            ),
        ),
    )
    RESILIENCE_BASELINE.write_text(
        json.dumps(
            {
                "workload": "gcc_like(scale=0.08, seed=77)",
                "plan": "chaos_plan('bursty', seed=9, rate=0.3)",
                "deadline_s": deadline_s,
                "breaker_threshold": 3,
                "waste_ratio": round(waste_ratio, 4),
                "static_stalled_past_deadline": stalled,
                "static": run_to_row(static),
                "adaptive": run_to_row(adaptive),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
