"""Retransmission overhead vs. fault rate for the resilient supervisor.

Not a paper experiment — this measures the resilience layer itself: how
much extra wire traffic (failed-attempt retransmissions, fallback-ladder
descents) a given channel fault rate costs, on top of the clean-run
payload.  One row per fault rate; rows are published as a table and
exported to ``benchmarks/results/fault_overhead.csv`` like the
parallel-scaling benchmark's rows.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR, publish
from repro.bench import OursMethod, render_table, run_method_on_collection
from repro.bench.export import export_runs
from repro.net import FaultPlan
from repro.workloads import make_web_collection

FAULT_RATES = (0.0, 0.02, 0.05, 0.10)
SEED = 42


def test_fault_overhead_vs_rate():
    collection = make_web_collection(page_count=30, days=(0, 1), seed=SEED)
    old, new = collection.snapshot(0), collection.snapshot(1)

    runs = []
    rows = []
    baseline_bytes = None
    for rate in FAULT_RATES:
        plan = FaultPlan.uniform(rate, seed=SEED) if rate else None
        run = run_method_on_collection(
            OursMethod(), old, new,
            on_error="fallback", fault_plan=plan,
        )
        assert run.failed_files == 0
        if baseline_bytes is None:
            baseline_bytes = run.total_bytes
            assert run.retries == 0
            assert run.retransmitted_bytes == 0
        wire_total = run.total_bytes + run.retransmitted_bytes
        overhead = wire_total / baseline_bytes - 1.0
        runs.append(run)
        rows.append([
            f"{rate:.2f}",
            f"{run.total_bytes:,}",
            f"{run.retransmitted_bytes:,}",
            f"{overhead:+.1%}",
            str(run.retries),
            str(run.fallback_files),
            f"{run.recovery_seconds:.1f}",
        ])

    publish(
        "fault_overhead",
        render_table(
            ["fault rate", "payload B", "retransmit B", "overhead",
             "retries", "fallbacks", "recovery s"],
            rows,
            title=(
                f"retransmission overhead vs. channel fault rate — "
                f"{len(new)} files, method=ours+supervisor, seed={SEED}"
            ),
        ),
    )
    export_runs(runs, RESULTS_DIR / "fault_overhead.csv")

    # Sanity: injected faults actually cost something at the top rate.
    assert runs[-1].retries > 0
    assert runs[-1].retransmitted_bytes > 0
