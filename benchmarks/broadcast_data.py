"""Fleet-building helper shared by the broadcast benchmark."""

from __future__ import annotations

import random

from repro.workloads import EditProfile, TextGenerator, mutate


def make_fleet(
    client_count: int, nbytes: int = 30000, seed: int = 0
) -> tuple[dict[str, bytes], bytes]:
    """One current server file; each client holds a different stale copy."""
    generator = TextGenerator(seed)
    rng = random.Random(seed)
    current = generator.generate(nbytes, rng)
    clients = {}
    for i in range(client_count):
        clients[f"client{i:02d}"] = mutate(
            current,
            random.Random(seed * 1000 + i),
            EditProfile(edit_count=4 + i % 3, cluster_count=2,
                        min_size=8, max_size=100),
            content=generator.snippet,
        )
    return clients, current
