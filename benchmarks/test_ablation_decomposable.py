"""Ablation 1 — decomposable vs independent sibling hashes.

The paper: "without decomposable hash functions, the amount of data sent
from server to client in the map building phase would be about twice as
high, and as a result the optimal minimum block size is also slightly
larger."
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig


def test_ablation_decomposable(benchmark, gcc_tree):
    rows = []
    map_s2c = {}
    for min_block in (128, 64, 32):
        for decomposable in (True, False):
            config = ProtocolConfig(
                min_block_size=min_block,
                continuation_min_block_size=None,
                continuation_first=False,
                use_decomposable=decomposable,
                verification="trivial",
            )
            run = run_method_on_collection(
                OursMethod(config), gcc_tree.old, gcc_tree.new
            )
            map_s2c[(min_block, decomposable)] = run.breakdown.get("s2c/map", 0)
            rows.append(
                [
                    min_block,
                    "on" if decomposable else "off",
                    format_kb(run.breakdown.get("s2c/map", 0)),
                    format_kb(run.total_bytes),
                ]
            )

    publish(
        "ablation_decomposable",
        render_table(
            ["min block", "decomposable", "s2c map KB", "total KB"],
            rows,
            title="Ablation — decomposable hash suppression (gcc-like)",
        ),
    )

    for min_block in (128, 64, 32):
        with_it = map_s2c[(min_block, True)]
        without = map_s2c[(min_block, False)]
        # The suppression applies below the top level, so the saving is
        # large but short of a strict 2x; require >= 25% and <= 2.2x.
        assert with_it < 0.75 * without, min_block
        assert without < 2.2 * with_it, min_block

    benchmark.extra_info["s2c_map_ratio_min64"] = round(
        map_s2c[(64, False)] / map_s2c[(64, True)], 2
    )
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
