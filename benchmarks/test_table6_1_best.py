"""Table 6.1 — best results with all techniques, gcc and emacs (KB).

The paper's headline table: our protocol with every technique enabled
against rsync (default and optimal block size) and the zdelta/vcdiff
delta compressors.  Expected shape: savings of ~1.5-2.5x over rsync,
landing within ~1.1-2x of zdelta.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    format_kb,
    render_table,
    run_method_on_collection,
    standard_methods,
)
from repro.core import ProtocolConfig

#: "All techniques" configuration (the paper notes it needs many
#: roundtrips and is thus an upper bound on achievable savings).
BEST_CONFIG = ProtocolConfig(
    min_block_size=32,
    continuation_min_block_size=8,
    continuation_first=True,
    use_decomposable=True,
    verification="group2",
)


def test_table6_1_best(benchmark, gcc_tree, emacs_tree):
    results: dict[str, dict[str, int]] = {}
    rows = []
    for tree in (gcc_tree, emacs_tree):
        per_method = {}
        for method in standard_methods(BEST_CONFIG):
            run = run_method_on_collection(method, tree.old, tree.new)
            per_method[method.name] = run.total_bytes
        results[tree.name] = per_method

    methods = list(next(iter(results.values())))
    for name in methods:
        rows.append(
            [name]
            + [format_kb(results[tree][name]) for tree in results]
        )
    publish(
        "table6_1_best",
        render_table(
            ["method"] + [f"{name} KB" for name in results],
            rows,
            title="Table 6.1 — best results using all techniques",
        ),
    )

    for tree_name, per_method in results.items():
        ours = per_method["ours"]
        # Savings over rsync: the paper reports 1.5-2.5x; accept >= 1.3x.
        assert per_method["rsync"] > 1.3 * ours, tree_name
        assert per_method["rsync-opt"] > ours, tree_name
        # Within a small factor of the local delta coders.
        assert ours < 2.5 * per_method["zdelta"], tree_name
        # Everything beats shipping the files whole.
        assert per_method["gzip-full"] > per_method["rsync"], tree_name

    benchmark.extra_info["gcc"] = {
        k: round(v / 1024, 1) for k, v in results["gcc-like"].items()
    }
    benchmark.pedantic(
        run_method_on_collection,
        args=(OursMethod(BEST_CONFIG), gcc_tree.old, gcc_tree.new),
        iterations=1,
        rounds=1,
    )
