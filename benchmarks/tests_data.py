"""Deterministic test-pair helper shared by the throughput benchmarks."""

from __future__ import annotations

import random

from repro.workloads import EditProfile, TextGenerator, mutate


def make_pair(seed: int, nbytes: int, edits: int) -> tuple[bytes, bytes]:
    """A (old, new) pair with clustered edits, sized for throughput runs."""
    generator = TextGenerator(seed)
    rng = random.Random(seed ^ 0x7777)
    old = generator.generate(nbytes, rng)
    new = mutate(
        old,
        rng,
        EditProfile(
            edit_count=edits,
            cluster_count=max(2, edits // 8),
            cluster_spread=500.0,
            min_size=8,
            max_size=400,
        ),
        content=generator.snippet,
    )
    return old, new
