"""Delta-matching engine micro-benchmark on the paper's tree workloads.

The perf gate in ``test_perf_baseline.py`` watches a synthetic seeded
workload; this module answers the practical question instead: on the
gcc/emacs-style source-tree version pairs the paper evaluates (§6.1),
how much faster is the vectorized matching engine than the scalar
oracle — and do both engines still emit byte-identical instruction
lists on every real-ish pair?

The parity assertion here is the benchmark-side complement of the
randomized suite in ``tests/test_delta_parity.py``: same property,
exercised on structured source text instead of adversarial noise.
"""

from __future__ import annotations

import time

import pytest

from conftest import publish
from repro.bench.report import render_table
from repro.delta.matcher import ReferenceMatcher, compute_instructions

#: Per-tree cap on timed pairs — keeps the scalar side of the benchmark
#: to a few seconds while still covering dozens of files.
MAX_PAIRS = 48


def _changed_pairs(tree) -> list[tuple[str, bytes, bytes]]:
    pairs = [
        (name, tree.old[name], tree.new[name])
        for name in sorted(tree.old)
        if name in tree.new and tree.old[name] != tree.new[name]
    ]
    return pairs[:MAX_PAIRS]


def _time_engine(engine: str, pairs, matchers, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for (_name, old, new), matcher in zip(pairs, matchers):
            compute_instructions(old, new, matcher=matcher, engine=engine)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("tree_fixture", ["gcc_tree", "emacs_tree"])
def test_vectorized_engine_speedup_on_tree_workloads(tree_fixture, request):
    tree = request.getfixturevalue(tree_fixture)
    pairs = _changed_pairs(tree)
    assert pairs, f"{tree_fixture} produced no changed files"
    matchers = [ReferenceMatcher(old) for _name, old, _new in pairs]

    # Parity first: every pair must produce byte-identical instructions.
    for (name, old, new), matcher in zip(pairs, matchers):
        scalar = compute_instructions(old, new, matcher=matcher,
                                      engine="scalar")
        vectorized = compute_instructions(old, new, matcher=matcher,
                                          engine="vectorized")
        assert scalar == vectorized, f"engines diverged on {name}"

    scalar_s = _time_engine("scalar", pairs, matchers)
    vector_s = _time_engine("vectorized", pairs, matchers)
    target_bytes = sum(len(new) for _name, _old, new in pairs)
    speedup = scalar_s / vector_s if vector_s > 0 else 0.0

    rows = [
        ["scalar", f"{scalar_s * 1000:.1f}",
         f"{target_bytes / scalar_s / 1e6:,.1f}"],
        ["vectorized", f"{vector_s * 1000:.1f}",
         f"{target_bytes / vector_s / 1e6:,.1f}"],
    ]
    publish(
        f"delta_throughput_{tree_fixture}",
        render_table(
            ["engine", "ms (best)", "MB/s"],
            rows,
            title=(
                f"{tree_fixture}: {len(pairs)} changed pairs, "
                f"{target_bytes / 1024:,.0f} KB target bytes — "
                f"vectorized {speedup:.2f}x over scalar"
            ),
        ),
    )
    # Source trees are copy-heavy (small edits), where the two engines
    # are closest; the vectorized engine must still not lose.
    assert speedup >= 0.8, (
        f"vectorized engine slower than scalar on {tree_fixture} "
        f"({speedup:.2f}x)"
    )
