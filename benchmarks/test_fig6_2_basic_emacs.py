"""Figure 6.2 — basic protocol vs minimum block size on the emacs data set.

Same protocol configuration as Figure 6.1 on the emacs-like workload
(closer releases: more unchanged files, lighter edits).  The paper finds
the same U-shape with the optimum at a similar or slightly larger block
size, and a bigger relative win over rsync because matches are longer.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    RsyncMethod,
    RsyncOptimalMethod,
    ZdeltaMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from test_fig6_1_basic_gcc import MIN_BLOCK_SIZES, basic_config


def test_fig6_2_basic_emacs(benchmark, emacs_tree):
    rows = []
    totals = {}
    for min_block in MIN_BLOCK_SIZES:
        run = run_method_on_collection(
            OursMethod(basic_config(min_block)),
            emacs_tree.old,
            emacs_tree.new,
        )
        totals[min_block] = run.total_bytes
        rows.append(
            [
                min_block,
                format_kb(run.breakdown.get("s2c/map", 0)),
                format_kb(run.breakdown.get("c2s/map", 0)),
                format_kb(run.breakdown.get("s2c/delta", 0)),
                format_kb(run.total_bytes),
            ]
        )
    baselines = {}
    for method in (RsyncMethod(), RsyncOptimalMethod(), ZdeltaMethod()):
        run = run_method_on_collection(method, emacs_tree.old, emacs_tree.new)
        baselines[method.name] = run.total_bytes
        rows.append([method.name, "-", "-", "-", format_kb(run.total_bytes)])

    publish(
        "fig6_2_basic_emacs",
        render_table(
            ["min block / method", "s2c map KB", "c2s map KB", "delta KB",
             "total KB"],
            rows,
            title=(
                "Figure 6.2 — basic protocol on emacs-like data set "
                f"({len(emacs_tree.old)} files, "
                f"{emacs_tree.old_bytes / 1e6:.2f} MB)"
            ),
        ),
    )

    best = min(totals.values())
    assert best < baselines["rsync"]
    assert best < baselines["rsync-opt"]
    assert best < 4.0 * baselines["zdelta"]
    interior_best = min(totals[b] for b in (128, 64, 32))
    assert interior_best <= totals[512]
    assert interior_best <= totals[16]

    benchmark.extra_info["best_total_kb"] = round(best / 1024, 1)
    benchmark.pedantic(
        run_method_on_collection,
        args=(OursMethod(basic_config(64)), emacs_tree.old, emacs_tree.new),
        iterations=1,
        rounds=1,
    )
