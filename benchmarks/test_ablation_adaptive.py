"""Extension ablation — adaptive parameter choice vs fixed defaults.

The §7 "ideal tool" probes each file pair and picks parameters per
similarity regime and link class.  The question the table answers: how
close does one probe get to the best fixed configuration in each regime,
and what does it save when the regime is hostile to the defaults?
"""

from __future__ import annotations

import random

from conftest import publish

from repro.bench import format_kb, render_table
from repro.core import ProtocolConfig, adaptive_synchronize, synchronize
from repro.workloads import EditProfile, TextGenerator, mutate


def _regimes() -> dict[str, tuple[bytes, bytes]]:
    generator = TextGenerator(seed=88)
    rng = random.Random(88)
    base = generator.generate(80_000, rng)
    lightly = mutate(
        base, rng,
        EditProfile(edit_count=5, cluster_count=2, min_size=8, max_size=80),
        content=generator.snippet,
    )
    heavily = mutate(
        base, rng,
        EditProfile(edit_count=200, cluster_count=None, min_size=30,
                    max_size=500),
        content=generator.snippet,
    )
    unrelated = TextGenerator(seed=77).generate(80_000, random.Random(77))
    return {
        "lightly edited": (base, lightly),
        "heavily edited": (base, heavily),
        "unrelated": (base, unrelated),
    }


def test_ablation_adaptive(benchmark):
    rows = []
    adaptive_totals = {}
    default_totals = {}
    for regime, (old, new) in _regimes().items():
        adaptive_result, config = adaptive_synchronize(old, new)
        assert adaptive_result.reconstructed == new
        default_result = synchronize(old, new, ProtocolConfig())
        adaptive_totals[regime] = adaptive_result.total_bytes
        default_totals[regime] = default_result.total_bytes
        rows.append(
            [
                regime,
                config.min_block_size,
                config.max_rounds or "-",
                format_kb(adaptive_result.total_bytes),
                format_kb(default_result.total_bytes),
            ]
        )

    publish(
        "ablation_adaptive",
        render_table(
            ["regime", "chosen min blk", "round cap", "adaptive KB",
             "default KB"],
            rows,
            title="Ablation — adaptive parameter selection (80 KB files)",
        ),
    )

    # Never catastrophically worse than the defaults (probe included)...
    for regime in adaptive_totals:
        assert adaptive_totals[regime] < 1.6 * default_totals[regime], regime
    # ...and strictly better where the defaults waste effort.
    assert adaptive_totals["unrelated"] < default_totals["unrelated"]

    benchmark.extra_info.update(
        {k: round(v / 1024, 1) for k, v in adaptive_totals.items()}
    )
    old, new = _regimes()["lightly edited"]
    benchmark.pedantic(
        adaptive_synchronize, args=(old, new), iterations=1, rounds=1
    )
