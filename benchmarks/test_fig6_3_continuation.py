"""Figure 6.3 — continuation hashes with various minimum block sizes.

Starting from the protocol *with group verification* (the leftmost bar of
each group in the paper's figure), continuation hashes are enabled with
progressively smaller minimum block sizes, for two global-hash minimum
block sizes.  The paper finds: continuation hashes profitably extend the
recursion well below the global minimum (best around 8–16 bytes), and
with them a *larger* global minimum becomes competitive.
"""

from __future__ import annotations

from conftest import publish

from repro.bench import (
    OursMethod,
    format_kb,
    render_table,
    run_method_on_collection,
)
from repro.core import ProtocolConfig

GLOBAL_MINIMUMS = (128, 64)
CONTINUATION_MINIMUMS = (None, 64, 32, 16, 8)


def continuation_config(
    min_block: int, continuation_min: int | None
) -> ProtocolConfig:
    if continuation_min is not None:
        continuation_min = min(continuation_min, min_block)
    return ProtocolConfig(
        min_block_size=min_block,
        continuation_min_block_size=continuation_min,
        continuation_first=True,
        use_decomposable=True,
        verification="group2",
    )


def test_fig6_3_continuation(benchmark, gcc_tree):
    rows = []
    totals: dict[tuple[int, int | None], int] = {}
    for min_block in GLOBAL_MINIMUMS:
        for continuation_min in CONTINUATION_MINIMUMS:
            run = run_method_on_collection(
                OursMethod(continuation_config(min_block, continuation_min)),
                gcc_tree.old,
                gcc_tree.new,
            )
            totals[(min_block, continuation_min)] = run.total_bytes
            label = (
                "none (group verify)"
                if continuation_min is None
                else f"cont >= {continuation_min}"
            )
            rows.append(
                [
                    min_block,
                    label,
                    format_kb(run.breakdown.get("s2c/map", 0)),
                    format_kb(run.breakdown.get("s2c/delta", 0)),
                    format_kb(run.total_bytes),
                ]
            )

    publish(
        "fig6_3_continuation",
        render_table(
            ["global min", "continuation", "s2c map KB", "delta KB",
             "total KB"],
            rows,
            title="Figure 6.3 — continuation hashes on the gcc-like data set",
        ),
    )

    # Shape: enabling continuation beats the no-continuation setting for
    # each global minimum (the paper's central claim for the technique).
    for min_block in GLOBAL_MINIMUMS:
        best_with = min(
            totals[(min_block, c)] for c in CONTINUATION_MINIMUMS if c
        )
        assert best_with <= totals[(min_block, None)]

    benchmark.extra_info["best_kb"] = round(min(totals.values()) / 1024, 1)
    benchmark.pedantic(
        run_method_on_collection,
        args=(
            OursMethod(continuation_config(128, 16)),
            gcc_tree.old,
            gcc_tree.new,
        ),
        iterations=1,
        rounds=1,
    )
