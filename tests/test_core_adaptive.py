"""Tests for adaptive parameter selection (§7 extension)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    ProtocolConfig,
    adaptive_synchronize,
    choose_config,
    probe_similarity,
    synchronize,
)
from repro.core.adaptive import ProbeResult
from repro.net import LinkModel, SimulatedChannel
from tests.conftest import make_version_pair


class TestProbe:
    def test_identical_files_full_similarity(self):
        data = make_version_pair(seed=300, nbytes=20000)[0]
        channel = SimulatedChannel()
        probe = probe_similarity(data, data, channel)
        assert probe.similarity == 1.0
        assert channel.stats.total_bytes > 0  # probe cost accounted

    def test_disjoint_files_near_zero(self):
        rng = random.Random(1)
        old = bytes(rng.randrange(256) for _ in range(20000))
        new = bytes(rng.randrange(256) for _ in range(20000))
        probe = probe_similarity(old, new, SimulatedChannel())
        assert probe.similarity < 0.2

    def test_lightly_edited_high_similarity(self):
        old, new = make_version_pair(seed=301, nbytes=30000, edits=3)
        probe = probe_similarity(old, new, SimulatedChannel())
        assert probe.similarity > 0.5

    def test_tiny_server_file_no_samples(self):
        probe = probe_similarity(b"client data", b"tiny", SimulatedChannel())
        assert probe.samples == 0
        assert probe.similarity == 0.0

    def test_probe_cost_is_small(self):
        old, new = make_version_pair(seed=302, nbytes=30000)
        channel = SimulatedChannel()
        probe_similarity(old, new, channel)
        assert channel.stats.total_bytes < 80  # ~24 x 16-bit hashes


class TestChooseConfig:
    def test_dissimilar_gets_shallow_plan(self):
        config = choose_config(ProbeResult(samples=24, matched=1))
        assert config.max_rounds is not None
        assert config.continuation_min_block_size is None

    def test_similar_gets_deep_plan(self):
        config = choose_config(ProbeResult(samples=24, matched=23))
        assert config.min_block_size <= 32
        assert config.continuation_min_block_size is not None

    def test_high_latency_caps_roundtrips(self):
        link = LinkModel(latency_s=0.5)
        config = choose_config(ProbeResult(samples=24, matched=23), link=link)
        assert config.max_rounds is not None
        assert config.verification == "light"

    def test_all_configs_valid(self):
        for matched in range(0, 25, 4):
            for latency in (0.0, 0.5):
                config = choose_config(
                    ProbeResult(samples=24, matched=matched),
                    link=LinkModel(latency_s=latency),
                )
                assert isinstance(config, ProtocolConfig)


class TestAdaptiveSynchronize:
    def test_reconstruction_exact(self):
        old, new = make_version_pair(seed=303, nbytes=20000)
        result, config = adaptive_synchronize(old, new)
        assert result.reconstructed == new
        assert isinstance(config, ProtocolConfig)

    def test_probe_cost_included_in_stats(self):
        old, new = make_version_pair(seed=304, nbytes=20000)
        result, _config = adaptive_synchronize(old, new)
        assert result.stats.bytes_in_phase("probe") > 0

    def test_disjoint_files_fewer_rounds_than_default(self):
        rng = random.Random(2)
        old = bytes(rng.randrange(256) for _ in range(30000))
        new = bytes(rng.randrange(256) for _ in range(30000))
        adaptive_result, config = adaptive_synchronize(old, new)
        default_result = synchronize(old, new)
        assert adaptive_result.reconstructed == new
        assert config.max_rounds is not None
        assert adaptive_result.rounds <= default_result.rounds

    def test_adaptive_not_much_worse_than_default_anywhere(self):
        """The adaptive choice should track the default within a modest
        factor across similarity regimes."""
        for seed, edits in ((305, 2), (306, 20)):
            old, new = make_version_pair(seed=seed, nbytes=20000, edits=edits)
            adaptive_result, _ = adaptive_synchronize(old, new)
            default_result = synchronize(old, new)
            assert adaptive_result.reconstructed == new
            assert adaptive_result.total_bytes < 2.0 * default_result.total_bytes

    def test_high_latency_link_reduces_roundtrips(self):
        old, new = make_version_pair(seed=307, nbytes=30000, edits=10)
        slow = LinkModel(latency_s=0.5)
        slow_result, _ = adaptive_synchronize(old, new, link=slow)
        fast_result, _ = adaptive_synchronize(old, new, link=LinkModel())
        assert slow_result.reconstructed == new
        assert slow_result.stats.roundtrips <= fast_result.stats.roundtrips
