"""Cross-engine fault-injection parity: vectorized vs scalar.

The two protocol round engines promise byte-identical wire traffic, so
under a *fixed fault schedule* every downstream resilience observable —
retry counts, rung descent, retransmission accounting, failure histories
— must be identical too.  Each case builds a fresh same-seed fault plan
per engine (the plan is stateful) and flips the engine via the
``REPRO_PROTOCOL_ENGINE`` environment default both stacks honour.
"""

from __future__ import annotations

import pytest

from repro.bench.methods import OursMethod
from repro.collection import sync_collection
from repro.core.engine import ENGINE_ENV, ENGINES
from repro.exceptions import SyncFailedError
from repro.net import FaultPlan
from repro.resilience import AdaptiveRetryPolicy, RetryPolicy, SyncSupervisor
from repro.workloads import gcc_like
from tests.conftest import make_version_pair

SCENARIOS = {
    "corruption in map phase": lambda: FaultPlan(
        seed=31, corrupt_rate=0.2, phases=frozenset({"map"})
    ),
    "drops in delta phase": lambda: FaultPlan(
        seed=32, drop_rate=0.3, phases=frozenset({"delta"})
    ),
    "disconnect mid split": lambda: FaultPlan(seed=33,
                                              disconnect_after_sends=40),
    "uniform mix at 0.1": lambda: FaultPlan.uniform(0.1, seed=34),
}


def _outcome_fingerprint(outcome):
    return {
        "total_bytes": outcome.total_bytes,
        "breakdown": outcome.breakdown,
        "correct": outcome.correct,
        "retries": outcome.retries,
        "fallback_method": outcome.fallback_method,
        "retransmitted_bytes": outcome.retransmitted_bytes,
        "recovery_seconds": round(outcome.recovery_seconds, 6),
        "health_score": round(outcome.health_score, 6),
        "adaptive_backoff_s": round(outcome.adaptive_backoff_s, 6),
    }


def _supervised_fingerprint(monkeypatch, engine, make_plan, pair,
                            adaptive):
    monkeypatch.setenv(ENGINE_ENV, engine)
    retry = (
        AdaptiveRetryPolicy(max_attempts=3)
        if adaptive
        else RetryPolicy(max_attempts=3)
    )
    supervisor = SyncSupervisor(OursMethod(), retry=retry,
                                fault_plan=make_plan())
    old, new = pair
    outcome = supervisor.sync_file(old, new)
    return _outcome_fingerprint(outcome)


class TestSupervisedFileParity:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIOS)
    @pytest.mark.parametrize("adaptive", [False, True],
                             ids=["static", "adaptive"])
    def test_identical_outcomes_across_engines(self, monkeypatch,
                                               scenario, adaptive):
        pair = make_version_pair(seed=501, nbytes=12000, edits=6)
        make_plan = SCENARIOS[scenario]
        fingerprints = {
            engine: _supervised_fingerprint(
                monkeypatch, engine, make_plan, pair, adaptive
            )
            for engine in ENGINES
        }
        assert fingerprints["vectorized"] == fingerprints["scalar"]
        assert fingerprints["vectorized"]["correct"]

    def test_identical_failure_histories_when_all_rungs_die(
        self, monkeypatch
    ):
        old, new = make_version_pair(seed=502, nbytes=4000, edits=3)
        captured = {}
        for engine in ENGINES:
            monkeypatch.setenv(ENGINE_ENV, engine)
            supervisor = SyncSupervisor(
                OursMethod(),
                retry=RetryPolicy(max_attempts=2),
                fault_plan=FaultPlan(seed=4, corrupt_rate=1.0),
            )
            with pytest.raises(SyncFailedError) as info:
                supervisor.sync_file(old, new)
            captured[engine] = (info.value.attempts, info.value.history)
        assert captured["vectorized"] == captured["scalar"]
        assert captured["vectorized"][0] == 8  # 4 rungs x 2 attempts


class TestCollectionParity:
    @pytest.fixture(scope="class")
    def tree(self):
        return gcc_like(scale=0.05, seed=25)

    @pytest.mark.parametrize("adaptive", [False, True],
                             ids=["static", "adaptive"])
    def test_identical_reports_across_engines(self, monkeypatch, tree,
                                              adaptive):
        reports = {}
        for engine in ENGINES:
            monkeypatch.setenv(ENGINE_ENV, engine)
            report = sync_collection(
                tree.old, tree.new, OursMethod(),
                fault_plan=FaultPlan.uniform(0.08, seed=44),
                on_error="fallback",
                adaptive_retry=adaptive,
            )
            assert report.reconstructed == tree.new
            reports[engine] = (
                report.summary(),
                dict(report.retries),
                sorted(report.fallbacks),
                {
                    name: _outcome_fingerprint(outcome)
                    for name, outcome in report.per_file.items()
                },
            )
        assert reports["vectorized"] == reports["scalar"]
