"""Tests for the server-side rsync matcher."""

from __future__ import annotations

from repro.rsync import Literal, Reference, compute_signatures, match_tokens
from repro.rsync.matcher import apply_tokens
from tests.conftest import make_version_pair


def roundtrip(old: bytes, new: bytes, block_size: int) -> bytes:
    signatures = compute_signatures(old, block_size)
    tokens = match_tokens(new, signatures, strong_bytes=2)
    return apply_tokens(old, tokens, block_size)


class TestMatchTokens:
    def test_identical_files_all_references(self):
        import random

        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(1024))
        signatures = compute_signatures(data, 256)
        tokens = match_tokens(data, signatures, strong_bytes=2)
        assert all(isinstance(t, Reference) for t in tokens)
        assert [t.index for t in tokens] == [0, 1, 2, 3]

    def test_no_signatures_whole_file_literal(self):
        tokens = match_tokens(b"abc", [], strong_bytes=2)
        assert tokens == [Literal(b"abc")]

    def test_empty_new_file(self):
        signatures = compute_signatures(b"old stuff", 4)
        assert match_tokens(b"", signatures, strong_bytes=2) == []

    def test_shifted_content_still_matches(self):
        """An insertion misaligns block boundaries; the rolling scan must
        recover matches at unaligned offsets."""
        old = bytes(range(256)) * 8
        new = b"INSERT" + old
        signatures = compute_signatures(old, 256)
        tokens = match_tokens(new, signatures, strong_bytes=2)
        references = [t for t in tokens if isinstance(t, Reference)]
        assert len(references) == len(old) // 256

    def test_tail_block_matches(self):
        old = b"A" * 1000 + b"short-tail"
        signatures = compute_signatures(old, 1000)
        tokens = match_tokens(old, signatures, strong_bytes=2)
        assert Reference(1) in tokens

    def test_reconstruction_with_edits(self):
        old, new = make_version_pair(seed=20)
        assert roundtrip(old, new, 700) == new

    def test_reconstruction_small_blocks(self):
        old, new = make_version_pair(seed=21, nbytes=5000)
        assert roundtrip(old, new, 64) == new

    def test_disjoint_files_all_literal(self):
        old = b"A" * 3000
        new = b"B" * 3000
        signatures = compute_signatures(old, 700)
        tokens = match_tokens(new, signatures, strong_bytes=2)
        assert all(isinstance(t, Literal) for t in tokens)
        assert apply_tokens(old, tokens, 700) == new
