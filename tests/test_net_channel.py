"""Tests for the simulated channel."""

from __future__ import annotations

import pytest

from repro.exceptions import ChannelClosedError
from repro.net import Direction, LinkModel, SimulatedChannel


class TestSendReceive:
    def test_fifo_per_direction(self):
        channel = SimulatedChannel()
        channel.send(Direction.CLIENT_TO_SERVER, b"one", "map")
        channel.send(Direction.CLIENT_TO_SERVER, b"two", "map")
        assert channel.receive(Direction.CLIENT_TO_SERVER) == b"one"
        assert channel.receive(Direction.CLIENT_TO_SERVER) == b"two"

    def test_directions_independent(self):
        channel = SimulatedChannel()
        channel.send(Direction.CLIENT_TO_SERVER, b"up", "map")
        channel.send(Direction.SERVER_TO_CLIENT, b"down", "map")
        assert channel.receive(Direction.SERVER_TO_CLIENT) == b"down"
        assert channel.receive(Direction.CLIENT_TO_SERVER) == b"up"

    def test_receive_without_message_raises(self):
        with pytest.raises(ChannelClosedError):
            SimulatedChannel().receive(Direction.CLIENT_TO_SERVER)

    def test_pending(self):
        channel = SimulatedChannel()
        assert channel.pending(Direction.CLIENT_TO_SERVER) == 0
        channel.send(Direction.CLIENT_TO_SERVER, b"x", "map")
        assert channel.pending(Direction.CLIENT_TO_SERVER) == 1

    def test_closed_channel_rejects_io(self):
        channel = SimulatedChannel()
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.send(Direction.CLIENT_TO_SERVER, b"x", "map")
        with pytest.raises(ChannelClosedError):
            channel.receive(Direction.CLIENT_TO_SERVER)


class TestAccounting:
    def test_bytes_recorded_by_phase(self):
        channel = SimulatedChannel()
        channel.send(Direction.SERVER_TO_CLIENT, b"abcd", "map")
        channel.send(Direction.SERVER_TO_CLIENT, b"ab", "delta")
        assert channel.stats.bytes_in_phase("map") == 4
        assert channel.stats.bytes_in_phase("delta") == 2

    def test_roundtrips_count_direction_flips(self):
        channel = SimulatedChannel()
        channel.send(Direction.CLIENT_TO_SERVER, b"1", "map")
        channel.send(Direction.CLIENT_TO_SERVER, b"2", "map")  # same direction
        channel.send(Direction.SERVER_TO_CLIENT, b"3", "map")
        channel.send(Direction.CLIENT_TO_SERVER, b"4", "map")
        assert channel.roundtrips == 3

    def test_empty_payload_allowed(self):
        channel = SimulatedChannel()
        channel.send(Direction.CLIENT_TO_SERVER, b"", "map")
        assert channel.receive(Direction.CLIENT_TO_SERVER) == b""


class TestLinkModel:
    def test_transfer_time_components(self):
        link = LinkModel(bandwidth_bps=8000.0, latency_s=0.5)
        # 1000 bytes = 8000 bits = 1 s serialisation; 2 roundtrips = 2 s.
        assert link.transfer_time(1000, 2) == pytest.approx(3.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=0).transfer_time(1, 1)

    def test_channel_estimate_uses_link(self):
        channel = SimulatedChannel(LinkModel(bandwidth_bps=8000.0, latency_s=0.0))
        channel.send(Direction.CLIENT_TO_SERVER, b"x" * 1000, "map")
        assert channel.estimated_transfer_time() == pytest.approx(1.0)
