"""Chaos schedules and the soak harness.

Covers the :class:`~repro.net.chaos.ChaosProfile` shapes as pure
functions, the determinism contract of
:class:`~repro.net.chaos.ScheduledFaultPlan` (same shape+seed ⇒ same
fault sequence, whatever traffic rides the link), the soak matrix
invariants, and — via a hypothesis state machine — the legality of every
circuit-breaker transition under arbitrary interleavings.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.net import Direction
from repro.net.chaos import (
    CHAOS_SHAPES,
    ChaosProfile,
    ScheduledFaultPlan,
    chaos_plan,
)
from repro.resilience.adaptive import BreakerState, CircuitBreaker


class TestChaosProfile:
    def test_steady_is_flat(self):
        profile = ChaosProfile(shape="steady", rate=0.3)
        assert {profile.rate_at(i) for i in range(500)} == {0.3}

    def test_bursty_alternates_peak_and_quiet(self):
        profile = ChaosProfile(shape="bursty", rate=0.4, quiet_rate=0.05,
                               burst_every=100, burst_length=20)
        assert profile.rate_at(0) == 0.4       # burst head
        assert profile.rate_at(19) == 0.4      # last burst send
        assert profile.rate_at(20) == 0.05     # quiet tail
        assert profile.rate_at(99) == 0.05
        assert profile.rate_at(100) == 0.4     # next cycle

    def test_periodic_square_wave(self):
        profile = ChaosProfile(shape="periodic", rate=0.4, quiet_rate=0.1,
                               burst_every=50)
        assert profile.rate_at(0) == 0.1       # even half-cycle: quiet
        assert profile.rate_at(49) == 0.1
        assert profile.rate_at(50) == 0.4      # odd half-cycle: peak
        assert profile.rate_at(99) == 0.4
        assert profile.rate_at(100) == 0.1

    def test_degrading_ramps_then_pins(self):
        profile = ChaosProfile(shape="degrading", rate=0.4, quiet_rate=0.0,
                               ramp_sends=100)
        assert profile.rate_at(0) == 0.0
        assert profile.rate_at(50) == pytest.approx(0.2)
        assert profile.rate_at(100) == 0.4
        assert profile.rate_at(10_000) == 0.4  # pinned at peak

    def test_rates_always_bounded(self):
        for shape in CHAOS_SHAPES:
            profile = chaos_plan(shape, rate=0.35).profile
            for i in range(0, 2000, 7):
                assert 0.0 <= profile.rate_at(i) <= 0.35

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosProfile(shape="lumpy")
        with pytest.raises(ValueError):
            ChaosProfile(rate=1.5)
        with pytest.raises(ValueError):
            ChaosProfile(rate=0.1, quiet_rate=0.2)
        with pytest.raises(ValueError):
            ChaosProfile(burst_every=10, burst_length=11)
        with pytest.raises(ValueError):
            chaos_plan("lumpy")


def _fault_sequence(plan: ScheduledFaultPlan, sends: int) -> list:
    """Drive ``sends`` messages and return the (kind, send#) log."""
    channel = plan.channel()
    for _ in range(sends):
        try:
            channel.send(Direction.CLIENT_TO_SERVER, b"x" * 64, "map")
        except Exception:
            channel = plan.channel()  # disconnect: reconnect, keep going
    return [(event.kind, event.send_index) for event in plan.fault_log]


class TestScheduledFaultPlan:
    @pytest.mark.parametrize("shape", CHAOS_SHAPES)
    def test_same_seed_same_fault_sequence(self, shape):
        first = _fault_sequence(chaos_plan(shape, seed=7), 400)
        second = _fault_sequence(chaos_plan(shape, seed=7), 400)
        assert first == second

    def test_different_seeds_differ(self):
        first = _fault_sequence(chaos_plan("bursty", seed=1), 400)
        second = _fault_sequence(chaos_plan("bursty", seed=2), 400)
        assert first != second

    def test_quiet_phase_injects_nothing(self):
        """With quiet_rate=0 every injected fault lands inside a burst."""
        plan = chaos_plan("bursty", seed=5, rate=0.5,
                          burst_every=100, burst_length=20, quiet_rate=0.0)
        _fault_sequence(plan, 1000)
        assert plan.fault_log  # the bursts did fire
        for event in plan.fault_log:
            assert (event.send_index - 1) % 100 < 20

    def test_profileless_plan_is_plain_fault_plan(self):
        plan = ScheduledFaultPlan(seed=1, corrupt_rate=0.2)
        assert plan.profile is None
        _fault_sequence(plan, 100)  # must not crash


class TestRunSoak:
    @pytest.fixture(scope="class")
    def soak(self):
        from repro.bench.soak import run_soak

        return run_soak(shapes=("bursty", "degrading"), seeds=(1, 2),
                        profile="short")

    def test_matrix_dimensions(self, soak):
        assert len(soak.rows) == 4
        assert {(r.shape, r.seed) for r in soak.rows} == {
            ("bursty", 1), ("bursty", 2), ("degrading", 1), ("degrading", 2),
        }

    def test_every_cell_consistent(self, soak):
        """The tentpole invariant: every healthy file completes, every
        pathological file is reported — nothing vanishes."""
        assert soak.all_cells_consistent
        for row in soak.rows:
            assert row.files_synced + row.files_failed == row.files_changed
            assert len(row.failed_names) == row.files_failed

    def test_hostile_cells_report_adaptive_activity(self, soak):
        assert any(row.retries > 0 for row in soak.rows)
        assert any(row.health_score < 1.0 for row in soak.rows)
        assert any(row.faults_injected > 0 for row in soak.rows)

    def test_render_and_json(self, soak):
        text = soak.render()
        assert "chaos soak [short]" in text
        assert "every healthy file synced" in text
        payload = json.loads(soak.to_json())
        assert payload["all_cells_consistent"] is True
        assert len(payload["rows"]) == 4

    def test_deterministic_across_runs(self):
        from repro.bench.soak import run_soak

        first = run_soak(shapes=("periodic",), seeds=(3,), profile="short")
        second = run_soak(shapes=("periodic",), seeds=(3,), profile="short")
        strip = lambda row: {
            k: v for k, v in vars(row).items() if k != "elapsed_seconds"
        }
        assert [strip(r) for r in first.rows] == [
            strip(r) for r in second.rows
        ]

    def test_unknown_profile_rejected(self):
        from repro.bench.soak import run_soak

        with pytest.raises(ValueError):
            run_soak(profile="marathon")


class BreakerMachine(RuleBasedStateMachine):
    """Arbitrary interleavings of attempts, failures, successes and
    clock advances must never drive a breaker into an illegal state."""

    def __init__(self):
        super().__init__()
        self.breaker = CircuitBreaker(
            failure_threshold=3, cooldown_s=10.0,
            cooldown_multiplier=2.0, max_cooldown_s=100.0,
        )
        self.clock = 0.0
        self.admitted = True

    @rule(seconds=st.floats(min_value=0.0, max_value=50.0,
                            allow_nan=False))
    def advance(self, seconds):
        self.clock += seconds

    @rule()
    def attempt(self):
        self.admitted = self.breaker.allow(self.clock)

    @rule()
    def fail(self):
        if self.admitted:
            self.breaker.record_failure(self.clock)

    @rule()
    def succeed(self):
        if self.admitted:
            self.breaker.record_success(self.clock)
            assert self.breaker.state == BreakerState.CLOSED

    @invariant()
    def state_is_legal(self):
        assert self.breaker.state in (
            BreakerState.CLOSED, BreakerState.OPEN, BreakerState.HALF_OPEN
        )
        assert self.breaker.consecutive_failures >= 0
        assert self.breaker.opens >= 0
        assert (
            self.breaker.cooldown_s
            <= self.breaker._current_cooldown
            <= self.breaker.max_cooldown_s
        )

    @invariant()
    def closed_means_under_threshold_since_trip(self):
        if self.breaker.state == BreakerState.CLOSED:
            # A closed breaker either never reached the threshold or was
            # reset by a success; it can never sit at/above it.
            assert (
                self.breaker.consecutive_failures
                < self.breaker.failure_threshold
            )


BreakerMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestBreakerStateMachine = BreakerMachine.TestCase
