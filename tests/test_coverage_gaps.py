"""Focused tests for paths the broader suites touch only incidentally."""

from __future__ import annotations

import random

import pytest

from repro.bench import render_grouped_bars
from repro.cli import main
from repro.core.adaptive import probe_hash_bits
from repro.delta.matcher import ReferenceMatcher
from repro.net import Direction, TransferStats
from repro.theory import (
    exchange_lower_bound_bits,
    multiround_upper_bound_bits,
)


class TestProbeHashBits:
    def test_scales_with_client_length(self):
        assert probe_hash_bits(1 << 10) == 16
        assert probe_hash_bits(1 << 20) == 26
        assert probe_hash_bits(1 << 30) == 30  # clamped

    def test_floor_and_ceiling(self):
        assert probe_hash_bits(0) == 16
        assert probe_hash_bits(1 << 40) == 30

    def test_collision_budget(self):
        """Width keeps expected false probe matches below ~2%."""
        for n in (1 << 12, 1 << 16, 1 << 20):
            bits = probe_hash_bits(n)
            assert n * 2.0 ** (-bits) < 0.02


class TestStatsBitBuckets:
    def test_rounding_once_per_bucket(self):
        stats = TransferStats()
        # 3 bits + 4 bits in one bucket = 7 bits = 1 byte (not 2).
        stats.record_bits(Direction.CLIENT_TO_SERVER, "map", 3)
        stats.record_bits(Direction.CLIENT_TO_SERVER, "map", 4)
        assert stats.total_bytes == 1

    def test_distinct_buckets_round_separately(self):
        stats = TransferStats()
        stats.record_bits(Direction.CLIENT_TO_SERVER, "map", 1)
        stats.record_bits(Direction.SERVER_TO_CLIENT, "map", 1)
        assert stats.total_bytes == 2

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            TransferStats().record_bits(Direction.CLIENT_TO_SERVER, "map", -1)


class TestMatcherCandidateCap:
    def test_cap_respected_on_periodic_reference(self):
        reference = b"abcdefghijklmnop" * 256  # same seed everywhere
        matcher = ReferenceMatcher(reference, seed_length=16)
        from repro.hashing.scan import window_hashes
        from repro.delta.matcher import _SEED_HASHER

        seed_hash = int(window_hashes(reference[:16], 16, _SEED_HASHER)[0])
        assert len(matcher.candidates(seed_hash, cap=5)) == 5
        assert len(matcher.candidates(seed_hash, cap=100)) == 100

    def test_no_match_empty(self):
        matcher = ReferenceMatcher(b"some reference data here", seed_length=8)
        assert matcher.candidates(0xDEADBEEF).tolist() in ([], [0])  # hash may be real


class TestBarsRendering:
    def test_tiny_nonzero_values_get_a_bar(self):
        chart = render_grouped_bars(["g"], {"a": [0.001], "b": [100.0]})
        lines = [line for line in chart.splitlines() if "|" in line]
        assert lines[0].split("|")[1].count("#") >= 1

    def test_empty_series(self):
        assert render_grouped_bars([], {}) == ""
        chart = render_grouped_bars(["g"], {})
        assert "g:" in chart


class TestTheoryGrids:
    def test_lower_bound_never_exceeds_multiround_times_constant(self):
        """Sanity across a grid: the upper bound dominates the lower
        bound for every realistic (n, k)."""
        for n in (1 << 12, 1 << 16, 1 << 20):
            for k in (1, 4, 16, 64):
                lower = exchange_lower_bound_bits(n, k)
                upper = multiround_upper_bound_bits(n, k)
                assert upper > lower / 4  # same order or better


class TestCliBenchVariants:
    def test_emacs_workload(self, capsys):
        assert main(["bench", "--workload", "emacs", "--scale", "0.05"]) == 0
        assert "ours" in capsys.readouterr().out

    def test_seed_changes_numbers(self, capsys):
        main(["bench", "--workload", "gcc", "--scale", "0.05", "--seed", "1"])
        first = capsys.readouterr().out
        main(["bench", "--workload", "gcc", "--scale", "0.05", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestWorkloadRealism:
    def test_source_tree_files_compress_like_code(self):
        import zlib

        from repro.workloads import gcc_like

        tree = gcc_like(scale=0.05, seed=12)
        sample = max(tree.old.values(), key=len)
        ratio = len(sample) / len(zlib.compress(sample, 9))
        assert 2.5 < ratio < 12

    def test_web_pages_compress_like_html(self):
        import random as random_module
        import zlib

        from repro.workloads import HtmlGenerator

        page = HtmlGenerator(0).generate(20000, random_module.Random(0))
        ratio = len(page) / len(zlib.compress(page, 9))
        assert 2.0 < ratio < 12
