"""Tests for transfer statistics accounting."""

from __future__ import annotations

import pytest

from repro.net import Direction, TransferStats


class TestDirection:
    def test_opposites(self):
        assert Direction.CLIENT_TO_SERVER.opposite is Direction.SERVER_TO_CLIENT
        assert Direction.SERVER_TO_CLIENT.opposite is Direction.CLIENT_TO_SERVER


class TestTransferStats:
    def test_empty(self):
        stats = TransferStats()
        assert stats.total_bytes == 0
        assert stats.messages == 0
        assert stats.phases() == []

    def test_record_accumulates(self):
        stats = TransferStats()
        stats.record(Direction.CLIENT_TO_SERVER, "map", 100)
        stats.record(Direction.CLIENT_TO_SERVER, "map", 50)
        stats.record(Direction.SERVER_TO_CLIENT, "delta", 30)
        assert stats.total_bytes == 180
        assert stats.client_to_server_bytes == 150
        assert stats.server_to_client_bytes == 30
        assert stats.bytes_in_phase("map") == 150
        assert stats.bytes_in_phase("delta") == 30
        assert stats.messages == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TransferStats().record(Direction.CLIENT_TO_SERVER, "map", -1)

    def test_zero_byte_message_counts_as_message(self):
        stats = TransferStats()
        stats.record(Direction.CLIENT_TO_SERVER, "map", 0)
        assert stats.messages == 1
        assert stats.total_bytes == 0

    def test_phases_sorted(self):
        stats = TransferStats()
        stats.record(Direction.CLIENT_TO_SERVER, "zeta", 1)
        stats.record(Direction.CLIENT_TO_SERVER, "alpha", 1)
        assert stats.phases() == ["alpha", "zeta"]

    def test_breakdown_keys(self):
        stats = TransferStats()
        stats.record(Direction.SERVER_TO_CLIENT, "map", 10)
        stats.record(Direction.CLIENT_TO_SERVER, "map", 5)
        assert stats.breakdown() == {"c2s/map": 5, "s2c/map": 10}

    def test_merge(self):
        first = TransferStats()
        first.record(Direction.CLIENT_TO_SERVER, "map", 10)
        first.roundtrips = 4
        second = TransferStats()
        second.record(Direction.CLIENT_TO_SERVER, "map", 7)
        second.record(Direction.SERVER_TO_CLIENT, "delta", 3)
        second.roundtrips = 2
        first.merge(second)
        assert first.total_bytes == 20
        assert first.messages == 3
        assert first.roundtrips == 4  # max, not sum

    def test_str_contains_total(self):
        stats = TransferStats()
        stats.record(Direction.CLIENT_TO_SERVER, "map", 42)
        assert "42" in str(stats)


class TestMergeOrderTolerance:
    """Out-of-order worker completion must not perturb merged accounting."""

    @staticmethod
    def _phase_stats(phase: str, direction: Direction, nbytes: int) -> TransferStats:
        stats = TransferStats()
        stats.record(direction, phase, nbytes)
        return stats

    def _parts(self) -> list[TransferStats]:
        return [
            self._phase_stats("delta", Direction.SERVER_TO_CLIENT, 30),
            self._phase_stats("map", Direction.CLIENT_TO_SERVER, 10),
            self._phase_stats("fingerprint", Direction.SERVER_TO_CLIENT, 16),
            self._phase_stats("map", Direction.SERVER_TO_CLIENT, 25),
        ]

    def test_merge_order_independent(self):
        forward = TransferStats()
        for part in self._parts():
            forward.merge(part)
        backward = TransferStats()
        for part in reversed(self._parts()):
            backward.merge(part)
        assert forward.breakdown() == backward.breakdown()
        assert list(forward.bits_by.items()) == list(backward.bits_by.items())
        assert str(forward) == str(backward)
        assert forward.total_bytes == backward.total_bytes

    def test_merge_canonicalises_iteration_order(self):
        stats = TransferStats()
        stats.record(Direction.SERVER_TO_CLIENT, "zeta", 1)
        stats.merge(self._phase_stats("alpha", Direction.CLIENT_TO_SERVER, 1))
        keys = [
            (direction.value, phase) for direction, phase in stats.bits_by
        ]
        assert keys == sorted(keys)

    def test_breakdown_stable_without_merge(self):
        stats = TransferStats()
        stats.record(Direction.SERVER_TO_CLIENT, "map", 10)
        stats.record(Direction.CLIENT_TO_SERVER, "ack", 1)
        assert list(stats.breakdown()) == ["c2s/ack", "s2c/map"]
