"""Tests for the surgical repair rounds (group-digest descent)."""

from __future__ import annotations

import random

import pytest

from repro.core.repair import (
    DEFAULT_REPAIR_FANOUT,
    PHASE_REPAIR,
    repair_exchange,
    repair_salt,
)
from repro.hashing import file_fingerprint
from repro.multiround.protocol import multiround_rsync_sync
from repro.net.channel import SimulatedChannel
from repro.net.faults import CollisionFaultPlan, FaultKind
from repro.rsync import rsync_sync
from tests.conftest import make_version_pair


def damage(data: bytes, at: int, span: int = 4, seed: int = 0) -> bytes:
    rng = random.Random(seed)
    out = bytearray(data)
    for offset in range(at, min(at + span, len(out))):
        out[offset] ^= rng.randrange(1, 256)
    return bytes(out)


class TestRepairExchange:
    @pytest.fixture
    def target(self):
        return random.Random(21).randbytes(40_000)

    def test_single_leaf_localized_and_fixed(self, target):
        damaged = damage(target, at=8_200)
        channel = SimulatedChannel()
        result = repair_exchange(
            channel, damaged, target, file_fingerprint(target), leaf_size=700
        )
        assert result.converged
        assert result.data == target
        assert result.leaves_repaired == 1
        assert result.rounds >= 1
        # Surgical: only a leaf (plus descent probes) crossed the wire.
        assert channel.stats.bytes_in_phase(PHASE_REPAIR) < len(target) // 4
        assert channel.stats.total_bytes == channel.stats.bytes_in_phase(
            PHASE_REPAIR
        )

    def test_multiple_scattered_leaves(self, target):
        damaged = target
        for at in (100, 17_000, 39_500):
            damaged = damage(damaged, at=at, seed=at)
        result = repair_exchange(
            SimulatedChannel(), damaged, target,
            file_fingerprint(target), leaf_size=700,
        )
        assert result.converged
        assert result.data == target
        assert result.leaves_repaired == 3

    def test_wider_fanout_uses_fewer_rounds(self, target):
        damaged = damage(target, at=8_200)
        narrow = repair_exchange(
            SimulatedChannel(), damaged, target,
            file_fingerprint(target), leaf_size=700, fanout=2,
        )
        wide = repair_exchange(
            SimulatedChannel(), damaged, target,
            file_fingerprint(target), leaf_size=700, fanout=8,
        )
        assert narrow.converged and wide.converged
        assert wide.rounds < narrow.rounds

    def test_equal_data_does_not_converge(self, target):
        """No divergent leaf found → the caller must fall back, never
        trust a blind 'repair'."""
        result = repair_exchange(
            SimulatedChannel(), target, target,
            file_fingerprint(b"something else"), leaf_size=700,
        )
        assert not result.converged
        assert result.leaves_repaired == 0

    def test_validation(self, target):
        fp = file_fingerprint(target)
        with pytest.raises(ValueError):
            repair_exchange(
                SimulatedChannel(), target[:-1], target, fp, leaf_size=700
            )
        with pytest.raises(ValueError):
            repair_exchange(
                SimulatedChannel(), target, target, fp, leaf_size=0
            )
        with pytest.raises(ValueError):
            repair_exchange(
                SimulatedChannel(), target, target, fp, leaf_size=700,
                fanout=1,
            )

    def test_empty_target_refused(self):
        result = repair_exchange(
            SimulatedChannel(), b"", b"", file_fingerprint(b""), leaf_size=64
        )
        assert not result.converged

    def test_tiny_file_single_leaf(self):
        target = b"0123456789"
        damaged = damage(target, at=3, span=2)
        result = repair_exchange(
            SimulatedChannel(), damaged, target,
            file_fingerprint(target), leaf_size=64,
        )
        assert result.converged
        assert result.data == target

    def test_salt_is_per_fingerprint(self):
        assert repair_salt(b"a" * 16) != repair_salt(b"b" * 16)


class TestProtocolIntegration:
    @pytest.fixture
    def pair(self):
        return make_version_pair(seed=83, nbytes=60_000)

    def test_rsync_collision_repaired_surgically(self, pair):
        old, new = pair
        plan = CollisionFaultPlan(seed=6)
        result = rsync_sync(old, new, channel=plan.channel())
        assert plan.injected[FaultKind.COLLIDE] == 1
        assert result.reconstructed == new
        assert result.collisions_detected == 1
        assert result.repaired and not result.used_fallback
        assert result.repair_rounds > 0
        assert 0 < result.repair_bytes < len(new) // 4
        # Successful repair is *useful* traffic, not retransmission.
        assert result.stats.retransmitted_bytes == 0

    def test_multiround_collision_repaired_surgically(self, pair):
        old, new = pair
        plan = CollisionFaultPlan(seed=6)
        result = multiround_rsync_sync(old, new, channel=plan.channel())
        assert plan.injected[FaultKind.COLLIDE] == 1
        assert result.reconstructed == new
        assert result.collisions_detected == 1
        assert result.repaired and not result.used_fallback
        assert 0 < result.repair_bytes < len(new) // 4

    def test_engine_parity_under_forced_collision(self, pair):
        old, new = pair
        results = {}
        for engine in ("scalar", "vectorized"):
            plan = CollisionFaultPlan(seed=6)
            results[engine] = multiround_rsync_sync(
                old, new, channel=plan.channel(), engine=engine
            )
        scalar, vectorized = results["scalar"], results["vectorized"]
        assert scalar.reconstructed == vectorized.reconstructed == new
        assert scalar.stats.breakdown() == vectorized.stats.breakdown()
        assert scalar.repair_rounds == vectorized.repair_rounds
        assert scalar.repair_bytes == vectorized.repair_bytes

    def test_repair_disabled_falls_back(self, pair):
        old, new = pair
        plan = CollisionFaultPlan(seed=6)
        result = rsync_sync(old, new, channel=plan.channel(), repair=False)
        assert result.used_fallback and not result.repaired
        assert result.reconstructed == new
        # The doomed delta AND the whole-file fallback are charged as
        # retransmission (NACK-plus-whole-file satellite).
        assert result.stats.retransmitted_bytes > 0

    def test_failed_repair_falls_back(self, pair, monkeypatch):
        """A repair that cannot converge must surrender to the full
        fallback, with all its traffic rebilled as retransmission."""
        import repro.multiround.protocol as multiround_mod
        import repro.rsync.protocol as rsync_mod
        from repro.core.repair import RepairResult

        def never_converges(channel, damaged, target, *args, **kwargs):
            return RepairResult(damaged, 3, 0, 0, converged=False)

        old, new = pair
        monkeypatch.setattr(rsync_mod, "repair_exchange", never_converges)
        monkeypatch.setattr(
            multiround_mod, "repair_exchange", never_converges
        )
        for result in (
            rsync_sync(
                old, new, channel=CollisionFaultPlan(seed=6).channel()
            ),
            multiround_rsync_sync(
                old, new, channel=CollisionFaultPlan(seed=6).channel()
            ),
        ):
            assert result.used_fallback and not result.repaired
            assert result.reconstructed == new
            assert result.collisions_detected == 1
            assert result.stats.retransmitted_bytes > 0

    def test_clean_run_untouched(self, pair):
        """No collision → no repair traffic, no counters, identical
        accounting to a plain channel run."""
        old, new = pair
        plain = rsync_sync(old, new)
        assert plain.collisions_detected == 0
        assert plain.repair_rounds == 0 and plain.repair_bytes == 0
        assert not plain.repaired
        assert plain.stats.bytes_in_phase(PHASE_REPAIR) == 0
        multi = multiround_rsync_sync(old, new)
        assert multi.collisions_detected == 0
        assert multi.stats.bytes_in_phase(PHASE_REPAIR) == 0

    def test_repair_fanout_knob(self, pair):
        old, new = pair
        rounds = {}
        for fanout in (2, 8):
            plan = CollisionFaultPlan(seed=6)
            result = rsync_sync(
                old, new, channel=plan.channel(), repair_fanout=fanout
            )
            assert result.repaired
            rounds[fanout] = result.repair_rounds
        assert rounds[8] < rounds[2]
        assert DEFAULT_REPAIR_FANOUT == 2


class TestCounterPlumbing:
    def test_counters_flow_to_collection_report(self):
        from repro.bench.methods import MultiroundRsyncMethod
        from repro.collection import sync_collection

        old, new = make_version_pair(seed=85, nbytes=30_000)
        client = {"a.bin": old, "same.bin": b"unchanged"}
        server = {"a.bin": new, "same.bin": b"unchanged"}
        plan = CollisionFaultPlan(seed=2)
        report = sync_collection(
            client, server, MultiroundRsyncMethod(), fault_plan=plan
        )
        assert report.reconstructed["a.bin"] == new
        assert report.collisions_detected == 1
        assert report.repair_bytes > 0

    def test_counters_flow_to_export_row(self):
        from repro.bench.export import run_to_row
        from repro.bench.methods import MultiroundRsyncMethod
        from repro.bench.runner import run_method_on_collection

        old, new = make_version_pair(seed=86, nbytes=30_000)
        run = run_method_on_collection(
            MultiroundRsyncMethod(), {"a.bin": old}, {"a.bin": new}
        )
        row = run_to_row(run)
        assert row["collisions_detected"] == 0
        assert row["repair_rounds"] == 0
        assert row["repair_bytes"] == 0
