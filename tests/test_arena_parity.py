"""The arena dispatch path must be invisible in every observable result.

Reports produced through the zero-copy shared-memory substrate are
asserted byte-identical to both the serial path and the classic pickle
path — across workloads, per-file error capture, chunk-retry crash
isolation, and fault injection — and the arena lifecycle must leave no
``/dev/shm`` segment behind even when a worker is killed mid-chunk.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.bench import OursMethod, ZdeltaMethod
from repro.collection import sync_collection
from repro.parallel import FileTask, SyncExecutor, arena_available, arena_pool
from repro.syncmethod import MethodOutcome, SyncMethod
from repro.workloads import gcc_like

from tests.test_faults_collection import _CrashOutsideParent, _DoomedMethod
from tests.test_parallel_sync import PAIRS, _assert_reports_identical

pytestmark = pytest.mark.skipif(
    not arena_available(), reason="POSIX shared memory unavailable"
)


def _segments() -> set[str]:
    return set(glob.glob("/dev/shm/repro-arena-*"))


def _three_way(old, new, method_factory, **kwargs):
    serial = sync_collection(old, new, method_factory(), workers=1, **kwargs)
    pickled = sync_collection(
        old, new, method_factory(), workers=2, use_arena=False, **kwargs
    )
    arena = sync_collection(
        old, new, method_factory(), workers=2, use_arena=True, **kwargs
    )
    return serial, pickled, arena


class TestReportParity:
    @pytest.mark.parametrize("workload", sorted(PAIRS))
    def test_arena_matches_serial_and_pickle_ours(self, workload):
        old, new = PAIRS[workload]()
        serial, pickled, arena = _three_way(old, new, OursMethod)
        _assert_reports_identical(serial, pickled)
        _assert_reports_identical(serial, arena)
        assert pickled.arena_used is False

    @pytest.mark.parametrize("workload", sorted(PAIRS))
    def test_arena_matches_serial_and_pickle_zdelta(self, workload):
        old, new = PAIRS[workload]()
        serial, pickled, arena = _three_way(old, new, ZdeltaMethod)
        _assert_reports_identical(serial, pickled)
        _assert_reports_identical(serial, arena)

    def test_arena_engages_on_multifile_batches(self):
        tree = gcc_like(scale=0.05, seed=41)
        report = sync_collection(
            tree.old, tree.new, ZdeltaMethod(), workers=2, use_arena=True
        )
        if len(report.diff.changed) + len(report.diff.added) > 1:
            assert report.arena_used
            assert report.arena_bytes > 0
        assert report.reconstructed == tree.new


class TestErrorHandlingParity:
    files_old = {
        "good.txt": b"old-good " * 50,
        "bad.txt": b"POISON old " * 50,
        "also.txt": b"more old " * 50,
    }
    files_new = {
        "good.txt": b"new-good " * 50,
        "bad.txt": b"POISON new " * 50,
        "also.txt": b"more new " * 50,
    }

    @pytest.mark.parametrize("on_error", ["skip", "fallback"])
    def test_capture_errors_parity(self, on_error):
        def factory():
            return _DoomedMethod("POISON")

        serial, pickled, arena = _three_way(
            self.files_old, self.files_new, factory, on_error=on_error
        )
        _assert_reports_identical(serial, pickled)
        _assert_reports_identical(serial, arena)
        assert serial.failed == arena.failed
        assert serial.fallbacks == arena.fallbacks

    def test_fault_injection_parity(self):
        """Under injected channel faults the dispatch substrate must be
        invisible: the pickle and arena paths (same workers, same chunking,
        hence identical per-worker fault-plan streams) produce identical
        reports, and both reconstruct the target.  The serial run is *not*
        compared byte-for-byte — the fault plan is one RNG stream advanced
        in file order, so partitioning files across workers legitimately
        realises different faults than the serial order does."""
        from repro.net import FaultPlan

        tree = gcc_like(scale=0.05, seed=42)

        def run(**kwargs):
            return sync_collection(
                tree.old,
                tree.new,
                OursMethod(),
                fault_plan=FaultPlan.uniform(0.1, seed=7),
                on_error="fallback",
                **kwargs,
            )

        pickled = run(workers=2, use_arena=False)
        arena = run(workers=2, use_arena=True)
        _assert_reports_identical(pickled, arena)
        assert arena.reconstructed == tree.new
        assert pickled.reconstructed == tree.new


class TestCrashCleanup:
    def test_sigkilled_worker_retried_and_no_segment_leaked(self):
        """A worker dying mid-chunk on the arena path loses nothing: the
        parent retries from its own payload bytes, and releasing the
        arena in ``finally`` plus a pool drain leaves ``/dev/shm``
        exactly as it was."""
        before = _segments()
        tasks = [
            FileTask(f"f{index}", b"old " * 64, f"new-{index} ".encode() * 64)
            for index in range(8)
        ]
        executor = SyncExecutor(workers=2, chunk_size=2, use_arena=True)
        batch = executor.run(_CrashOutsideParent(), tasks)
        assert [result.name for result in batch.files] == [
            task.name for task in tasks
        ]
        assert all(result.error is None for result in batch.files)
        assert batch.chunk_retries >= 1
        arena_pool().drain()
        assert _segments() - before == set()

    def test_hard_exit_worker_segment_swept(self):
        """Same, with the method killing the worker via ``os._exit`` on
        the *first* file — the pool breaks immediately."""

        class _InstantDeath(SyncMethod):
            name = "instant-death"
            supports_pickle = True

            def __init__(self) -> None:
                self.parent_pid = os.getpid()

            def sync_file(self, old, new):
                if os.getpid() != self.parent_pid:
                    os._exit(17)
                return MethodOutcome(
                    total_bytes=len(new), server_to_client=len(new)
                )

        before = _segments()
        tasks = [FileTask(f"g{i}", b"o" * 32, b"n" * 32) for i in range(6)]
        batch = SyncExecutor(workers=2, chunk_size=1, use_arena=True).run(
            _InstantDeath(), tasks
        )
        assert len(batch.files) == len(tasks)
        assert batch.chunk_retries >= 1
        arena_pool().drain()
        assert _segments() - before == set()


class TestFallbackPath:
    def test_unavailable_arena_falls_back_to_pickle(self, monkeypatch):
        import repro.parallel.arena as arena_module

        monkeypatch.setattr(arena_module, "arena_available", lambda: False)
        tree = gcc_like(scale=0.05, seed=43)
        serial = sync_collection(tree.old, tree.new, ZdeltaMethod(), workers=1)
        fallback = sync_collection(
            tree.old, tree.new, ZdeltaMethod(), workers=2, use_arena=None
        )
        assert fallback.arena_used is False
        _assert_reports_identical(serial, fallback)

    def test_pack_failure_falls_back_to_pickle(self, monkeypatch):
        import repro.parallel.arena as arena_module

        def broken_pack(self, tasks):
            raise arena_module.ArenaError("simulated pack failure")

        monkeypatch.setattr(
            arena_module.CollectionArena, "pack", broken_pack
        )
        before = _segments()
        tree = gcc_like(scale=0.05, seed=44)
        serial = sync_collection(tree.old, tree.new, ZdeltaMethod(), workers=1)
        report = sync_collection(
            tree.old, tree.new, ZdeltaMethod(), workers=2, use_arena=True
        )
        assert report.arena_used is False
        _assert_reports_identical(serial, report)
        arena_pool().drain()
        assert _segments() - before == set()

    def test_use_arena_false_never_touches_shared_memory(self):
        before = _segments()
        tree = gcc_like(scale=0.05, seed=45)
        report = sync_collection(
            tree.old, tree.new, ZdeltaMethod(), workers=2, use_arena=False
        )
        assert report.arena_used is False
        assert _segments() == before
