"""Tests for the recrawled web collection workload."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import make_web_collection


@pytest.fixture(scope="module")
def collection():
    return make_web_collection(page_count=40, days=(0, 1, 2, 7), seed=0)


class TestStructure:
    def test_all_snapshots_present(self, collection):
        assert sorted(collection.snapshots) == [0, 1, 2, 7]

    def test_page_names_stable_across_days(self, collection):
        names = set(collection.snapshot(0))
        for day in (1, 2, 7):
            assert set(collection.snapshot(day)) == names

    def test_deterministic(self, collection):
        again = make_web_collection(page_count=40, days=(0, 1, 2, 7), seed=0)
        for day in (0, 1, 2, 7):
            assert collection.snapshot(day) == again.snapshot(day)

    def test_mean_page_size_in_range(self, collection):
        total = collection.snapshot_bytes(0)
        mean = total / collection.page_count
        assert 4000 < mean < 30000

    def test_missing_day_raises(self, collection):
        with pytest.raises(WorkloadError):
            collection.snapshot(3)


class TestUpdateProcess:
    def test_divergence_grows_with_gap(self, collection):
        one = collection.changed_pages(0, 1)
        two = collection.changed_pages(0, 2)
        seven = collection.changed_pages(0, 7)
        assert one <= two <= seven
        assert one < seven

    def test_some_pages_never_change(self, collection):
        base = collection.snapshot(0)
        week = collection.snapshot(7)
        unchanged = sum(1 for n in base if base[n] == week[n])
        assert unchanged > 0

    def test_hot_pages_change_fast(self, collection):
        """Within one day a meaningful fraction of pages changed (the hot
        mixture component), but well below half."""
        changed = collection.changed_pages(0, 1)
        assert 0 < changed < collection.page_count // 2

    def test_change_rates_recorded(self, collection):
        rates = set(collection.change_rates.values())
        assert rates <= {0.85, 0.20, 0.03}
        assert len(rates) >= 2

    def test_changed_pages_changed_slightly(self, collection):
        """The paper: 'others change only slightly' — changed pages keep
        most of their bytes."""
        base = collection.snapshot(0)
        day1 = collection.snapshot(1)
        from repro.delta import zdelta_size

        for name in base:
            if base[name] != day1[name]:
                assert zdelta_size(base[name], day1[name]) < len(day1[name]) / 3
                break


class TestValidation:
    def test_bad_days_rejected(self):
        with pytest.raises(WorkloadError):
            make_web_collection(page_count=5, days=(1, 2))
        with pytest.raises(WorkloadError):
            make_web_collection(page_count=5, days=(0, 2, 1))
        with pytest.raises(WorkloadError):
            make_web_collection(page_count=5, days=())

    def test_bad_page_count_rejected(self):
        with pytest.raises(WorkloadError):
            make_web_collection(page_count=0)
