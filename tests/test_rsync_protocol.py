"""End-to-end tests for the rsync exchange and its accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Direction, SimulatedChannel
from repro.rsync import rsync_sync
from repro.rsync.protocol import decode_tokens, encode_tokens
from repro.rsync.matcher import Literal, Reference
from repro.exceptions import DeltaFormatError
from tests.conftest import make_version_pair


class TestRsyncSync:
    def test_reconstruction_exact(self):
        old, new = make_version_pair(seed=30)
        result = rsync_sync(old, new)
        assert result.reconstructed == new
        assert not result.used_fallback

    def test_signature_cost_scales_with_blocks(self):
        old = b"x" * 70_000
        new = old
        result = rsync_sync(old, new, block_size=700)
        # 100 blocks * 6 bytes + small header.
        assert 600 <= result.stats.bytes_in_phase("signatures") <= 620

    def test_both_directions_accounted(self):
        old, new = make_version_pair(seed=31)
        result = rsync_sync(old, new)
        assert result.stats.client_to_server_bytes > 0
        assert result.stats.server_to_client_bytes > 0
        assert (
            result.stats.client_to_server_bytes
            + result.stats.server_to_client_bytes
            == result.total_bytes
        )

    def test_identical_files_cheap_delta(self):
        data = b"same content here " * 1000
        result = rsync_sync(data, data)
        # Signatures still cost ~6 B/block, but the delta is tiny.
        assert result.stats.bytes_in_phase("delta") < 200

    def test_empty_files(self):
        result = rsync_sync(b"", b"")
        assert result.reconstructed == b""
        result = rsync_sync(b"old", b"")
        assert result.reconstructed == b""
        result = rsync_sync(b"", b"new")
        assert result.reconstructed == b"new"

    def test_block_size_tradeoff_visible(self):
        """Larger blocks cost fewer signature bytes but coarser deltas."""
        old, new = make_version_pair(seed=32, nbytes=60000, edits=20)
        small = rsync_sync(old, new, block_size=128)
        large = rsync_sync(old, new, block_size=4096)
        assert small.stats.bytes_in_phase("signatures") > large.stats.bytes_in_phase(
            "signatures"
        )
        assert small.stats.bytes_in_phase("delta") < large.stats.bytes_in_phase(
            "delta"
        )

    def test_custom_channel_reused(self):
        channel = SimulatedChannel()
        old, new = make_version_pair(seed=33, nbytes=3000)
        result = rsync_sync(old, new, channel=channel)
        assert result.stats is channel.stats

    @given(st.binary(max_size=3000), st.binary(max_size=3000))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_pairs_reconstruct(self, old, new):
        result = rsync_sync(old, new, block_size=128)
        assert result.reconstructed == new


class TestTokenCodec:
    def test_roundtrip(self):
        tokens = [Literal(b"abc"), Reference(0), Reference(5), Literal(b"x" * 100)]
        assert decode_tokens(encode_tokens(tokens)) == tokens

    def test_empty(self):
        assert decode_tokens(encode_tokens([])) == []

    def test_corrupt_raises(self):
        with pytest.raises(DeltaFormatError):
            decode_tokens(b"not zlib data")
