"""Property suite for the min-hash sketch substrate (DESIGN §17).

The sibling-reference machinery is only sound if the sketch behaves
like a true min-wise signature: order- and multiplicity-independent,
lattice-compatible under set union, and in exact agreement with the
brute-force scalar definition the vectorised kernel replaces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reuse import (
    DEFAULT_NUM_PERM,
    content_shingles,
    estimate_resemblance,
    minhash_signature,
    sketch,
)
from repro.reuse.sketch import EMPTY_SLOT, _hash_params

shingle_sets = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    min_size=0,
    max_size=64,
)


def _as_array(values: list[int]) -> np.ndarray:
    return np.array(values, dtype=np.uint64)


class TestSignatureProperties:
    @given(shingle_sets, st.randoms(use_true_random=False))
    def test_permutation_independent(self, values, rng):
        reference = minhash_signature(_as_array(values))
        shuffled = list(values)
        rng.shuffle(shuffled)
        np.testing.assert_array_equal(
            minhash_signature(_as_array(shuffled)), reference
        )

    @given(shingle_sets)
    def test_multiplicity_independent(self, values):
        reference = minhash_signature(_as_array(values))
        np.testing.assert_array_equal(
            minhash_signature(_as_array(values + values)), reference
        )

    @given(shingle_sets, shingle_sets)
    def test_union_is_slotwise_minimum(self, left, right):
        """sig(A ∪ B)[i] == min(sigA[i], sigB[i]) — the lattice property
        that makes min-hash estimates unbiased."""
        union = minhash_signature(_as_array(left + right))
        expected = np.minimum(
            minhash_signature(_as_array(left)),
            minhash_signature(_as_array(right)),
        )
        np.testing.assert_array_equal(union, expected)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 64) - 1),
            min_size=1,
            max_size=16,
        )
    )
    def test_matches_scalar_brute_force(self, values):
        """The one-block vectorised kernel equals min(a*x + b) mod 2**64
        computed one shingle and one slot at a time."""
        signature = minhash_signature(_as_array(values))
        a, b = _hash_params(DEFAULT_NUM_PERM, 0x51E7C4)
        for slot in range(DEFAULT_NUM_PERM):
            expected = min(
                (int(a[slot]) * value + int(b[slot])) % (1 << 64)
                for value in set(values)
            )
            assert int(signature[slot]) == expected

    def test_empty_set_signs_as_sentinel(self):
        signature = minhash_signature(np.empty(0, dtype=np.uint64))
        assert (signature == EMPTY_SLOT).all()


class TestResemblanceProperties:
    @given(shingle_sets, shingle_sets)
    def test_symmetric_and_bounded(self, left, right):
        first = minhash_signature(_as_array(left))
        second = minhash_signature(_as_array(right))
        estimate = estimate_resemblance(first, second)
        assert estimate == estimate_resemblance(second, first)
        assert 0.0 <= estimate <= 1.0

    @given(shingle_sets)
    def test_identical_sets_estimate_one(self, values):
        signature = minhash_signature(_as_array(values))
        assert estimate_resemblance(signature, signature) == 1.0

    @given(shingle_sets, shingle_sets)
    def test_containment_bounds_union(self, left, right):
        """A ⊆ A∪B: every slot of sig(A∪B) that came from A agrees with
        sig(A), so the estimate is at least the fraction of slots A won."""
        left_sig = minhash_signature(_as_array(left))
        union_sig = minhash_signature(_as_array(left + right))
        agreeing = estimate_resemblance(left_sig, union_sig)
        slots_a_won = float(
            np.count_nonzero(union_sig == left_sig)
        ) / float(union_sig.size)
        assert agreeing >= slots_a_won  # equality by construction

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_resemblance(
                np.zeros(4, dtype=np.uint64), np.zeros(8, dtype=np.uint64)
            )


class TestContentShingles:
    @given(st.binary(min_size=0, max_size=4096))
    def test_deterministic_and_sorted(self, data):
        first = content_shingles(data)
        second = content_shingles(bytes(data))
        np.testing.assert_array_equal(first, second)
        assert (np.diff(first.astype(object)) > 0).all() if first.size > 1 \
            else True

    @given(st.binary(min_size=1, max_size=2048), st.binary(min_size=8,
                                                           max_size=64))
    def test_local_edit_preserves_most_shingles(self, prefix, suffix):
        """Content-defined boundaries: appending bytes never invalidates
        the shingles wholly inside the untouched prefix region."""
        base = prefix * 8  # enough content for several chunks
        appended = base + suffix
        base_set = set(content_shingles(base).tolist())
        appended_set = set(content_shingles(appended).tolist())
        if len(base_set) > 2:
            # All but the final (boundary-straddling) chunk survive.
            assert len(base_set & appended_set) >= len(base_set) - 2

    def test_sketch_roundtrip_on_similar_files(self):
        rng = np.random.default_rng(5)
        base = rng.integers(0, 256, size=32_768, dtype=np.uint8).tobytes()
        edited = bytearray(base)
        edited[1000:1040] = bytes(40)
        similar = estimate_resemblance(
            sketch(base).signature, sketch(bytes(edited)).signature
        )
        unrelated = estimate_resemblance(
            sketch(base).signature,
            sketch(
                rng.integers(0, 256, size=32_768, dtype=np.uint8).tobytes()
            ).signature,
        )
        assert similar > 0.8
        assert unrelated < 0.2
