"""Tests for the limited-roundtrip mode and asymmetric link modelling."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.exceptions import ConfigError
from repro.net import Direction, LinkModel, SimulatedChannel
from tests.conftest import make_version_pair


class TestMaxRounds:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(max_rounds=0)
        assert ProtocolConfig(max_rounds=1).max_rounds == 1

    def test_round_cap_respected(self):
        old, new = make_version_pair(seed=500, nbytes=40000, edits=15)
        result = synchronize(old, new, ProtocolConfig(max_rounds=2))
        assert result.rounds <= 2
        assert result.reconstructed == new

    def test_single_round_still_correct(self):
        old, new = make_version_pair(seed=501, nbytes=20000)
        result = synchronize(old, new, ProtocolConfig(max_rounds=1))
        assert result.reconstructed == new

    def test_fewer_rounds_fewer_roundtrips_more_bytes(self):
        """The paper's §7 trade-off: capping rounds saves latency but
        costs bandwidth (coarser map, bigger delta)."""
        old, new = make_version_pair(seed=502, nbytes=60000, edits=20)
        capped = synchronize(old, new, ProtocolConfig(max_rounds=2))
        full = synchronize(old, new, ProtocolConfig())
        assert capped.stats.roundtrips < full.stats.roundtrips
        assert capped.total_bytes >= full.total_bytes

    def test_uncapped_equals_none(self):
        old, new = make_version_pair(seed=503, nbytes=10000)
        capped = synchronize(old, new, ProtocolConfig(max_rounds=50))
        free = synchronize(old, new, ProtocolConfig())
        assert capped.total_bytes == free.total_bytes


class TestAsymmetricLinks:
    def test_symmetric_default(self):
        link = LinkModel(bandwidth_bps=8000.0)
        assert link.effective_uplink_bps == 8000.0

    def test_directional_time(self):
        link = LinkModel(bandwidth_bps=8000.0, uplink_bps=800.0, latency_s=0.0)
        # 100 B up at 800 bps = 1 s; 1000 B down at 8000 bps = 1 s.
        assert link.transfer_time_directional(100, 1000, 0) == pytest.approx(2.0)

    def test_bad_uplink_rejected(self):
        # Validation moved to construction time: a zero uplink never
        # produces a usable LinkModel in the first place.
        with pytest.raises(ValueError):
            LinkModel(uplink_bps=0.0)

    def test_channel_estimate_uses_uplink(self):
        link = LinkModel(bandwidth_bps=1e9, uplink_bps=800.0, latency_s=0.0)
        channel = SimulatedChannel(link)
        channel.send(Direction.CLIENT_TO_SERVER, b"x" * 100, "map")
        assert channel.estimated_transfer_time() == pytest.approx(1.0)

    def test_slow_uplink_penalises_rsync_more_than_ours(self):
        """rsync uploads a signature per block; our protocol's uplink
        traffic is bitmaps and tiny verification hashes — on an ADSL-like
        link the gap widens (the paper's asymmetric-case motivation)."""
        from repro.rsync import rsync_sync

        old, new = make_version_pair(seed=504, nbytes=60000, edits=10)
        link = LinkModel(bandwidth_bps=8_000_000, uplink_bps=256_000,
                         latency_s=0.0)
        ours_channel = SimulatedChannel(link)
        synchronize(old, new, ProtocolConfig(), ours_channel)
        rsync_channel = SimulatedChannel(link)
        rsync_sync(old, new, channel=rsync_channel)
        ours_up = ours_channel.stats.client_to_server_bytes
        rsync_up = rsync_channel.stats.client_to_server_bytes
        assert ours_up < rsync_up
