"""Tests for the fleet workload generator (multi-client broadcast)."""

from __future__ import annotations

import hashlib

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import FleetWorkload, make_fleet


def _digest(workload: FleetWorkload) -> str:
    hasher = hashlib.md5()
    for version in workload.versions:
        for name in sorted(version):
            hasher.update(name.encode())
            hasher.update(version[name])
    for client in workload.clients:
        hasher.update(client.name.encode())
        hasher.update(str(client.version).encode())
        for name in sorted(client.files):
            hasher.update(name.encode())
            hasher.update(client.files[name])
    return hasher.hexdigest()


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        first = make_fleet(seed=3)
        second = make_fleet(seed=3)
        assert first.versions == second.versions
        assert [c.files for c in first.clients] == [
            c.files for c in second.clients
        ]

    def test_pinned_digests(self):
        """Cross-process/version stability: the exact bytes are part of
        the reuse benchmark's contract (BENCH_reuse.json wire counts)."""
        assert _digest(make_fleet(seed=0)) == (
            "51ae264e2a8b555c20d375148bdfcca7"
        )
        assert _digest(make_fleet(seed=1)) == (
            "7e7498e5ad0a8ff83d73a3601b4569a2"
        )

    def test_distinct_seeds_differ(self):
        assert _digest(make_fleet(seed=4)) != _digest(make_fleet(seed=5))


class TestStructure:
    def test_version_chain_shape(self):
        workload = make_fleet(clients=5, files=8, versions=3, seed=2)
        assert len(workload.versions) == 3
        assert workload.server is workload.versions[-1]
        # One added file per version step.
        assert len(workload.versions[1]) == 9
        assert len(workload.versions[2]) == 10
        assert "src/added001.c" in workload.versions[1]
        assert "src/added002.c" in workload.server

    def test_version_steps_change_files(self):
        workload = make_fleet(seed=6)
        previous, current = workload.versions[0], workload.versions[1]
        changed = [
            name for name in previous if previous[name] != current[name]
        ]
        assert changed  # change_fraction > 0 must touch something

    def test_clients_are_stale_with_missing_files(self):
        workload = make_fleet(clients=12, seed=7)
        assert workload.client_count == 12
        assert all(
            client.version < len(workload.versions) - 1
            for client in workload.clients
        )
        assert any(
            len(client.files) < len(workload.versions[client.version])
            for client in workload.clients
        )

    def test_client_files_match_their_version(self):
        workload = make_fleet(seed=8)
        for client in workload.clients:
            snapshot = workload.versions[client.version]
            for name, data in client.files.items():
                assert snapshot[name] == data

    def test_similar_siblings_exist(self):
        """Every third base file is a near-copy of the last template, so
        the min-hash index has genuine siblings to find."""
        from repro.reuse import estimate_resemblance, sketch

        workload = make_fleet(seed=9)
        base = workload.versions[0]
        template = base["src/file001.c"]
        near_copy = base["src/file002.c"]
        resemblance = estimate_resemblance(
            sketch(template).signature, sketch(near_copy).signature
        )
        assert resemblance > 0.5


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clients": 0},
            {"files": 1},
            {"versions": 1},
            {"change_fraction": 1.5},
            {"missing_fraction": 1.0},
        ],
    )
    def test_bad_arguments_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            make_fleet(**kwargs)
