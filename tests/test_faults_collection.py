"""Collection sync under injected faults: per-file isolation end to end.

The degradation-ladder scenarios the issue calls out — corruption in the
map phase, drops in the delta phase, a disconnect mid-split — must all
end in byte-identical reconstruction with monotone retry counters, and
the happy path must stay byte-identical to a run without the resilience
layer.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.methods import OursMethod, ZdeltaMethod
from repro.collection import sync_collection
from repro.exceptions import IntegrityError, ReproError, SyncFailedError
from repro.net import FaultPlan
from repro.parallel import FileTask, SyncExecutor
from repro.resilience import RetryPolicy
from repro.syncmethod import MethodOutcome, SyncMethod
from repro.workloads import gcc_like


@pytest.fixture(scope="module")
def tree():
    return gcc_like(scale=0.05, seed=21)


class TestHappyPathUnchanged:
    def test_resilient_run_matches_plain_run(self, tree):
        """With no faults, wrapping in the supervisor changes nothing:
        same summary, same per-file byte accounting, zero counters."""
        plain = sync_collection(tree.old, tree.new, OursMethod())
        resilient = sync_collection(
            tree.old, tree.new, OursMethod(),
            retry_policy=RetryPolicy(), on_error="fallback",
        )
        assert resilient.summary() == plain.summary()
        assert {
            name: outcome.total_bytes
            for name, outcome in resilient.per_file.items()
        } == {
            name: outcome.total_bytes
            for name, outcome in plain.per_file.items()
        }
        assert resilient.total_retries == 0
        assert resilient.files_fallback == 0
        assert resilient.files_failed == 0
        assert resilient.retransmitted_bytes == 0


SCENARIOS = {
    "corruption in map phase": FaultPlan(
        seed=31, corrupt_rate=0.2, phases=frozenset({"map"})
    ),
    "drops in delta phase": FaultPlan(
        seed=32, drop_rate=0.3, phases=frozenset({"delta"})
    ),
    "disconnect mid split": FaultPlan(seed=33, disconnect_after_sends=40),
    "uniform mix at 0.1": FaultPlan.uniform(0.1, seed=34),
}


class TestDegradationLadder:
    @pytest.mark.parametrize("plan", SCENARIOS.values(), ids=SCENARIOS)
    def test_byte_identical_reconstruction_under_faults(self, tree, plan):
        report = sync_collection(
            tree.old, tree.new, OursMethod(),
            fault_plan=plan, on_error="fallback",
        )
        assert report.reconstructed == tree.new
        assert report.files_failed == 0
        # Counters are consistent: every fallback implies retries burnt.
        assert report.total_retries == sum(report.retries.values())
        for name in report.fallbacks:
            assert report.retries.get(name, 0) >= 1

    def test_retry_counters_monotone_in_fault_rate(self, tree):
        """More injected faults can only mean more recovery work: with
        the same seed, retries and retransmitted bytes never shrink as
        the fault rate rises."""
        totals = []
        for rate in (0.0, 0.05, 0.15):
            report = sync_collection(
                tree.old, tree.new, OursMethod(),
                fault_plan=FaultPlan.uniform(rate, seed=35),
                on_error="fallback",
            )
            assert report.reconstructed == tree.new
            totals.append(
                (report.total_retries, report.retransmitted_bytes)
            )
        assert totals[0] == (0, 0)
        retries = [t[0] for t in totals]
        assert retries == sorted(retries)
        assert retries[-1] > 0
        # Retransmission cost is positive whenever retries were burnt
        # (but not monotone in the rate: at higher rates attempts die
        # earlier, wasting fewer bytes per failure).
        for count, wasted in totals[1:]:
            assert (wasted > 0) == (count > 0)

    def test_never_raises_with_fallback_across_seeds(self, tree):
        for seed in range(5):
            report = sync_collection(
                tree.old, tree.new, OursMethod(),
                fault_plan=FaultPlan.uniform(0.1, seed=seed),
                on_error="fallback",
            )
            assert report.reconstructed == tree.new


class _DoomedMethod(SyncMethod):
    """Fails permanently on one file, succeeds elsewhere."""

    name = "doomed"

    def __init__(self, poison: str) -> None:
        self.poison = poison

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        # Keyed on content because methods only see bytes, not names.
        if new.startswith(self.poison.encode()):
            raise IntegrityError("this file can never be synchronised")
        return MethodOutcome(total_bytes=len(new), server_to_client=len(new))


class TestPerFileErrorIsolation:
    files_old = {"good.txt": b"old-good", "bad.txt": b"POISON old"}
    files_new = {"good.txt": b"new-good", "bad.txt": b"POISON new"}

    def test_on_error_raise_propagates(self):
        with pytest.raises(ReproError):
            sync_collection(
                self.files_old, self.files_new, _DoomedMethod("POISON")
            )

    def test_on_error_skip_keeps_client_copy(self):
        report = sync_collection(
            self.files_old, self.files_new, _DoomedMethod("POISON"),
            on_error="skip",
        )
        assert report.files_failed == 1
        assert "IntegrityError" in report.failed["bad.txt"]
        assert report.reconstructed["bad.txt"] == b"POISON old"
        assert report.reconstructed["good.txt"] == b"new-good"

    def test_on_error_fallback_rescues_with_full_transfer(self):
        report = sync_collection(
            self.files_old, self.files_new, _DoomedMethod("POISON"),
            on_error="fallback",
        )
        assert report.files_failed == 0
        assert report.fallbacks["bad.txt"] == "rescue-full"
        assert report.reconstructed == self.files_new
        assert report.per_file["bad.txt"].breakdown.get("s2c/rescue", 0) > 0

    def test_supervisor_failure_is_isolated_too(self):
        """Even a SyncFailedError (whole ladder dead) only costs that
        file when on_error='fallback'."""

        class AlwaysFailing(SyncMethod):
            name = "always-failing"

            def sync_file(self, old, new):
                raise SyncFailedError("ladder exhausted", attempts=9)

        report = sync_collection(
            self.files_old, self.files_new, AlwaysFailing(),
            on_error="fallback",
        )
        assert report.reconstructed == self.files_new
        assert set(report.fallbacks) == {"good.txt", "bad.txt"}

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            sync_collection(
                self.files_old, self.files_new, ZdeltaMethod(),
                on_error="explode",
            )


class _CrashOutsideParent(SyncMethod):
    """Dies hard in any process other than the one that built it —
    simulating a worker crash that a serial retry in the parent cures."""

    name = "crash-outside-parent"

    def __init__(self) -> None:
        self.parent_pid = os.getpid()

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        if os.getpid() != self.parent_pid:
            os._exit(13)  # hard crash: no exception, no cleanup
        return MethodOutcome(total_bytes=len(new), server_to_client=len(new))


class TestExecutorCrashIsolation:
    def test_crashed_workers_retried_serially(self):
        tasks = [
            FileTask(f"f{index}", b"old", f"new-{index}".encode())
            for index in range(8)
        ]
        executor = SyncExecutor(workers=2, chunk_size=2)
        batch = executor.run(_CrashOutsideParent(), tasks)
        assert len(batch.files) == len(tasks)
        assert [result.name for result in batch.files] == [
            task.name for task in tasks
        ]
        assert all(result.error is None for result in batch.files)
        assert batch.chunk_retries >= 1

    def test_capture_errors_isolates_poisoned_file(self):
        tasks = [
            FileTask("ok", b"o", b"fine"),
            FileTask("bad", b"o", b"POISON"),
            FileTask("ok2", b"o", b"fine2"),
        ]
        batch = SyncExecutor(workers=1).run(
            _DoomedMethod("POISON"), tasks, capture_errors=True
        )
        errors = {result.name: result.error for result in batch.files}
        assert errors["ok"] is None and errors["ok2"] is None
        assert "IntegrityError" in errors["bad"]
        assert not batch.files[1].outcome.correct

    def test_capture_errors_false_still_raises(self):
        tasks = [FileTask("bad", b"o", b"POISON")]
        with pytest.raises(IntegrityError):
            SyncExecutor(workers=1).run(_DoomedMethod("POISON"), tasks)


class TestCliFaultFlags:
    def test_sync_with_fault_rate_smokes(self, tmp_path, capsys):
        from repro.cli import main

        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        for index in range(4):
            (old_dir / f"f{index}.txt").write_bytes(
                (f"content {index} " * 200).encode()
            )
            (new_dir / f"f{index}.txt").write_bytes(
                (f"content {index} " * 199 + "changed ").encode()
            )
        code = main([
            "sync", str(old_dir), str(new_dir),
            "--fault-rate", "0.05", "--fault-seed", "7", "--json",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["failed_files"] == 0
        assert payload["retries"] >= 0
        assert "retransmitted_bytes" in payload
