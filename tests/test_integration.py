"""Cross-module integration tests on realistic workloads."""

from __future__ import annotations

import pytest

from repro.bench import (
    OursMethod,
    RsyncMethod,
    RsyncOptimalMethod,
    ZdeltaMethod,
    run_method_on_collection,
)
from repro.collection import sync_collection
from repro.core import ProtocolConfig, synchronize
from repro.workloads import gcc_like, make_web_collection


@pytest.fixture(scope="module")
def tree():
    return gcc_like(scale=0.1, seed=8)


@pytest.fixture(scope="module")
def web():
    return make_web_collection(page_count=25, days=(0, 1, 7), seed=8)


class TestSourceTreeScenario:
    def test_every_changed_file_reconstructs(self, tree):
        for name in tree.common_names():
            if tree.old[name] == tree.new[name]:
                continue
            result = synchronize(tree.old[name], tree.new[name])
            assert result.reconstructed == tree.new[name], name

    def test_headline_ordering_holds_on_collection(self, tree):
        totals = {}
        for method in (OursMethod(), RsyncMethod(), RsyncOptimalMethod(),
                       ZdeltaMethod()):
            run = run_method_on_collection(method, tree.old, tree.new)
            totals[method.name] = run.total_bytes
        assert totals["zdelta"] <= totals["ours"]
        assert totals["ours"] < totals["rsync-opt"] <= totals["rsync"]

    def test_collection_report_covers_every_server_file(self, tree):
        report = sync_collection(tree.old, tree.new, OursMethod())
        assert set(report.reconstructed) == set(tree.new)


class TestWebScenario:
    def test_daily_update_roundtrip(self, web):
        report = sync_collection(
            web.snapshot(0), web.snapshot(1), OursMethod()
        )
        assert report.reconstructed == web.snapshot(1)

    def test_weekly_costs_more_than_daily(self, web):
        daily = run_method_on_collection(
            OursMethod(), web.snapshot(0), web.snapshot(1)
        )
        weekly = run_method_on_collection(
            OursMethod(), web.snapshot(0), web.snapshot(7)
        )
        assert weekly.total_bytes > daily.total_bytes

    def test_factor_two_over_rsync(self, web):
        ours = run_method_on_collection(
            OursMethod(ProtocolConfig(min_block_size=32,
                                      continuation_min_block_size=8)),
            web.snapshot(0),
            web.snapshot(1),
        )
        rsync = run_method_on_collection(
            RsyncMethod(), web.snapshot(0), web.snapshot(1)
        )
        assert rsync.total_bytes > 1.5 * ours.total_bytes


class TestChainedUpdates:
    def test_incremental_chain_equals_direct(self, web):
        """day0 -> day1 -> day7 must land on exactly the day-7 content."""
        state = dict(web.snapshot(0))
        for day in (1, 7):
            report = sync_collection(state, web.snapshot(day), OursMethod())
            state = report.reconstructed
        assert state == web.snapshot(7)

    def test_sync_is_idempotent(self, tree):
        report1 = sync_collection(tree.old, tree.new, OursMethod())
        report2 = sync_collection(report1.reconstructed, tree.new, OursMethod())
        assert report2.files_changed == 0
        assert report2.reconstructed == tree.new
