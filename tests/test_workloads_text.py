"""Tests for the content generators."""

from __future__ import annotations

import random
import zlib

import pytest

from repro.workloads import HtmlGenerator, TextGenerator


class TestTextGenerator:
    def test_deterministic(self):
        a = TextGenerator(1).generate(5000, random.Random(2))
        b = TextGenerator(1).generate(5000, random.Random(2))
        assert a == b

    def test_different_seed_different_output(self):
        a = TextGenerator(1).generate(3000, random.Random(2))
        b = TextGenerator(9).generate(3000, random.Random(2))
        assert a != b

    def test_size_roughly_requested(self):
        data = TextGenerator(0).generate(10000, random.Random(0))
        assert 10000 <= len(data) <= 11000

    def test_realistically_compressible(self):
        """Code-like text compresses ~3-6x — pure noise or pure repetition
        would both distort benchmark comparisons."""
        data = TextGenerator(0).generate(40000, random.Random(0))
        ratio = len(data) / len(zlib.compress(data, 9))
        assert 2.5 < ratio < 12

    def test_snippet_exact_length(self):
        generator = TextGenerator(0)
        rng = random.Random(3)
        for size in (1, 10, 100):
            assert len(generator.snippet(rng, size)) == size

    def test_tiny_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            TextGenerator(0, vocabulary_size=5)

    def test_is_mostly_ascii_text(self):
        data = TextGenerator(0).generate(3000, random.Random(1))
        assert all(9 <= byte < 127 for byte in data)


class TestHtmlGenerator:
    def test_deterministic(self):
        a = HtmlGenerator(4).generate(4000, random.Random(5), site=1)
        b = HtmlGenerator(4).generate(4000, random.Random(5), site=1)
        assert a == b

    def test_pages_of_same_site_share_boilerplate(self):
        generator = HtmlGenerator(4)
        page1 = generator.generate(4000, random.Random(1), site=2)
        page2 = generator.generate(4000, random.Random(2), site=2)
        # Shared header: identical prefix of meaningful length.
        prefix = 0
        for x, y in zip(page1, page2):
            if x != y:
                break
            prefix += 1
        assert prefix > 50

    def test_bad_site_count_rejected(self):
        with pytest.raises(ValueError):
            HtmlGenerator(0, sites=0)

    def test_looks_like_html(self):
        page = HtmlGenerator(0).generate(2000, random.Random(0))
        assert page.startswith(b"<html>")
        assert b"</body></html>" in page

    def test_snippet_exact_length(self):
        generator = HtmlGenerator(0)
        assert len(generator.snippet(random.Random(1), 77)) == 77
