"""Public-API surface and documentation consistency checks."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro

REPO = Path(__file__).parent.parent


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_subpackage_all_names_resolve(self):
        import repro.bench
        import repro.collection
        import repro.core
        import repro.delta
        import repro.grouptesting
        import repro.hashing
        import repro.io
        import repro.multiround
        import repro.net
        import repro.rsync
        import repro.theory
        import repro.workloads

        for module in (
            repro.bench,
            repro.collection,
            repro.core,
            repro.delta,
            repro.grouptesting,
            repro.hashing,
            repro.io,
            repro.multiround,
            repro.net,
            repro.rsync,
            repro.theory,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_every_public_item_documented(self):
        """Every name exported at the top level carries a docstring."""
        for name in repro.__all__:
            if name == "__version__":
                continue
            item = getattr(repro, name)
            assert getattr(item, "__doc__", None), name


class TestDocumentationConsistency:
    def test_core_documents_exist(self):
        for filename in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                         "LICENSE", "docs/API.md",
                         "docs/PROTOCOL.md", "docs/TUNING.md"):
            assert (REPO / filename).is_file(), filename

    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.finditer(r"`([a-z_]+\.py)`", readme):
            name = match.group(1)
            if name in ("setup.py",):
                continue
            assert (REPO / "examples" / name).is_file(), name

    def test_design_bench_targets_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for match in re.finditer(r"benchmarks/(test_[a-z0-9_]+\.py)", design):
            assert (REPO / "benchmarks" / match.group(1)).is_file(), (
                match.group(1)
            )

    def test_experiments_result_names_exist_after_bench_run(self):
        """EXPERIMENTS.md references results files produced by benches;
        the bench modules that write them must exist (the files
        themselves appear after a bench run)."""
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        bench_sources = "\n".join(
            p.read_text() for p in (REPO / "benchmarks").glob("test_*.py")
        )
        for match in re.finditer(r"`((?:fig|table|ablation|technique|robustness)[a-z0-9_]+)`", experiments):
            name = match.group(1)
            assert f'"{name}"' in bench_sources, name

    def test_design_modules_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for match in re.finditer(r"`repro\.([a-z_.]+)`", design):
            dotted = match.group(1).rstrip(".")
            path_parts = dotted.split(".")
            as_module = REPO / "src" / "repro" / Path(*path_parts)
            ok = (
                as_module.with_suffix(".py").is_file()
                or (as_module / "__init__.py").is_file()
            )
            assert ok, dotted
