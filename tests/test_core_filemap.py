"""Tests for the client's map of the server file."""

from __future__ import annotations

import pytest

from repro.core import FileMap
from repro.exceptions import ProtocolError


class TestAdd:
    def test_entries_sorted_by_target_offset(self):
        file_map = FileMap(100)
        file_map.add(50, 10, 7)
        file_map.add(0, 10, 90)
        assert [entry.start for entry in file_map.entries()] == [0, 50]

    def test_rejects_out_of_range(self):
        file_map = FileMap(100)
        with pytest.raises(ProtocolError):
            file_map.add(95, 10, 0)
        with pytest.raises(ProtocolError):
            file_map.add(-1, 5, 0)

    def test_rejects_zero_length(self):
        with pytest.raises(ProtocolError):
            FileMap(10).add(0, 0, 0)

    def test_rejects_duplicate_target_offset(self):
        file_map = FileMap(100)
        file_map.add(10, 5, 0)
        with pytest.raises(ProtocolError):
            file_map.add(10, 3, 1)

    def test_negative_target_length_rejected(self):
        with pytest.raises(ValueError):
            FileMap(-1)


class TestCoverage:
    def test_known_fraction(self):
        file_map = FileMap(100)
        assert file_map.known_fraction == 0.0
        file_map.add(0, 25, 0)
        file_map.add(50, 25, 10)
        assert file_map.known_fraction == pytest.approx(0.5)
        assert file_map.known_bytes == 50

    def test_empty_target_fully_known(self):
        assert FileMap(0).known_fraction == 1.0

    def test_unknown_intervals(self):
        file_map = FileMap(100)
        file_map.add(10, 20, 0)
        file_map.add(60, 10, 5)
        assert file_map.unknown_intervals() == [(0, 10), (30, 60), (70, 100)]

    def test_unknown_intervals_fully_covered(self):
        file_map = FileMap(10)
        file_map.add(0, 10, 0)
        assert file_map.unknown_intervals() == []

    def test_validate_disjoint_passes_for_tree_partition(self):
        file_map = FileMap(64)
        file_map.add(0, 32, 0)
        file_map.add(32, 16, 100)
        file_map.validate_disjoint()


class TestReferenceConstruction:
    def test_both_views_agree_for_genuine_matches(self):
        source = b"the quick brown fox jumps over the lazy dog"
        target = b"XXX" + source[4:15] + b"YYY" + source[20:30]
        file_map = FileMap(len(target))
        file_map.add(3, 11, 4)  # "quick brown"
        file_map.add(17, 10, 20)  # "jumps over"
        assert file_map.reference_from_target(target) == file_map.reference_from_source(
            source
        )

    def test_source_out_of_range_raises(self):
        file_map = FileMap(50)
        file_map.add(0, 20, 40)
        with pytest.raises(ProtocolError):
            file_map.reference_from_source(b"short")

    def test_reference_order_is_target_order(self):
        target = b"ABCDEF"
        file_map = FileMap(6)
        file_map.add(4, 2, 0)
        file_map.add(0, 2, 4)
        assert file_map.reference_from_target(target) == b"ABEF"

    def test_overlapping_source_regions_allowed(self):
        source = b"abcabc"
        file_map = FileMap(8)
        file_map.add(0, 3, 0)
        file_map.add(3, 3, 1)
        assert file_map.reference_from_source(source) == b"abc" + b"bca"
