"""Tests for the COPY/ADD instruction model."""

from __future__ import annotations

import pytest

from repro.delta import Add, Copy, apply_instructions
from repro.delta.instructions import instructions_cover
from repro.exceptions import DeltaFormatError


class TestInstructionValidation:
    def test_copy_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            Copy(-1, 5)

    def test_copy_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Copy(0, 0)

    def test_add_rejects_empty(self):
        with pytest.raises(ValueError):
            Add(b"")


class TestApplyInstructions:
    def test_empty_list_is_empty_output(self):
        assert apply_instructions(b"reference", []) == b""

    def test_interleaved_copy_add(self):
        reference = b"0123456789"
        out = apply_instructions(
            reference, [Copy(0, 3), Add(b"XY"), Copy(7, 3)]
        )
        assert out == b"012XY789"

    def test_copy_past_reference_end_raises(self):
        with pytest.raises(DeltaFormatError):
            apply_instructions(b"abc", [Copy(1, 5)])

    def test_overlapping_copies_allowed(self):
        reference = b"abcdef"
        out = apply_instructions(reference, [Copy(0, 4), Copy(2, 4)])
        assert out == b"abcdcdef"

    def test_unknown_instruction_raises(self):
        with pytest.raises(DeltaFormatError):
            apply_instructions(b"abc", ["bogus"])  # type: ignore[list-item]


class TestInstructionsCover:
    def test_counts_both_kinds(self):
        assert instructions_cover([Copy(0, 7), Add(b"abc")]) == 10

    def test_empty(self):
        assert instructions_cover([]) == 0
