"""Atomic replica writes and the post-crash recovery sweep."""

from __future__ import annotations

import pytest

from repro.collection import (
    Manifest,
    TMP_SUFFIX,
    CollectionStore,
    atomic_write_bytes,
    save_manifest,
)
from repro.resilience import RecoveryReport, recover_store
from repro.resilience.recovery import QUARANTINE_DIR


class TestAtomicWrite:
    def test_writes_bytes_and_leaves_no_temporary(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "a/b/file.bin", b"payload")
        assert path.read_bytes() == b"payload"
        assert list(tmp_path.rglob(f"*{TMP_SUFFIX}")) == []

    def test_overwrites_existing_file(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_temporary_is_a_sibling(self, tmp_path):
        """The temp lives next to its target (same filesystem) so the
        final rename is the atomic syscall it needs to be."""
        target = tmp_path / "deep/file.bin"
        temp = target.with_name(target.name + TMP_SUFFIX)
        atomic_write_bytes(target, b"x")
        assert temp.parent == target.parent


class TestCollectionStore:
    def test_roundtrip(self, tmp_path):
        store = CollectionStore(tmp_path)
        store.write_collection({"a.txt": b"A", "sub/dir/b.txt": b"B"})
        assert store.read_file("a.txt") == b"A"
        assert store.read_file("sub/dir/b.txt") == b"B"

    @pytest.mark.parametrize("name", ["/etc/passwd", "../escape", "a/../../b"])
    def test_escaping_names_rejected(self, tmp_path, name):
        store = CollectionStore(tmp_path)
        with pytest.raises(ValueError):
            store.path_for(name)

    def test_manifest_save_is_atomic(self, tmp_path):
        manifest = Manifest.of_collection({"a": b"aaa"})
        save_manifest(manifest, tmp_path / "m.txt")
        assert list(tmp_path.glob(f"*{TMP_SUFFIX}")) == []


class TestRecoverStore:
    def test_clean_directory_reports_clean(self, tmp_path):
        (tmp_path / "file.bin").write_bytes(b"x")
        report = recover_store(tmp_path)
        assert isinstance(report, RecoveryReport)
        assert report.clean

    def test_quarantines_orphaned_temporaries(self, tmp_path):
        orphan = tmp_path / f"sub/file.bin{TMP_SUFFIX}"
        orphan.parent.mkdir()
        orphan.write_bytes(b"half-written")
        (tmp_path / "sub/file.bin").write_bytes(b"previous intact version")

        report = recover_store(tmp_path)
        assert not report.clean
        assert len(report.quarantined) == 1
        moved = report.quarantined[0]
        assert moved.parent == tmp_path / QUARANTINE_DIR
        assert moved.read_bytes() == b"half-written"
        assert not orphan.exists()
        # The visible file was never touched.
        assert (tmp_path / "sub/file.bin").read_bytes() == (
            b"previous intact version"
        )
        # A second sweep finds nothing.
        assert recover_store(tmp_path).clean

    def test_quarantine_names_do_not_collide(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        (tmp_path / f"a/f{TMP_SUFFIX}").write_bytes(b"1")
        (tmp_path / f"b/f{TMP_SUFFIX}").write_bytes(b"2")
        report = recover_store(tmp_path)
        assert len(report.quarantined) == 2
        assert {p.read_bytes() for p in report.quarantined} == {b"1", b"2"}

    def test_manifest_check_flags_missing_and_stale(self, tmp_path):
        files = {"ok.txt": b"ok", "stale.txt": b"expected", "gone.txt": b"g"}
        manifest = Manifest.of_collection(files)
        (tmp_path / "ok.txt").write_bytes(b"ok")
        (tmp_path / "stale.txt").write_bytes(b"tampered")

        report = recover_store(tmp_path, manifest=manifest)
        assert report.missing == ["gone.txt"]
        assert report.stale == ["stale.txt"]

    def test_lists_pending_journals(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "file-abc.ckpt").write_bytes(b"journal")
        report = recover_store(tmp_path, checkpoint_dir=ckpt)
        assert report.pending_journals == [ckpt / "file-abc.ckpt"]
        assert not report.clean
