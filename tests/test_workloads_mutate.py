"""Tests for the edit model."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import EditProfile, mutate


class TestEditProfile:
    def test_negative_edits_rejected(self):
        with pytest.raises(WorkloadError):
            EditProfile(edit_count=-1)

    def test_bad_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            EditProfile(edit_count=1, min_size=0)
        with pytest.raises(WorkloadError):
            EditProfile(edit_count=1, min_size=10, max_size=5)

    def test_zero_weights_rejected(self):
        with pytest.raises(WorkloadError):
            EditProfile(
                edit_count=1,
                insert_weight=0,
                delete_weight=0,
                replace_weight=0,
            )

    def test_bad_cluster_count_rejected(self):
        with pytest.raises(WorkloadError):
            EditProfile(edit_count=1, cluster_count=0)


class TestMutate:
    def test_zero_edits_identity(self):
        data = b"unchanged"
        assert mutate(data, random.Random(0), EditProfile(edit_count=0)) == data

    def test_deterministic(self):
        data = b"base content " * 500
        profile = EditProfile(edit_count=5)
        a = mutate(data, random.Random(3), profile)
        b = mutate(data, random.Random(3), profile)
        assert a == b

    def test_changes_content(self):
        data = b"base content " * 500
        mutated = mutate(data, random.Random(3), EditProfile(edit_count=5))
        assert mutated != data

    def test_empty_input_grows_by_insertion(self):
        profile = EditProfile(edit_count=3, insert_weight=1,
                              delete_weight=0, replace_weight=0)
        mutated = mutate(b"", random.Random(1), profile)
        assert len(mutated) > 0

    def test_deletes_shrink(self):
        data = b"x" * 10000
        profile = EditProfile(edit_count=10, insert_weight=0,
                              delete_weight=1, replace_weight=0,
                              min_size=50, max_size=100)
        mutated = mutate(data, random.Random(2), profile)
        assert len(mutated) < len(data)

    def test_clustered_edits_leave_long_untouched_runs(self):
        """Clustered edits must leave most of the file byte-identical in
        long runs — the property that makes block matching effective."""
        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(100_000))
        profile = EditProfile(edit_count=10, cluster_count=2,
                              cluster_spread=100.0)
        mutated = mutate(data, random.Random(1), profile)
        # Find the longest common contiguous run via a crude scan of
        # 1 KiB probes from the original.
        hits = sum(
            1 for i in range(0, len(data) - 1024, 4096)
            if data[i : i + 1024] in mutated
        )
        assert hits > 15  # most probes survive verbatim

    def test_dispersed_edits_spread_out(self):
        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(50_000))
        profile = EditProfile(edit_count=40, cluster_count=None,
                              min_size=4, max_size=8)
        mutated = mutate(data, random.Random(1), profile)
        assert mutated != data

    def test_custom_content_function_used(self):
        data = b"0" * 2000
        profile = EditProfile(edit_count=4, insert_weight=1,
                              delete_weight=0, replace_weight=0,
                              min_size=10, max_size=10)
        mutated = mutate(
            data, random.Random(5), profile,
            content=lambda rng, n: b"Z" * n,
        )
        assert b"Z" * 10 in mutated
