"""Tests for in-place reconstruction (the Rasch-Burns extension)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rsync import apply_tokens_in_place, compute_signatures, match_tokens
from repro.rsync.matcher import Literal, Reference, apply_tokens
from tests.conftest import make_version_pair


def in_place_roundtrip(old: bytes, new: bytes, block_size: int):
    signatures = compute_signatures(old, block_size)
    tokens = match_tokens(new, signatures, strong_bytes=2)
    return apply_tokens_in_place(old, tokens, block_size)


class TestBasicReconstruction:
    def test_matches_regular_apply(self):
        old, new = make_version_pair(seed=400)
        result = in_place_roundtrip(old, new, 512)
        assert result.data == new

    def test_empty_token_list(self):
        result = apply_tokens_in_place(b"old", [], 4)
        assert result.data == b""
        assert result.converted_literal_bytes == 0

    def test_pure_literal_stream(self):
        result = apply_tokens_in_place(b"old", [Literal(b"fresh")], 4)
        assert result.data == b"fresh"

    def test_identity_stream_zero_conversions(self):
        """Copying every block to its original position needs no
        reordering and no conversions."""
        rng = random.Random(0)
        old = bytes(rng.randrange(256) for _ in range(1024))
        tokens = [Reference(i) for i in range(4)]
        result = apply_tokens_in_place(old, tokens, 256)
        assert result.data == old
        assert result.converted_literal_bytes == 0

    def test_growing_file(self):
        old = b"A" * 512
        tokens = [Reference(0), Literal(b"B" * 600), Reference(1)]
        result = apply_tokens_in_place(old, tokens, 256)
        assert result.data == apply_tokens(old, tokens, 256)

    def test_shrinking_file(self):
        old = b"AB" * 1024
        tokens = [Reference(3)]
        result = apply_tokens_in_place(old, tokens, 256)
        assert result.data == old[768:1024]


class TestReordering:
    def test_forward_shift_requires_order_or_conversion(self):
        """new = old shifted right: block i of new reads old block i-1,
        whose home position the previous write just clobbered unless the
        copies run back-to-front."""
        rng = random.Random(1)
        old = bytes(rng.randrange(256) for _ in range(1024))
        tokens = [Literal(old[768:1024]), Reference(0), Reference(1), Reference(2)]
        result = apply_tokens_in_place(old, tokens, 256)
        assert result.data == old[768:1024] + old[:768]

    def test_swap_creates_cycle(self):
        """Swapping two blocks is a 2-cycle: one of them must be
        converted to a literal."""
        rng = random.Random(2)
        old = bytes(rng.randrange(256) for _ in range(512))
        tokens = [Reference(1), Reference(0)]
        result = apply_tokens_in_place(old, tokens, 256)
        assert result.data == old[256:512] + old[:256]
        assert result.converted_literal_bytes == 256  # exactly one block

    def test_rotation_cycle_converted_minimally(self):
        rng = random.Random(3)
        old = bytes(rng.randrange(256) for _ in range(1024))
        # 4-cycle: each block moves one slot to the left.
        tokens = [Reference(1), Reference(2), Reference(3), Reference(0)]
        result = apply_tokens_in_place(old, tokens, 256)
        assert result.data == old[256:] + old[:256]
        assert result.converted_literal_bytes == 256  # breaking once suffices

    def test_self_overlapping_copy(self):
        """A copy that reads its own output region (unaligned reuse)."""
        old = bytes(range(256)) * 2
        tokens = [Literal(old[5:10]), Reference(0), Reference(1)]
        result = apply_tokens_in_place(old, tokens, 256)
        assert result.data == apply_tokens(old, tokens, 256)


class TestRealisticStreams:
    @pytest.mark.parametrize("block_size", [128, 512, 2048])
    def test_version_pairs(self, block_size):
        old, new = make_version_pair(seed=401, nbytes=30000, edits=12)
        result = in_place_roundtrip(old, new, block_size)
        assert result.data == new
        # Conversions should be rare for ordinary forward edits.
        assert result.converted_literal_bytes <= len(new) // 4

    @given(st.binary(max_size=2000), st.binary(max_size=2000))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_pairs(self, old, new):
        result = in_place_roundtrip(old, new, 128)
        assert result.data == new

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_seeded_pairs_all_block_sizes(self, seed):
        old, new = make_version_pair(seed=seed, nbytes=4000, edits=4)
        for block_size in (64, 256):
            assert in_place_roundtrip(old, new, block_size).data == new
