"""Algebraic properties of the decomposable Adler hash — the paper's
technique (d)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import DecomposableAdler, HashPair
from repro.hashing.decomposable import component_widths


@pytest.fixture(scope="module")
def hasher() -> DecomposableAdler:
    return DecomposableAdler(seed=99)


class TestConstruction:
    def test_same_seed_same_table(self):
        assert DecomposableAdler(5).table == DecomposableAdler(5).table

    def test_different_seed_different_table(self):
        assert DecomposableAdler(5).table != DecomposableAdler(6).table

    def test_identity_table(self):
        hasher = DecomposableAdler.identity()
        assert hasher.table == tuple(range(256))

    def test_bad_table_rejected(self):
        with pytest.raises(ValueError):
            DecomposableAdler(table=(1, 2, 3))

    def test_identity_matches_plain_adler(self):
        from repro.hashing import AdlerRolling

        data = b"hello rolling world"
        pair = DecomposableAdler.identity().hash_block(data)
        assert (pair.a, pair.b) == AdlerRolling(data).components


class TestComponentWidths:
    def test_a_gets_extra_bit(self):
        assert component_widths(13) == (7, 6)
        assert component_widths(16) == (8, 8)
        assert component_widths(1) == (1, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            component_widths(0)
        with pytest.raises(ValueError):
            component_widths(33)

    def test_a_width_never_below_b_width(self):
        for width in range(1, 33):
            a_bits, b_bits = component_widths(width)
            assert a_bits >= b_bits
            assert a_bits + b_bits == width


class TestAlgebra:
    @given(st.binary(min_size=2, max_size=300))
    def test_compose_splits_anywhere(self, data):
        hasher = DecomposableAdler(seed=3)
        for cut in (1, len(data) // 2, len(data) - 1):
            left, right = data[:cut], data[cut:]
            assert hasher.compose(
                hasher.hash_block(left), hasher.hash_block(right), len(right)
            ) == hasher.hash_block(data)

    @given(st.binary(min_size=2, max_size=200))
    def test_decompose_inverts_compose(self, data):
        hasher = DecomposableAdler(seed=3)
        cut = len(data) // 2 or 1
        left, right = data[:cut], data[cut:]
        parent = hasher.hash_block(data)
        left_pair = hasher.hash_block(left)
        right_pair = hasher.hash_block(right)
        assert hasher.decompose_right(parent, left_pair, len(right)) == right_pair
        assert hasher.decompose_left(parent, right_pair, len(right)) == left_pair

    @given(st.binary(min_size=10, max_size=200))
    def test_rolling_matches_direct(self, data):
        hasher = DecomposableAdler(seed=11)
        window = 9
        pair = hasher.hash_block(data[:window])
        for i in range(1, len(data) - window + 1):
            pair = hasher.roll(pair, window, data[i - 1], data[i + window - 1])
            assert pair == hasher.hash_block(data[i : i + window])


class TestPacking:
    def test_pack_unpack_width_16(self):
        pair = HashPair(0x12, 0x34)
        packed = DecomposableAdler.pack(pair, 16)
        assert DecomposableAdler.unpack(packed, 16) == pair

    def test_pack_width_1_uses_a_only(self):
        assert DecomposableAdler.pack(HashPair(1, 0xFFFF), 1) == 1
        assert DecomposableAdler.pack(HashPair(0, 0xFFFF), 1) == 0

    def test_truncate_keeps_low_bits(self):
        pair = HashPair(0b1011, 0b1101)
        wide = DecomposableAdler.pack(pair, 8)  # 4 bits each
        narrow = DecomposableAdler.truncate(wide, 8, 4)  # 2 bits each
        assert DecomposableAdler.unpack(narrow, 4) == HashPair(0b11, 0b01)

    def test_truncate_cannot_widen(self):
        with pytest.raises(ValueError):
            DecomposableAdler.truncate(0, 8, 16)

    @given(st.binary(min_size=2, max_size=120), st.integers(1, 32))
    def test_truncated_decomposition(self, data, width):
        """Bit-prefix decomposability: the identity holds at every width."""
        hasher = DecomposableAdler(seed=17)
        cut = len(data) // 2 or 1
        left, right = data[:cut], data[cut:]
        parent_packed = hasher.packed_hash(data, width)
        left_packed = hasher.packed_hash(left, width)
        right_packed = hasher.packed_hash(right, width)
        assert (
            DecomposableAdler.decompose_right_packed(
                parent_packed, left_packed, width, len(right)
            )
            == right_packed
        )

    @given(st.binary(min_size=2, max_size=120), st.integers(4, 32), st.integers(1, 32))
    def test_truncation_consistency(self, data, wide, narrow):
        """Truncating a packed hash equals packing at the narrow width."""
        if narrow > wide:
            narrow = wide
        hasher = DecomposableAdler(seed=23)
        assert DecomposableAdler.truncate(
            hasher.packed_hash(data, wide), wide, narrow
        ) == hasher.packed_hash(data, narrow)


class TestDistribution:
    def test_substitution_separates_permutations(self):
        """The 'a' component of the *plain* checksum is permutation
        invariant; the substituted 'b' component is what separates them."""
        hasher = DecomposableAdler(seed=0)
        packed1 = hasher.packed_hash(b"abcdef", 32)
        packed2 = hasher.packed_hash(b"fedcba", 32)
        assert packed1 != packed2

    def test_collision_rate_reasonable_at_16_bits(self):
        import random

        rng = random.Random(0)
        hasher = DecomposableAdler(seed=0)
        seen = set()
        collisions = 0
        for _ in range(2000):
            block = bytes(rng.randrange(256) for _ in range(32))
            value = hasher.packed_hash(block, 16)
            if value in seen:
                collisions += 1
            seen.add(value)
        # Birthday bound: ~2000^2 / 2^17 ≈ 30 expected; allow slack.
        assert collisions < 120
