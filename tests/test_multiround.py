"""Tests for the multiround-rsync baseline (Langford [25])."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import synchronize
from repro.multiround import MultiroundConfig, multiround_rsync_sync
from repro.rsync import rsync_sync
from tests.conftest import make_version_pair


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiroundConfig(min_block_size=1)
        with pytest.raises(ValueError):
            MultiroundConfig(start_block_size=32, min_block_size=64)
        with pytest.raises(ValueError):
            MultiroundConfig(hash_bits=4)


class TestCorrectness:
    def test_reconstruction(self):
        old, new = make_version_pair(seed=60, nbytes=30000, edits=10)
        result = multiround_rsync_sync(old, new)
        assert result.reconstructed == new

    def test_empty_files(self):
        assert multiround_rsync_sync(b"", b"").reconstructed == b""
        assert multiround_rsync_sync(b"x", b"").reconstructed == b""
        assert multiround_rsync_sync(b"", b"y").reconstructed == b"y"

    def test_identical_files(self):
        data = b"stable " * 2000
        result = multiround_rsync_sync(data, data)
        assert result.reconstructed == data
        # A handful of top-level hashes plus a tiny delta.
        assert result.total_bytes < 200

    def test_disjoint_files(self):
        rng = random.Random(3)
        old = bytes(rng.randrange(256) for _ in range(20000))
        new = bytes(rng.randrange(256) for _ in range(20000))
        result = multiround_rsync_sync(old, new)
        assert result.reconstructed == new

    def test_rounds_bounded_by_block_ladder(self):
        old, new = make_version_pair(seed=61, nbytes=30000, edits=10)
        config = MultiroundConfig(start_block_size=1024, min_block_size=64)
        result = multiround_rsync_sync(old, new, config)
        assert result.reconstructed == new
        assert result.rounds <= 6  # 1024 .. 64 is 5 halvings

    @given(st.binary(max_size=2500), st.binary(max_size=2500))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_pairs(self, old, new):
        config = MultiroundConfig(start_block_size=256, min_block_size=32)
        assert multiround_rsync_sync(old, new, config).reconstructed == new

    def test_low_hash_bits_recovered_by_fallback(self):
        """8-bit hashes collide wildly; the checksum must still save us."""
        rng = random.Random(4)
        old = bytes(rng.randrange(4) for _ in range(20000))
        new = bytearray(old)
        new[3000:3200] = bytes(rng.randrange(4) for _ in range(200))
        result = multiround_rsync_sync(
            old, bytes(new), MultiroundConfig(hash_bits=8)
        )
        assert result.reconstructed == bytes(new)


class TestProgression:
    """The paper's position in the lineage, as an executable claim:
    rsync > multiround rsync > the paper's protocol."""

    def test_multiround_beats_plain_rsync(self):
        old, new = make_version_pair(seed=62, nbytes=60000, edits=15)
        multiround = multiround_rsync_sync(old, new)
        plain = rsync_sync(old, new)
        assert multiround.reconstructed == plain.reconstructed == new
        assert multiround.total_bytes < plain.total_bytes

    def test_paper_protocol_beats_multiround(self):
        old, new = make_version_pair(seed=63, nbytes=60000, edits=15)
        multiround = multiround_rsync_sync(old, new)
        ours = synchronize(old, new)
        assert ours.reconstructed == multiround.reconstructed == new
        assert ours.total_bytes < multiround.total_bytes
