"""FaultyChannel and FaultPlan: deterministic, targeted, honestly accounted.

Also covers the two channel-layer satellites: ``ChannelEmptyError`` for
receives on an *open* but empty channel, and ``LinkModel`` validation at
construction time.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ChannelClosedError,
    ChannelEmptyError,
    FrameCorruptionError,
)
from repro.net import (
    Direction,
    FaultKind,
    FaultPlan,
    FaultyChannel,
    LinkModel,
    SimulatedChannel,
)


class TestChannelEmptyError:
    def test_empty_open_channel_raises_empty_error(self):
        channel = SimulatedChannel()
        with pytest.raises(ChannelEmptyError):
            channel.receive(Direction.CLIENT_TO_SERVER)

    def test_back_compat_with_closed_error_handlers(self):
        """Old code catching ChannelClosedError keeps working."""
        assert issubclass(ChannelEmptyError, ChannelClosedError)
        with pytest.raises(ChannelClosedError):
            SimulatedChannel().receive(Direction.SERVER_TO_CLIENT)

    def test_closed_channel_still_raises_closed_error(self):
        channel = SimulatedChannel()
        channel.close()
        with pytest.raises(ChannelClosedError) as info:
            channel.receive(Direction.CLIENT_TO_SERVER)
        assert not isinstance(info.value, ChannelEmptyError)


class TestLinkModelValidation:
    @pytest.mark.parametrize("bandwidth", [0, -1, -1e6])
    def test_non_positive_bandwidth_rejected_at_construction(self, bandwidth):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=bandwidth)

    @pytest.mark.parametrize("uplink", [0, -256_000])
    def test_non_positive_uplink_rejected(self, uplink):
        with pytest.raises(ValueError):
            LinkModel(uplink_bps=uplink)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(latency_s=-0.001)

    def test_valid_links_construct(self):
        LinkModel()
        LinkModel(bandwidth_bps=1e9, uplink_bps=800.0, latency_s=0.0)


class TestFaultPlanValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=0.6, truncate_rate=0.3, drop_rate=0.3)

    def test_disconnect_count_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(disconnect_after_sends=0)

    def test_uniform_split(self):
        plan = FaultPlan.uniform(0.2, seed=9)
        assert plan.corrupt_rate == pytest.approx(0.1)
        assert plan.truncate_rate == pytest.approx(0.05)
        assert plan.drop_rate == pytest.approx(0.05)
        with pytest.raises(ValueError):
            FaultPlan.uniform(1.5)


class TestFaultlessChannel:
    def test_payloads_roundtrip(self):
        channel = FaultPlan(seed=1).channel()
        channel.send(Direction.CLIENT_TO_SERVER, b"hello", "map")
        assert channel.receive(Direction.CLIENT_TO_SERVER) == b"hello"

    def test_accounting_identical_to_clean_channel(self):
        """Framing overhead must NOT show up in the stats: faulty rows
        stay comparable to clean benchmark rows."""
        faulty = FaultPlan(seed=1).channel()
        clean = SimulatedChannel()
        for channel in (faulty, clean):
            channel.send(Direction.CLIENT_TO_SERVER, b"abcdef", "map", bits=44)
            channel.send(Direction.SERVER_TO_CLIENT, b"xy", "delta")
        assert faulty.stats.bits_by == clean.stats.bits_by
        assert faulty.stats.total_bytes == clean.stats.total_bytes
        assert faulty.roundtrips == clean.roundtrips


class TestInjectedFaults:
    def test_corruption_detected_at_receive(self):
        plan = FaultPlan(seed=2, corrupt_rate=1.0)
        channel = plan.channel()
        channel.send(Direction.SERVER_TO_CLIENT, b"payload", "delta")
        with pytest.raises(FrameCorruptionError):
            channel.receive(Direction.SERVER_TO_CLIENT)
        assert plan.injected[FaultKind.CORRUPT] == 1

    def test_truncation_detected_at_receive(self):
        plan = FaultPlan(seed=3, truncate_rate=1.0)
        channel = plan.channel()
        channel.send(Direction.SERVER_TO_CLIENT, b"payload", "delta")
        with pytest.raises(FrameCorruptionError):
            channel.receive(Direction.SERVER_TO_CLIENT)

    def test_drop_leaves_queue_empty_but_charges_bytes(self):
        plan = FaultPlan(seed=4, drop_rate=1.0)
        channel = plan.channel()
        channel.send(Direction.CLIENT_TO_SERVER, b"gone", "map")
        # The bytes crossed the wire even though they never arrived.
        assert channel.stats.total_bytes == 4
        assert channel.pending(Direction.CLIENT_TO_SERVER) == 0
        with pytest.raises(ChannelEmptyError):
            channel.receive(Direction.CLIENT_TO_SERVER)

    def test_disconnect_after_n_sends(self):
        plan = FaultPlan(seed=5, disconnect_after_sends=3)
        channel = plan.channel()
        channel.send(Direction.CLIENT_TO_SERVER, b"1", "map")
        channel.send(Direction.SERVER_TO_CLIENT, b"2", "map")
        with pytest.raises(ChannelClosedError):
            channel.send(Direction.CLIENT_TO_SERVER, b"3", "map")
        # The channel is now closed for good.
        with pytest.raises(ChannelClosedError):
            channel.send(Direction.CLIENT_TO_SERVER, b"4", "map")

    def test_disconnect_is_one_shot_across_channels(self):
        """A retry over a fresh channel of the same plan survives: the
        mid-protocol link loss fires exactly once."""
        plan = FaultPlan(seed=6, disconnect_after_sends=2)
        first = plan.channel()
        first.send(Direction.CLIENT_TO_SERVER, b"1", "map")
        with pytest.raises(ChannelClosedError):
            first.send(Direction.CLIENT_TO_SERVER, b"2", "map")
        retry = plan.channel()
        for index in range(5):
            retry.send(Direction.CLIENT_TO_SERVER, b"ok", "map")
        assert retry.pending(Direction.CLIENT_TO_SERVER) == 5

    def test_phase_targeting(self):
        """Faults restricted to the delta phase never touch map traffic."""
        plan = FaultPlan(seed=7, corrupt_rate=1.0, phases=frozenset({"delta"}))
        channel = plan.channel()
        for _ in range(10):
            channel.send(Direction.CLIENT_TO_SERVER, b"m", "map")
            assert channel.receive(Direction.CLIENT_TO_SERVER) == b"m"
        channel.send(Direction.SERVER_TO_CLIENT, b"d", "delta")
        with pytest.raises(FrameCorruptionError):
            channel.receive(Direction.SERVER_TO_CLIENT)

    def test_max_faults_cap(self):
        plan = FaultPlan(seed=8, corrupt_rate=1.0, max_faults=2)
        channel = plan.channel()
        failures = 0
        for _ in range(10):
            channel.send(Direction.CLIENT_TO_SERVER, b"x", "map")
            try:
                channel.receive(Direction.CLIENT_TO_SERVER)
            except FrameCorruptionError:
                failures += 1
        assert failures == 2

    def test_deterministic_given_seed(self):
        def fault_signature(seed):
            plan = FaultPlan.uniform(0.4, seed=seed)
            channel = plan.channel()
            outcomes = []
            for index in range(50):
                try:
                    channel.send(
                        Direction.CLIENT_TO_SERVER, b"payload", "map"
                    )
                    outcomes.append(
                        channel.receive(Direction.CLIENT_TO_SERVER)
                    )
                except Exception as error:  # noqa: BLE001 - recording kinds
                    outcomes.append(type(error).__name__)
            return outcomes

        assert fault_signature(11) == fault_signature(11)
        assert fault_signature(11) != fault_signature(12)
