"""Fidelity tests tied to specific statements in the paper's text."""

from __future__ import annotations

import random

from repro.core import ProtocolConfig, synchronize
from repro.hashing import AdlerRolling
from repro.rsync import compute_signatures, rsync_sync
from repro.rsync.signature import signature_wire_bytes
from tests.conftest import make_version_pair


class TestSection2Rsync:
    def test_six_bytes_per_block(self):
        """§2.2: 'Thus, [6] bytes per block are transmitted from client
        to server' — 4 rolling + 2 of the strong hash."""
        signatures = compute_signatures(b"x" * 70_000, 700)
        assert signature_wire_bytes(signatures) == len(signatures) * 6

    def test_rolling_checksum_slides_in_constant_time(self):
        """§2.2: the checksum for [i+1, i+b] comes from [i, i+b-1] in
        constant time — i.e. rolling equals direct at every offset."""
        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(2000))
        hasher = AdlerRolling(data[:700])
        for i in range(1, 1000):
            hasher.roll(data[i - 1], data[i + 699])
            assert hasher.value == AdlerRolling.of(data[i : i + 700])

    def test_one_changed_byte_per_block_defeats_rsync(self):
        """§2.3: 'If a single character is changed in each block ... no
        match will be found by the server and rsync will be completely
        ineffective.'"""
        rng = random.Random(1)
        old = bytes(rng.randrange(256) for _ in range(70_000))
        new = bytearray(old)
        for start in range(0, len(new), 700):
            new[start + 350] ^= 0xFF
        result = rsync_sync(old, bytes(new), block_size=700)
        assert result.reconstructed == bytes(new)
        # rsync ships essentially the whole (incompressible) file.
        assert result.total_bytes > 60_000

    def test_clustered_changes_favour_large_blocks(self):
        """§2.3: 'if all changes are clustered in a few areas of the
        file, rsync will do well even with a large block size.'"""
        old, new = make_version_pair(seed=140, nbytes=60000, edits=4)
        clustered_large = rsync_sync(old, new, block_size=4096)
        assert clustered_large.total_bytes < len(new) // 5


class TestSection5Framework:
    def test_figure_5_1_example(self):
        """Figure 5.1's toy instance: F_new = 'BDAFHKZER',
        F_old = 'ABADFHKBCZY' — the protocol must recover the common
        substrings and reconstruct exactly."""
        f_new = b"BDAFHKZER"
        f_old = b"ABADFHKBCZY"
        config = ProtocolConfig(
            start_block_size=4,
            min_block_size=2,
            continuation_min_block_size=2,
        )
        result = synchronize(f_old, f_new, config)
        assert result.reconstructed == f_new

    def test_map_known_areas_are_truthful(self):
        """§5.1: the map's known areas must be byte-identical regions."""
        old, new = make_version_pair(seed=141, nbytes=20000, edits=5)
        from repro.core.client import ClientSession
        from repro.core.server import ServerSession
        from repro.net import SimulatedChannel

        channel = SimulatedChannel()
        result = synchronize(old, new, ProtocolConfig(), channel)
        assert result.reconstructed == new
        assert not result.used_fallback
        # known_fraction > 0 implies genuine matches existed; with default
        # widths a false accept would have forced the fallback instead.
        assert result.known_fraction > 0.5


class TestSection6Claims:
    def test_unchanged_files_detected_cheaply(self):
        """§6.1: the 16-byte hash 'allows our code to detect unchanged
        files at that point'."""
        data = make_version_pair(seed=142, nbytes=30000)[0]
        result = synchronize(data, data)
        assert result.unchanged
        assert result.total_bytes < 48

    def test_best_results_beat_rsync_by_claimed_band(self):
        """Table 6.1's band: savings of ~1.5-2.5x over rsync."""
        old, new = make_version_pair(seed=143, nbytes=80000, edits=20)
        ours = synchronize(
            old, new,
            ProtocolConfig(min_block_size=32, continuation_min_block_size=8),
        )
        rsync_result = rsync_sync(old, new)
        ratio = rsync_result.total_bytes / ours.total_bytes
        assert ratio > 1.4
