"""Engine parity: the vectorized round engine vs the scalar oracle.

The whole-round engine rewrite (DESIGN §13) keeps the original per-block
loops alive as a parity oracle behind ``engine="scalar"``.  The contract
this suite pins down: both engines put **byte-identical traffic** on the
wire, report identical :class:`TransferStats`, and write interchangeable
round checkpoints — so a session checkpointed under one engine resumes
cleanly under the other, and every correctness test exercised against
one engine speaks for both.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ENGINE_ENV,
    ENGINES,
    ProtocolConfig,
    default_engine,
    resolve_engine,
    synchronize,
    synchronize_batch,
)
from repro.multiround import MultiroundConfig, multiround_rsync_sync
from repro.net.channel import SimulatedChannel
from repro.resilience import RoundCheckpoint
from tests.conftest import make_version_pair


class RecordingChannel(SimulatedChannel):
    """A channel that keeps a verbatim transcript of every send."""

    def __init__(self):
        super().__init__()
        self.transcript: list[tuple[str, str, int | None, bytes]] = []

    def send(self, direction, payload, phase, bits=None):
        self.transcript.append(
            (direction.value, phase, bits, bytes(payload))
        )
        super().send(direction, payload, phase, bits=bits)


class Recorder:
    """A checkpointer that keeps every round checkpoint in memory."""

    def __init__(self):
        self.checkpoints: list[RoundCheckpoint] = []

    def record_round(self, round_index, payload, stats):
        self.checkpoints.append(
            RoundCheckpoint.at_boundary(round_index, payload, stats)
        )


def run_core(old, new, config=None, engine="vectorized", checkpointer=None):
    channel = RecordingChannel()
    result = synchronize(
        old, new, config, channel, checkpointer=checkpointer, engine=engine
    )
    return result, channel


def run_multiround(old, new, config=None, engine="vectorized",
                   checkpointer=None):
    channel = RecordingChannel()
    result = multiround_rsync_sync(
        old, new, config, channel, checkpointer=checkpointer, engine=engine
    )
    return result, channel


def assert_same_wire(vec_channel, scalar_channel):
    assert vec_channel.transcript == scalar_channel.transcript
    assert vec_channel.stats.bits_by == scalar_channel.stats.bits_by
    assert vec_channel.stats.messages == scalar_channel.stats.messages
    assert vec_channel.stats.roundtrips == scalar_channel.stats.roundtrips


# ----------------------------------------------------------------------
# Core protocol (map construction, candidates, verification)
# ----------------------------------------------------------------------
CORE_CONFIGS = [
    pytest.param(None, id="defaults"),
    pytest.param(
        ProtocolConfig(use_local_hashes=True), id="local-hashes"
    ),
    pytest.param(
        ProtocolConfig(verification="trivial"), id="trivial-verify"
    ),
    pytest.param(
        ProtocolConfig(verification="group3"), id="group3-verify"
    ),
    pytest.param(
        ProtocolConfig(continuation_min_block_size=None),
        id="no-continuation",
    ),
]


class TestCoreParity:
    @pytest.mark.parametrize("config", CORE_CONFIGS)
    def test_wire_and_stats_identical(self, config):
        old, new = make_version_pair(seed=1601, nbytes=16000, edits=8)
        vec, vec_channel = run_core(old, new, config, "vectorized")
        scalar, scalar_channel = run_core(old, new, config, "scalar")
        assert vec.reconstructed == new
        assert scalar.reconstructed == new
        assert vec.rounds == scalar.rounds
        assert_same_wire(vec_channel, scalar_channel)

    @pytest.mark.parametrize("seed", range(1610, 1618))
    def test_randomized_version_pairs(self, seed):
        rng = random.Random(seed)
        old, new = make_version_pair(
            seed=seed,
            nbytes=rng.randrange(200, 24000),
            edits=rng.randrange(1, 14),
        )
        vec, vec_channel = run_core(old, new, None, "vectorized")
        scalar, scalar_channel = run_core(old, new, None, "scalar")
        assert vec.reconstructed == new == scalar.reconstructed
        assert_same_wire(vec_channel, scalar_channel)

    @pytest.mark.parametrize(
        "old,new",
        [
            (b"", b""),
            (b"", b"fresh content, nothing shared"),
            (b"stale content, all deleted", b""),
            (b"identical bytes" * 50, b"identical bytes" * 50),
            (b"\x00" * 4096, b"\x00" * 4095 + b"\x01"),
        ],
        ids=["both-empty", "empty-old", "empty-new", "identical", "runs"],
    )
    def test_edge_inputs(self, old, new):
        vec, vec_channel = run_core(old, new, None, "vectorized")
        scalar, scalar_channel = run_core(old, new, None, "scalar")
        assert vec.reconstructed == new == scalar.reconstructed
        assert_same_wire(vec_channel, scalar_channel)

    @given(
        old=st.binary(max_size=3000),
        junk=st.binary(max_size=200),
        cut=st.integers(min_value=0, max_value=3000),
    )
    @settings(max_examples=20, deadline=None)
    def test_hypothesis_spliced_edits(self, old, junk, cut):
        at = min(cut, len(old))
        new = old[:at] + junk + old[at + len(junk):]
        vec, vec_channel = run_core(old, new, None, "vectorized")
        scalar, scalar_channel = run_core(old, new, None, "scalar")
        assert vec.reconstructed == new == scalar.reconstructed
        assert_same_wire(vec_channel, scalar_channel)

    def test_checkpoints_bit_identical(self):
        old, new = make_version_pair(seed=1620, nbytes=15000, edits=8)
        vec_recorder, scalar_recorder = Recorder(), Recorder()
        run_core(old, new, engine="vectorized", checkpointer=vec_recorder)
        run_core(old, new, engine="scalar", checkpointer=scalar_recorder)
        assert len(vec_recorder.checkpoints) >= 2
        assert vec_recorder.checkpoints == scalar_recorder.checkpoints

    @pytest.mark.parametrize(
        "crash_engine,resume_engine",
        [("vectorized", "scalar"), ("scalar", "vectorized")],
    )
    def test_cross_engine_resume(self, crash_engine, resume_engine):
        """A checkpoint written by one engine resumes under the other —
        the SIGKILL-then-different-binary scenario."""
        old, new = make_version_pair(seed=1621, nbytes=15000, edits=8)
        recorder = Recorder()
        baseline, _ = run_core(
            old, new, engine=crash_engine, checkpointer=recorder
        )
        assert len(recorder.checkpoints) >= 2
        for checkpoint in recorder.checkpoints:
            channel = SimulatedChannel()
            checkpoint.seed_stats(channel.stats)
            resumed = synchronize(
                old, new, channel=channel, resume_from=checkpoint,
                engine=resume_engine,
            )
            assert resumed.reconstructed == new
            assert resumed.rounds == baseline.rounds
            assert resumed.stats.bits_by == baseline.stats.bits_by, (
                f"{resume_engine} resume from {crash_engine} checkpoint "
                f"at round {checkpoint.round_index} diverged"
            )


# ----------------------------------------------------------------------
# Multiround rsync (frontier bookkeeping, bitmap, splits)
# ----------------------------------------------------------------------
class TestMultiroundParity:
    @pytest.mark.parametrize("seed", range(1630, 1636))
    def test_wire_and_stats_identical(self, seed):
        rng = random.Random(seed)
        old, new = make_version_pair(
            seed=seed,
            nbytes=rng.randrange(500, 20000),
            edits=rng.randrange(1, 12),
        )
        vec, vec_channel = run_multiround(old, new, None, "vectorized")
        scalar, scalar_channel = run_multiround(old, new, None, "scalar")
        assert vec.reconstructed == new == scalar.reconstructed
        assert vec.rounds == scalar.rounds
        assert_same_wire(vec_channel, scalar_channel)

    def test_edge_inputs(self):
        config = MultiroundConfig()
        for old, new in [(b"", b""), (b"", b"x" * 900), (b"y" * 900, b"")]:
            vec, vec_channel = run_multiround(old, new, config, "vectorized")
            scalar, scalar_channel = run_multiround(old, new, config, "scalar")
            assert vec.reconstructed == new == scalar.reconstructed
            assert_same_wire(vec_channel, scalar_channel)

    def test_checkpoints_bit_identical(self):
        old, new = make_version_pair(seed=1640, nbytes=15000, edits=8)
        vec_recorder, scalar_recorder = Recorder(), Recorder()
        run_multiround(old, new, engine="vectorized",
                       checkpointer=vec_recorder)
        run_multiround(old, new, engine="scalar",
                       checkpointer=scalar_recorder)
        assert len(vec_recorder.checkpoints) >= 2
        assert vec_recorder.checkpoints == scalar_recorder.checkpoints

    @pytest.mark.parametrize(
        "crash_engine,resume_engine",
        [("vectorized", "scalar"), ("scalar", "vectorized")],
    )
    def test_cross_engine_resume(self, crash_engine, resume_engine):
        old, new = make_version_pair(seed=1641, nbytes=15000, edits=8)
        recorder = Recorder()
        baseline, _ = run_multiround(
            old, new, engine=crash_engine, checkpointer=recorder
        )
        assert len(recorder.checkpoints) >= 2
        for checkpoint in recorder.checkpoints:
            channel = SimulatedChannel()
            checkpoint.seed_stats(channel.stats)
            resumed = multiround_rsync_sync(
                old, new, channel=channel, resume_from=checkpoint,
                engine=resume_engine,
            )
            assert resumed.reconstructed == new
            assert resumed.rounds == baseline.rounds
            assert resumed.stats.bits_by == baseline.stats.bits_by


# ----------------------------------------------------------------------
# Batched collection sync (combined sections, shared roundtrips)
# ----------------------------------------------------------------------
class TestBatchParity:
    @pytest.mark.parametrize("seed", [1650, 1651])
    def test_wire_and_stats_identical(self, seed):
        rng = random.Random(seed)
        client_files, server_files = {}, {}
        for index in range(4):
            old, new = make_version_pair(
                seed=seed * 100 + index,
                nbytes=rng.randrange(300, 9000),
                edits=rng.randrange(1, 8),
            )
            name = f"f{index}.txt"
            client_files[name] = old
            server_files[name] = new
        # One unchanged file: the batch layer must skip it identically.
        client_files["same.txt"] = server_files["same.txt"] = b"s" * 2000

        vec_channel, scalar_channel = RecordingChannel(), RecordingChannel()
        vec = synchronize_batch(
            client_files, server_files, channel=vec_channel,
            engine="vectorized",
        )
        scalar = synchronize_batch(
            client_files, server_files, channel=scalar_channel,
            engine="scalar",
        )
        assert vec.reconstructed == scalar.reconstructed
        for name, data in server_files.items():
            if name in vec.reconstructed:
                assert vec.reconstructed[name] == data
        assert vec.rounds == scalar.rounds
        assert vec.unchanged_files == scalar.unchanged_files
        assert vec.fallback_files == scalar.fallback_files
        assert_same_wire(vec_channel, scalar_channel)


# ----------------------------------------------------------------------
# Engine selection (explicit argument + environment default)
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_engines_registry(self):
        assert ENGINES == ("vectorized", "scalar")

    def test_explicit_engine_validated(self):
        old, new = make_version_pair(seed=1660, nbytes=2000, edits=2)
        with pytest.raises(ValueError, match="engine"):
            synchronize(old, new, engine="bogus")
        with pytest.raises(ValueError, match="engine"):
            multiround_rsync_sync(old, new, engine="bogus")
        with pytest.raises(ValueError, match="engine"):
            synchronize_batch({"f": old}, {"f": new}, engine="bogus")

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        assert default_engine() == "scalar"
        assert resolve_engine(None) == "scalar"
        monkeypatch.setenv(ENGINE_ENV, "vectorized")
        assert resolve_engine(None) == "vectorized"

    def test_env_var_garbage_falls_back_to_vectorized(self, monkeypatch):
        """A typo'd deploy knob must not abort syncs — fall back safely."""
        monkeypatch.setenv(ENGINE_ENV, "turbo9000")
        assert default_engine() == "vectorized"
        old, new = make_version_pair(seed=1661, nbytes=2000, edits=2)
        result = synchronize(old, new)
        assert result.reconstructed == new

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vectorized")
        assert resolve_engine("scalar") == "scalar"
