"""FaultPlan's fault log: which round did the failure actually hit?"""

from __future__ import annotations

import pytest

from repro.core import synchronize
from repro.exceptions import ChannelClosedError
from repro.multiround import multiround_rsync_sync
from repro.net import FaultPlan
from repro.net.faults import FaultEvent, FaultKind
from tests.conftest import make_version_pair


class TestFaultEventRecords:
    def test_disconnect_is_logged_with_send_index(self):
        plan = FaultPlan(disconnect_after_sends=2)
        channel = plan.channel()
        from repro.net.metrics import Direction

        channel.send(Direction.CLIENT_TO_SERVER, b"a", "map", bits=8)
        with pytest.raises(ChannelClosedError):
            channel.send(Direction.CLIENT_TO_SERVER, b"b", "map", bits=8)
        assert plan.fault_log == [
            FaultEvent(FaultKind.DISCONNECT, "map", send_index=2,
                       round_index=0)
        ]

    def test_probabilistic_faults_carry_their_phase(self):
        plan = FaultPlan(seed=3, corrupt_rate=1.0, max_faults=2)
        channel = plan.channel()
        from repro.net.metrics import Direction

        channel.send(Direction.CLIENT_TO_SERVER, b"a", "map", bits=8)
        channel.send(Direction.SERVER_TO_CLIENT, b"b", "delta", bits=8)
        assert [e.kind for e in plan.fault_log] == [FaultKind.CORRUPT] * 2
        assert [e.phase for e in plan.fault_log] == ["map", "delta"]


class TestRoundAttribution:
    def test_handshake_disconnect_is_round_zero(self):
        old, new = make_version_pair(seed=510, nbytes=10000, edits=5)
        plan = FaultPlan(disconnect_after_sends=1)
        with pytest.raises(ChannelClosedError):
            synchronize(old, new, channel=plan.channel())
        assert plan.disconnect_rounds == [0]

    def test_late_disconnect_lands_in_a_real_round(self):
        """Our protocol marks each round on the channel, so a disconnect
        deep into the session is attributed to the round it interrupted."""
        old, new = make_version_pair(seed=511, nbytes=15000, edits=8)
        baseline = synchronize(old, new)
        plan = FaultPlan(disconnect_after_sends=20)
        with pytest.raises(ChannelClosedError):
            synchronize(old, new, channel=plan.channel())
        (round_hit,) = plan.disconnect_rounds
        assert 1 <= round_hit <= baseline.rounds

    def test_multiround_rsync_marks_rounds_too(self):
        old, new = make_version_pair(seed=512, nbytes=15000, edits=8)
        plan = FaultPlan(disconnect_after_sends=6)
        with pytest.raises(ChannelClosedError):
            multiround_rsync_sync(old, new, channel=plan.channel())
        (round_hit,) = plan.disconnect_rounds
        assert round_hit >= 1

    def test_rounds_are_monotonic_across_the_log(self):
        old, new = make_version_pair(seed=513, nbytes=12000, edits=6)
        plan = FaultPlan(seed=5, corrupt_rate=0.3, max_faults=100)
        try:
            synchronize(old, new, channel=plan.channel())
        except Exception:
            pass  # faults may or may not kill the run; the log is the point
        rounds = [event.round_index for event in plan.fault_log]
        assert rounds == sorted(rounds)
        assert plan.faults_injected == len(plan.fault_log)
