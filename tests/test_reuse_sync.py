"""Tests for sibling references and rename detection in sync_collection."""

from __future__ import annotations

import random
import zlib

from repro.bench.methods import OursMethod
from repro.collection.sync import sync_collection


def _random_bytes(seed: int, nbytes: int = 8_192) -> bytes:
    return random.Random(seed).randbytes(nbytes)


def _edited(data: bytes, seed: int = 1, edits: int = 4) -> bytes:
    rng = random.Random(seed)
    out = bytearray(data)
    for _ in range(edits):
        at = rng.randrange(len(out) - 100)
        out[at : at + 40] = rng.randbytes(60)
    return bytes(out)


class TestRenameDetection:
    def test_renamed_file_costs_zero_added_bytes(self):
        content = _random_bytes(2)
        client = {"old-name.bin": content}
        server = {"old-name.bin": content, "new-name.bin": content}
        report = sync_collection(
            client, server, OursMethod(), sibling_refs=True
        )
        assert report.dedup_hits == 1
        assert report.added_bytes == 0
        assert report.bytes_saved_vs_self_ref == len(
            zlib.compress(content, 9)
        )
        assert report.reconstructed == server

    def test_rename_detection_is_deterministic_on_twins(self):
        content = _random_bytes(3)
        client = {"b.bin": content, "a.bin": content}
        server = dict(client, **{"c.bin": content})
        report = sync_collection(
            client, server, OursMethod(), sibling_refs=True
        )
        assert report.dedup_hits == 1
        assert report.reconstructed == server


class TestSiblingReferences:
    def test_similar_sibling_beats_full_transfer(self):
        base = _random_bytes(5)
        client = {"base.bin": base}
        server = {"base.bin": base, "similar.bin": _edited(base, seed=7)}
        with_refs = sync_collection(
            client, server, OursMethod(), sibling_refs=True
        )
        without = sync_collection(client, server, OursMethod())
        assert with_refs.sibling_refs_used == 1
        assert with_refs.added_bytes < without.added_bytes
        assert with_refs.bytes_saved_vs_self_ref == (
            without.added_bytes - with_refs.added_bytes
        )
        assert with_refs.reconstructed == server

    def test_unrelated_added_file_falls_back_to_full(self):
        client = {"base.bin": _random_bytes(8)}
        server = dict(client, **{"new.bin": _random_bytes(9)})
        with_refs = sync_collection(
            client, server, OursMethod(), sibling_refs=True
        )
        without = sync_collection(client, server, OursMethod())
        assert with_refs.sibling_refs_used == 0
        assert with_refs.added_bytes == without.added_bytes
        assert with_refs.reconstructed == server

    def test_empty_client_falls_back_to_full(self):
        server = {"a.bin": _random_bytes(10)}
        report = sync_collection({}, server, OursMethod(),
                                 sibling_refs=True)
        assert report.sibling_refs_used == 0
        assert report.added_bytes == len(
            zlib.compress(server["a.bin"], 9)
        )
        assert report.reconstructed == server

    def test_threshold_gates_the_sibling_path(self):
        base = _random_bytes(12)
        client = {"base.bin": base}
        server = dict(client, **{"similar.bin": _edited(base, seed=13)})
        gated = sync_collection(
            client,
            server,
            OursMethod(),
            sibling_refs=True,
            resemblance_threshold=0.999,
        )
        assert gated.sibling_refs_used == 0
        assert gated.reconstructed == server


class TestDefaultOffParity:
    def test_defaults_reproduce_pre_reuse_reports(self):
        """sibling_refs/delta_memo off: byte-for-byte the old behaviour."""
        base = _random_bytes(14)
        client = {"base.bin": base}
        server = {
            "base.bin": _edited(base, seed=15),
            "added.bin": _edited(base, seed=16),
        }
        report = sync_collection(client, server, OursMethod())
        assert report.added_bytes == len(
            zlib.compress(server["added.bin"], 9)
        )
        assert report.dedup_hits == 0
        assert report.sibling_refs_used == 0
        assert report.bytes_saved_vs_self_ref == 0
        assert report.delta_memo_hits == 0
        assert report.reconstructed == server
