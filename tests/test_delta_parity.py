"""Engine parity and reference-index cache behaviour for the delta core.

The vectorized matching engine (ISSUE 5 / DESIGN §12) must emit
*byte-identical* instruction lists to the scalar oracle on every input —
not merely decode to the same target.  The first half of this module
attacks that property with structured adversarial cases and a
hypothesis sweep; the second half pins down the
:class:`~repro.parallel.cache.ReferenceIndexCache` contract: repeated
references hit, both delta coders share one entry, per-worker counters
fold back into the executor's batch result.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.encoder import zdelta_encode
from repro.delta.instructions import apply_instructions
from repro.delta.matcher import (
    ENGINE_ENV,
    ENGINES,
    ReferenceMatcher,
    compute_instructions,
    default_engine,
)
from repro.delta.vcdiff import vcdiff_encode
from repro.parallel import FileTask, SyncExecutor
from repro.parallel.cache import (
    ReferenceIndexCache,
    default_reference_cache,
    reset_default_reference_cache,
)
from repro.parallel.executor import _worker_init
from repro.syncmethod import MethodOutcome, SyncMethod


@pytest.fixture(autouse=True)
def _fresh_reference_cache():
    """Every test starts from an empty process-wide reference cache."""
    reset_default_reference_cache()
    yield
    reset_default_reference_cache()


def _assert_parity(reference: bytes, target: bytes, **kwargs) -> None:
    scalar = compute_instructions(
        reference, target, engine="scalar", cache=False, **kwargs
    )
    vectorized = compute_instructions(
        reference, target, engine="vectorized", cache=False, **kwargs
    )
    assert scalar == vectorized
    assert apply_instructions(reference, vectorized) == target


def _structured_target(style: str, reference: bytes, rng: random.Random) -> bytes:
    if style == "all-copy":
        return reference
    if style == "all-literal":
        return rng.randbytes(len(reference) or 64)
    if style == "mixed":
        out = bytearray()
        position = 0
        while position < len(reference):
            take = rng.randrange(8, 120)
            out += reference[position : position + take]
            position += take
            out += rng.randbytes(rng.randrange(0, 40))
        return bytes(out)
    # "periodic": every position shares one seed hash — cap stress.
    unit = reference[:8] if len(reference) >= 8 else b"abcdefgh"
    return unit * 64 + rng.randbytes(17) + unit * 16


class TestEngineParity:
    def test_empty_inputs(self):
        _assert_parity(b"", b"")
        _assert_parity(b"reference bytes here", b"")
        _assert_parity(b"", b"target with no reference to draw from")

    def test_target_shorter_than_seed_window(self):
        _assert_parity(b"a reference that is long enough", b"tiny")

    @pytest.mark.parametrize("style", ["all-copy", "all-literal", "mixed",
                                       "periodic"])
    def test_structured_styles(self, style):
        rng = random.Random(5)
        for trial in range(25):
            reference = rng.randbytes(rng.randrange(0, 2048))
            target = _structured_target(style, reference, rng)
            _assert_parity(reference, target)

    @pytest.mark.parametrize("seed_length", [1, 2, 4, 8, 31])
    def test_seed_length_edges(self, seed_length):
        rng = random.Random(seed_length)
        for trial in range(10):
            reference = rng.randbytes(rng.randrange(seed_length, 512))
            target = _structured_target("mixed", reference, rng)
            _assert_parity(reference, target, seed_length=seed_length)

    @pytest.mark.parametrize("min_match", [1, 4, 40])
    def test_min_match_variants(self, min_match):
        rng = random.Random(min_match)
        for trial in range(10):
            reference = rng.randbytes(700)
            target = _structured_target("mixed", reference, rng)
            _assert_parity(reference, target, min_match=min_match)

    @given(st.binary(max_size=600), st.binary(max_size=600))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_pairs(self, reference, target):
        _assert_parity(reference, target, seed_length=4)


class TestEngineSelection:
    def test_engines_tuple_is_the_contract(self):
        assert ENGINES == ("vectorized", "scalar")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            compute_instructions(b"ref", b"tgt", engine="simd")

    def test_min_match_below_one_rejected(self):
        with pytest.raises(ValueError, match="min_match"):
            compute_instructions(b"ref" * 20, b"tgt" * 20, min_match=0)

    def test_env_override_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        assert default_engine() == "scalar"

    def test_env_garbage_falls_back_to_vectorized(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "definitely-not-an-engine")
        assert default_engine() == "vectorized"


class TestMatcherReuseCheck:
    def test_equal_content_different_object_accepted(self):
        reference = b"the same reference content, two objects" * 8
        twin = bytes(bytearray(reference))
        assert twin is not reference
        matcher = ReferenceMatcher(reference)
        instructions = compute_instructions(twin, reference, matcher=matcher)
        assert apply_instructions(twin, instructions) == reference

    def test_same_length_different_content_rejected(self):
        matcher = ReferenceMatcher(b"A" * 64)
        with pytest.raises(ValueError, match="different reference"):
            compute_instructions(b"B" * 64, b"target", matcher=matcher)

    def test_prebuilt_matcher_bypasses_cache(self):
        reference = b"cached reference payload" * 16
        matcher = ReferenceMatcher(reference)
        cache = default_reference_cache()
        compute_instructions(reference, reference[32:], matcher=matcher)
        assert cache.stats.lookups == 0


class TestReferenceIndexCache:
    def test_repeat_encode_hits_across_rounds(self):
        cache = default_reference_cache()
        reference = b"version-chain base revision " * 40
        target = reference[:512] + b"!" + reference[512:]
        compute_instructions(reference, target)
        compute_instructions(reference, target)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_zdelta_and_vcdiff_share_one_entry(self):
        cache = default_reference_cache()
        reference = b"one reference, two coders " * 50
        target = reference[100:] + b"tail bytes"
        zdelta_encode(reference, target)
        vcdiff_encode(reference, target)
        assert len(cache) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_seed_length_is_part_of_the_key(self):
        cache = default_reference_cache()
        reference = b"seed length distinguishes entries " * 30
        compute_instructions(reference, reference, seed_length=16)
        compute_instructions(reference, reference, seed_length=8)
        assert len(cache) == 2
        assert cache.stats.misses == 2

    def test_cache_false_is_a_private_build(self):
        cache = default_reference_cache()
        reference = b"private build, no shared state " * 30
        compute_instructions(reference, reference, cache=False)
        assert cache.stats.lookups == 0
        assert len(cache) == 0

    def test_explicit_cache_instance_is_used(self):
        private = ReferenceIndexCache(max_entries=4)
        reference = b"explicitly routed cache " * 30
        compute_instructions(reference, reference, cache=private)
        compute_instructions(reference, reference, cache=private)
        assert private.stats.misses == 1
        assert private.stats.hits == 1
        assert default_reference_cache().stats.lookups == 0

    def test_cached_matcher_owns_its_bytes(self):
        backing = bytearray(b"arena-style mutable backing " * 30)
        window = memoryview(backing)
        cache = ReferenceIndexCache()
        matcher = cache.matcher(bytes(window), 16)
        assert isinstance(matcher.reference, bytes)
        matcher_again = cache.matcher(window, 16)
        assert matcher_again is matcher

    def test_worker_init_presizes_reference_cache(self):
        before = default_reference_cache().max_entries
        _worker_init(None, before + 512)
        assert default_reference_cache().max_entries == before + 512


class DeltaProbeMethod(SyncMethod):
    """Per-file zdelta encode — one reference-cache lookup per file."""

    name = "delta-probe"
    supports_pickle = True

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        delta = zdelta_encode(old, new)
        return MethodOutcome(
            total_bytes=len(delta),
            server_to_client=len(delta),
            breakdown={"s2c/delta": len(delta)},
        )


class TestExecutorCounterFold:
    def test_shared_reference_counters_fold_into_batch(self):
        reference = b"shared reference across the whole batch " * 60
        tasks = [
            FileTask(f"f{index}.bin", reference,
                     reference[: 256 * index] + b"#" + reference[256 * index:])
            for index in range(1, 9)
        ]
        executor = SyncExecutor(workers=2, use_arena=False)
        batch = executor.run(DeltaProbeMethod(), tasks)
        lookups = batch.ref_cache_hits + batch.ref_cache_misses
        assert lookups == len(tasks)
        # Every worker (or the serial parent) builds the shared index at
        # most once; everything after that is a hit.
        assert 1 <= batch.ref_cache_misses <= max(1, batch.workers_used)
        assert batch.ref_cache_hits == lookups - batch.ref_cache_misses

    def test_serial_run_counts_against_parent_cache(self):
        reference = b"serial fallback shares the parent cache " * 60
        tasks = [
            FileTask("a.bin", reference, reference + b"a"),
            FileTask("b.bin", reference, reference + b"b"),
        ]
        executor = SyncExecutor(workers=1)
        batch = executor.run(DeltaProbeMethod(), tasks)
        assert batch.ref_cache_misses == 1
        assert batch.ref_cache_hits == 1
        assert default_reference_cache().stats.lookups == 2
