"""Tests for rsync block signatures."""

from __future__ import annotations

import pytest

from repro.hashing import AdlerRolling
from repro.rsync import compute_signatures
from repro.rsync.signature import signature_wire_bytes


class TestComputeSignatures:
    def test_block_partition(self):
        signatures = compute_signatures(b"a" * 2500, 1000)
        assert [s.length for s in signatures] == [1000, 1000, 500]
        assert [s.index for s in signatures] == [0, 1, 2]

    def test_exact_multiple_has_no_tail(self):
        signatures = compute_signatures(b"a" * 2000, 1000)
        assert [s.length for s in signatures] == [1000, 1000]

    def test_empty_file(self):
        assert compute_signatures(b"", 700) == []

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            compute_signatures(b"abc", 0)

    def test_rolling_matches_adler(self):
        data = b"block content 123456"
        (signature,) = compute_signatures(data, 100)
        assert signature.rolling == AdlerRolling.of(data)

    def test_strong_bytes_width(self):
        (signature,) = compute_signatures(b"data", 10, strong_bytes=4)
        assert len(signature.strong) == 4

    def test_salt_changes_strong_hash(self):
        (plain,) = compute_signatures(b"data", 10, salt=b"")
        (salted,) = compute_signatures(b"data", 10, salt=b"s")
        assert plain.strong != salted.strong
        assert plain.rolling == salted.rolling  # rolling hash is unsalted


class TestWireBytes:
    def test_six_bytes_per_block_default(self):
        """The paper: rsync transmits 6 bytes per block (4 rolling + 2
        strong)."""
        signatures = compute_signatures(b"x" * 7000, 700)
        assert signature_wire_bytes(signatures) == 10 * 6

    def test_custom_strong_width(self):
        signatures = compute_signatures(b"x" * 1400, 700, strong_bytes=8)
        assert signature_wire_bytes(signatures, strong_bytes=8) == 2 * 12
