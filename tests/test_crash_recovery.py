"""End-to-end crash recovery: real SIGKILLs, real restarts, real disks.

These tests run the CLI in a subprocess with the two crash hooks armed:

* ``REPRO_CRASH_AFTER_CHECKPOINTS=N`` — SIGKILL right after the Nth
  durable round checkpoint, i.e. between two protocol rounds;
* ``REPRO_CRASH_AFTER_WRITES=N`` — SIGKILL during the Nth atomic store
  write, after the temp is fsynced but *before* the rename (the worst
  instant for a non-atomic writer).

A rerun with ``--resume`` must salvage the journalled rounds, the
recovery sweep must quarantine the orphaned temporaries, and at no point
may a *visible* file hold torn bytes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.collection import TMP_SUFFIX
from tests.conftest import make_version_pair

SRC = Path(__file__).resolve().parent.parent / "src"


def run_cli(*args, crash_env=None, cwd=None):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_CRASH")}
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if crash_env:
        env.update(crash_env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *map(str, args)],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


@pytest.fixture
def collection_pair(tmp_path):
    """Two multi-round files plus a small one, laid out as directories."""
    old_dir = tmp_path / "old"
    new_dir = tmp_path / "new"
    new_side = {}
    for index, (seed, nbytes) in enumerate([(501, 15000), (502, 12000)]):
        old, new = make_version_pair(seed=seed, nbytes=nbytes, edits=8)
        (old_dir / f"f{index}.bin").parent.mkdir(parents=True, exist_ok=True)
        (old_dir / f"f{index}.bin").write_bytes(old)
        (new_dir / f"f{index}.bin").parent.mkdir(parents=True, exist_ok=True)
        (new_dir / f"f{index}.bin").write_bytes(new)
        new_side[f"f{index}.bin"] = new
    return old_dir, new_dir, new_side


def assert_was_sigkilled(proc):
    assert proc.returncode == -signal.SIGKILL, (
        f"expected SIGKILL, got rc={proc.returncode}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )


class TestCrashBetweenRounds:
    def test_kill_then_resume_salvages_rounds(self, tmp_path,
                                              collection_pair):
        old_dir, new_dir, new_side = collection_pair
        ckpt = tmp_path / "ckpt"
        out = tmp_path / "out"

        # First run: killed after the 4th durable checkpoint.
        proc = run_cli(
            "sync", old_dir, new_dir,
            "--checkpoint-dir", ckpt, "--output", out,
            crash_env={"REPRO_CRASH_AFTER_CHECKPOINTS": "4"},
        )
        assert_was_sigkilled(proc)
        journals = sorted(ckpt.glob("*.ckpt"))
        assert journals, "the crashed run must leave a journal behind"

        # The recovery sweep points at the resumable journals.
        swept = run_cli("recover", out, "--checkpoint-dir", ckpt, "--json")
        assert swept.returncode == 0, swept.stderr
        report = json.loads(swept.stdout)
        assert report["pending_journals"]

        # Second run: --resume picks the session up mid-file.
        proc = run_cli(
            "sync", old_dir, new_dir,
            "--checkpoint-dir", ckpt, "--output", out,
            "--resume", "--json",
        )
        assert proc.returncode == 0, proc.stderr
        run = json.loads(proc.stdout)
        assert run["rounds_salvaged"] >= 1
        assert run["resume_handshake_bits"] > 0

        # The collection is fully and correctly materialised...
        for name, data in new_side.items():
            assert (out / name).read_bytes() == data
        # ...and every journal was committed away.
        assert sorted(ckpt.glob("*.ckpt")) == []

    def test_resume_costs_less_than_restart(self, tmp_path,
                                            collection_pair):
        """The crashed-then-resumed pair of runs transfers fewer total
        bytes (sum of both attempts' new traffic) than crashing and
        restarting from scratch would: the salvaged rounds are not
        re-bought.  We compare the resumed run against a clean run — the
        resumed one must cost at most the handshake more than *finishing*
        a clean run, despite having started over a dead process."""
        old_dir, new_dir, _ = collection_pair
        ckpt = tmp_path / "ckpt"

        clean = run_cli("sync", old_dir, new_dir, "--json")
        clean_total = json.loads(clean.stdout)["total_bytes"]

        proc = run_cli(
            "sync", old_dir, new_dir, "--checkpoint-dir", ckpt,
            crash_env={"REPRO_CRASH_AFTER_CHECKPOINTS": "4"},
        )
        assert_was_sigkilled(proc)
        proc = run_cli(
            "sync", old_dir, new_dir, "--checkpoint-dir", ckpt,
            "--resume", "--json",
        )
        resumed = json.loads(proc.stdout)
        handshake_bytes = resumed["resume_handshake_bits"] // 8 + 2
        assert resumed["rounds_salvaged"] >= 1
        assert resumed["total_bytes"] <= clean_total + handshake_bytes


class TestCrashDuringStoreWrite:
    @pytest.mark.parametrize("nth_write", [1, 2])
    def test_no_torn_visible_file(self, tmp_path, collection_pair,
                                  nth_write):
        old_dir, new_dir, new_side = collection_pair
        out = tmp_path / "out"

        proc = run_cli(
            "sync", old_dir, new_dir, "--output", out,
            crash_env={"REPRO_CRASH_AFTER_WRITES": str(nth_write)},
        )
        assert_was_sigkilled(proc)

        # The interrupted write left its fsynced temporary behind...
        orphans = sorted(out.rglob(f"*{TMP_SUFFIX}"))
        assert len(orphans) == 1
        # ...and every *visible* file is complete, never torn: writes go
        # in sorted order, so the first nth_write-1 files are finished.
        visible = [
            p for p in sorted(out.rglob("*"))
            if p.is_file() and not p.name.endswith(TMP_SUFFIX)
        ]
        assert len(visible) == nth_write - 1
        for path in visible:
            name = str(path.relative_to(out))
            assert path.read_bytes() == new_side[name], (
                f"{name} is torn after the crash"
            )

        # Sweep, then rerun: the replica converges byte-for-byte.
        swept = run_cli("recover", out, "--json")
        report = json.loads(swept.stdout)
        assert len(report["quarantined"]) == 1
        assert sorted(out.rglob(f"*{TMP_SUFFIX}"))[0].parent.name == (
            ".repro-quarantine"
        )

        proc = run_cli("sync", old_dir, new_dir, "--output", out)
        assert proc.returncode == 0, proc.stderr
        for name, data in new_side.items():
            assert (out / name).read_bytes() == data
