"""Tests for the log/binary/record workload families."""

from __future__ import annotations

import zlib

import pytest

from repro.core import synchronize
from repro.exceptions import WorkloadError
from repro.workloads import (
    make_binary_pair,
    make_log_pair,
    make_record_store_pair,
    robustness_suite,
)


class TestLogPair:
    def test_append_only_keeps_prefix(self):
        pair = make_log_pair(seed=1)
        assert pair.new.startswith(pair.old)

    def test_rotation_drops_prefix(self):
        pair = make_log_pair(seed=1, rotate_fraction=0.5)
        assert not pair.new.startswith(pair.old)
        # The kept suffix of the old log appears verbatim in the new one.
        tail = pair.old.rsplit(b"\n", 50)[-1]
        assert tail in pair.new

    def test_deterministic(self):
        assert make_log_pair(seed=3) == make_log_pair(seed=3)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_log_pair(base_lines=0)
        with pytest.raises(WorkloadError):
            make_log_pair(rotate_fraction=1.0)


class TestBinaryPair:
    def test_incompressible(self):
        pair = make_binary_pair(seed=2)
        assert len(zlib.compress(pair.old, 9)) > 0.95 * len(pair.old)

    def test_patches_bounded(self):
        pair = make_binary_pair(seed=2, patch_count=3, patch_size=500)
        differing = sum(1 for a, b in zip(pair.old, pair.new) if a != b)
        assert differing <= 3 * 500
        assert differing > 0

    def test_size_preserved(self):
        pair = make_binary_pair(seed=2)
        assert len(pair.old) == len(pair.new)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_binary_pair(size=0)


class TestRecordStorePair:
    def test_alignment_shifts(self):
        pair = make_record_store_pair(seed=4)
        assert len(pair.old) != len(pair.new)

    def test_most_records_survive(self):
        pair = make_record_store_pair(seed=4)
        old_records = set(pair.old.split(b";\n"))
        new_records = set(pair.new.split(b";\n"))
        survivors = len(old_records & new_records)
        assert survivors > 0.85 * len(old_records)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_record_store_pair(record_count=0)
        with pytest.raises(WorkloadError):
            make_record_store_pair(updated_fraction=1.5)


class TestRobustnessSuite:
    def test_suite_contents(self):
        suite = robustness_suite()
        assert len(suite) == 4
        assert {pair.name for pair in suite} == {
            "app.log", "firmware.bin", "store.db"
        }

    def test_protocol_handles_every_family(self):
        for pair in robustness_suite(seed=10):
            result = synchronize(pair.old, pair.new)
            assert result.reconstructed == pair.new, pair.description

    def test_append_only_is_nearly_free(self):
        """Appending should cost roughly the compressed appended bytes."""
        pair = make_log_pair(seed=5, appended_lines=40)
        result = synchronize(pair.old, pair.new)
        assert result.reconstructed == pair.new
        appended = pair.new[len(pair.old):]
        budget = len(zlib.compress(appended, 9)) + 600
        assert result.total_bytes < budget
