"""Shared fixtures: deterministic file pairs and small workloads."""

from __future__ import annotations

import random

import pytest

from repro.workloads import EditProfile, TextGenerator, mutate


def make_text(seed: int, nbytes: int) -> bytes:
    """Deterministic code-like text of roughly ``nbytes``."""
    generator = TextGenerator(seed)
    return generator.generate(nbytes, random.Random(seed))


def make_version_pair(
    seed: int, nbytes: int = 20000, edits: int = 8
) -> tuple[bytes, bytes]:
    """A deterministic (old, new) pair with clustered, alignment-shifting
    edits — the canonical protocol test input."""
    generator = TextGenerator(seed)
    rng = random.Random(seed ^ 0xA5A5)
    old = generator.generate(nbytes, rng)
    profile = EditProfile(
        edit_count=edits,
        cluster_count=max(1, edits // 3),
        cluster_spread=180.0,
        min_size=4,
        max_size=150,
    )
    new = mutate(old, rng, profile, content=generator.snippet)
    return old, new


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def text_pair() -> tuple[bytes, bytes]:
    return make_version_pair(seed=42)


@pytest.fixture
def small_pair() -> tuple[bytes, bytes]:
    return make_version_pair(seed=7, nbytes=4000, edits=3)


@pytest.fixture
def random_bytes(rng: random.Random) -> bytes:
    return bytes(rng.randrange(256) for _ in range(5000))
