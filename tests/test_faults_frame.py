"""Checksummed framing: every mangling must be detected, never delivered."""

from __future__ import annotations

import pytest

from repro.exceptions import FrameCorruptionError, ReproError
from repro.net.frame import FRAME_OVERHEAD, decode_frame, encode_frame


class TestRoundtrip:
    @pytest.mark.parametrize(
        "payload", [b"", b"x", b"hello frame", bytes(range(256)) * 5]
    )
    def test_encode_decode(self, payload):
        assert decode_frame(encode_frame(payload)) == payload

    def test_overhead_is_constant(self):
        assert len(encode_frame(b"abc")) == 3 + FRAME_OVERHEAD
        assert len(encode_frame(b"")) == FRAME_OVERHEAD


class TestCorruptionDetection:
    def test_every_single_bit_flip_detected(self):
        """Exhaustive: no single-bit flip anywhere in the frame — header,
        CRC or payload — slips through."""
        frame = bytearray(encode_frame(b"payload under test"))
        for bit in range(8 * len(frame)):
            mangled = bytearray(frame)
            mangled[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(FrameCorruptionError):
                decode_frame(bytes(mangled))

    def test_truncation_detected(self):
        frame = encode_frame(b"0123456789")
        for cut in range(len(frame)):
            with pytest.raises(FrameCorruptionError):
                decode_frame(frame[:cut])

    def test_extension_detected(self):
        frame = encode_frame(b"abc")
        with pytest.raises(FrameCorruptionError):
            decode_frame(frame + b"\x00")

    def test_garbage_rejected(self):
        with pytest.raises(FrameCorruptionError):
            decode_frame(b"\xff" * 32)

    def test_error_is_a_repro_error(self):
        assert issubclass(FrameCorruptionError, ReproError)
