"""Tests for the repeat-with-different-hashes recovery path."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.exceptions import ConfigError
from tests.conftest import make_version_pair


class TestCollisionRetry:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(collision_retries=-1)

    def test_retry_with_fresh_seed_recovers(self, monkeypatch):
        """Sabotage the delta only under the original hash seed: one
        retry with the bumped seed must succeed without a full transfer."""
        from repro.core import server as server_module

        old, new = make_version_pair(seed=920, nbytes=10000)
        original = server_module.ServerSession.emit_delta

        def sabotage(self):
            delta = original(self)
            if self.hasher.seed == 1 and len(delta) > 4:
                corrupted = bytearray(delta)
                corrupted[len(corrupted) // 2] ^= 0xFF
                return bytes(corrupted)
            return delta

        monkeypatch.setattr(server_module.ServerSession, "emit_delta", sabotage)
        result = synchronize(
            old, new, ProtocolConfig(collision_retries=1, hash_seed=1)
        )
        assert result.reconstructed == new
        assert result.used_fallback  # the retry path was taken
        # No compressed-full-file transfer happened.
        assert result.stats.bytes_in_phase("fallback") < 16

    def test_persistent_failure_still_falls_back_to_full(self, monkeypatch):
        from repro.core import server as server_module

        old, new = make_version_pair(seed=921, nbytes=8000)
        original = server_module.ServerSession.emit_delta

        def always_sabotage(self):
            delta = original(self)
            if len(delta) > 4:
                corrupted = bytearray(delta)
                corrupted[-2] ^= 0xFF
                return bytes(corrupted)
            return delta

        monkeypatch.setattr(
            server_module.ServerSession, "emit_delta", always_sabotage
        )
        result = synchronize(
            old, new, ProtocolConfig(collision_retries=2)
        )
        assert result.reconstructed == new
        assert result.used_fallback
        # The full transfer had to happen in the end.
        assert result.stats.bytes_in_phase("fallback") > 100

    def test_retry_cost_double_counted_honestly(self, monkeypatch):
        from repro.core import server as server_module

        old, new = make_version_pair(seed=922, nbytes=10000)
        original = server_module.ServerSession.emit_delta

        def sabotage(self):
            delta = original(self)
            if self.hasher.seed == 1 and len(delta) > 4:
                corrupted = bytearray(delta)
                corrupted[0] ^= 0x01 if delta[0] != 0x01 else 0x02
                return bytes(corrupted)
            return delta

        monkeypatch.setattr(server_module.ServerSession, "emit_delta", sabotage)
        clean = synchronize(old, new, ProtocolConfig(hash_seed=2))
        retried = synchronize(
            old, new, ProtocolConfig(collision_retries=1, hash_seed=1)
        )
        assert retried.reconstructed == new
        # Two protocol passes cost roughly twice one pass.
        assert retried.total_bytes > 1.5 * clean.total_bytes
