"""Parallel collection sync must be byte-identical to the serial path."""

from __future__ import annotations

import pytest

from repro.bench import OursMethod, ZdeltaMethod
from repro.collection import sync_collection
from repro.syncmethod import MethodOutcome, SyncMethod
from repro.workloads import emacs_like, gcc_like, make_web_collection


def _gcc_pair():
    tree = gcc_like(scale=0.05, seed=11)
    return tree.old, tree.new


def _emacs_pair():
    tree = emacs_like(scale=0.05, seed=12)
    return tree.old, tree.new


def _web_pair():
    collection = make_web_collection(page_count=12, days=(0, 1), seed=13)
    return collection.snapshot(0), collection.snapshot(1)


def _edge_pair():
    """Empty files, emptied files, filled files, adds and removals."""
    old = {
        "empty-stays": b"",
        "empty-fills": b"",
        "content-empties": b"some bytes that vanish" * 40,
        "content-changes": b"alpha beta gamma " * 200,
        "content-stays": b"stable " * 100,
        "removed": b"goes away",
    }
    new = {
        "empty-stays": b"",
        "empty-fills": b"suddenly present " * 50,
        "content-empties": b"",
        "content-changes": b"alpha beta delta " * 200,
        "content-stays": b"stable " * 100,
        "added-empty": b"",
        "added-full": b"brand new data " * 30,
    }
    return old, new


PAIRS = {
    "gcc": _gcc_pair,
    "emacs": _emacs_pair,
    "web": _web_pair,
    "edges": _edge_pair,
}


def _assert_reports_identical(serial, parallel):
    assert parallel.summary() == serial.summary()
    assert parallel.total_bytes == serial.total_bytes
    assert parallel.reconstructed == serial.reconstructed
    assert list(parallel.per_file) == list(serial.per_file)
    for name, outcome in serial.per_file.items():
        other = parallel.per_file[name]
        assert other.total_bytes == outcome.total_bytes
        assert other.client_to_server == outcome.client_to_server
        assert other.server_to_client == outcome.server_to_client
        assert other.breakdown == outcome.breakdown


@pytest.mark.parametrize("workload", sorted(PAIRS))
def test_parallel_matches_serial_ours(workload):
    old, new = PAIRS[workload]()
    serial = sync_collection(old, new, OursMethod(), workers=1)
    parallel = sync_collection(old, new, OursMethod(), workers=2)
    assert parallel.workers == 2 or len(serial.diff.changed) <= 1
    _assert_reports_identical(serial, parallel)


@pytest.mark.parametrize("workload", sorted(PAIRS))
def test_parallel_matches_serial_zdelta(workload):
    old, new = PAIRS[workload]()
    serial = sync_collection(old, new, ZdeltaMethod(), workers=1)
    parallel = sync_collection(old, new, ZdeltaMethod(), workers=2)
    _assert_reports_identical(serial, parallel)


class _UnpicklableOurs(SyncMethod):
    """Forces the executor's serial fallback while workers=2 is requested."""

    name = "ours-unpicklable"

    def __init__(self) -> None:
        self._inner = OursMethod()
        self._closure = lambda: None  # defeats pickling

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        return self._inner.sync_file(old, new)


def test_fallback_path_matches_serial():
    old, new = _edge_pair()
    serial = sync_collection(old, new, OursMethod(), workers=1)
    fallback = sync_collection(old, new, _UnpicklableOurs(), workers=2)
    assert fallback.workers == 1  # pool was refused, serial fallback ran
    assert fallback.summary() == serial.summary()
    assert fallback.reconstructed == serial.reconstructed


def test_workers_none_resolves_to_cpu_count():
    import os

    old, new = _edge_pair()
    report = sync_collection(old, new, ZdeltaMethod(), workers=None)
    assert report.workers >= 1
    assert report.workers <= max(os.cpu_count() or 1, 1)


def test_repeated_sync_hits_hash_index_cache():
    from repro.parallel import reset_default_cache

    old, new = PAIRS["gcc"]()
    reset_default_cache()
    first = sync_collection(old, new, OursMethod(), workers=1)
    second = sync_collection(old, new, OursMethod(), workers=1)
    assert first.cache_misses > 0
    assert second.cache_hits > 0
    assert second.cache_misses == 0  # identical data: everything reused
