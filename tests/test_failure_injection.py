"""Failure injection: the protocol must stay correct under engineered
hash collisions, absurd configurations, and adversarial content."""

from __future__ import annotations

import random

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.rsync import rsync_sync
from tests.conftest import make_version_pair


class TestLowEntropyHashes:
    """Tiny hash widths force false candidates; verification and the
    whole-file checksum must keep the outcome correct."""

    @pytest.mark.parametrize("global_bits", [4, 6, 8])
    def test_tiny_global_hashes(self, global_bits):
        old, new = make_version_pair(seed=200, nbytes=15000, edits=10)
        config = ProtocolConfig(global_hash_bits=global_bits)
        result = synchronize(old, new, config)
        assert result.reconstructed == new

    def test_one_bit_continuation_hashes(self):
        old, new = make_version_pair(seed=201, nbytes=15000, edits=10)
        config = ProtocolConfig(continuation_hash_bits=1)
        result = synchronize(old, new, config)
        assert result.reconstructed == new

    def test_weak_verification_still_correct(self):
        """'light' verification with tiny candidate hashes lets some false
        matches through to the reference — the fingerprint check plus
        fallback must absorb that."""
        rng = random.Random(4)
        # Low-entropy content maximises collisions.
        old = bytes(rng.randrange(3) for _ in range(20000))
        new = bytearray(old)
        for _ in range(5):
            position = rng.randrange(len(new) - 100)
            new[position : position + 50] = bytes(
                rng.randrange(3) for _ in range(50)
            )
        new = bytes(new)
        config = ProtocolConfig(global_hash_bits=4, verification="light")
        result = synchronize(old, new, config)
        assert result.reconstructed == new


class TestAdversarialContent:
    def test_all_zero_files(self):
        old = b"\x00" * 50000
        new = b"\x00" * 49000 + b"\x01" * 1000
        result = synchronize(old, new)
        assert result.reconstructed == new

    def test_periodic_content(self):
        """Periodic data creates massive numbers of candidate positions."""
        old = b"abcd" * 10000
        new = b"abcd" * 9000 + b"dcba" * 1000
        result = synchronize(old, new)
        assert result.reconstructed == new

    def test_new_file_repeats_old_fragment_many_times(self):
        old, _ = make_version_pair(seed=202, nbytes=4000)
        new = old[100:400] * 50
        result = synchronize(old, new)
        assert result.reconstructed == new

    def test_rsync_periodic_content(self):
        old = b"xy" * 20000
        new = b"xy" * 19000 + b"yx" * 500
        result = rsync_sync(old, new)
        assert result.reconstructed == new


class TestFallbackPath:
    def test_fallback_produces_correct_file_and_is_accounted(self, monkeypatch):
        """Corrupt the delta in flight: the client must detect it via the
        fingerprint and fall back to a (accounted) full transfer."""
        from repro.core import protocol as protocol_module

        old, new = make_version_pair(seed=203, nbytes=8000)
        original_emit = protocol_module.ServerSession.emit_delta

        def corrupted_emit(self):
            delta = original_emit(self)
            if len(delta) < 4:
                return delta
            corrupted = bytearray(delta)
            corrupted[len(corrupted) // 2] ^= 0xFF
            return bytes(corrupted)

        monkeypatch.setattr(
            protocol_module.ServerSession, "emit_delta", corrupted_emit
        )
        result = synchronize(old, new)
        assert result.reconstructed == new
        assert result.used_fallback
        assert result.stats.bytes_in_phase("fallback") > 0

    def test_unchanged_detection_cannot_be_fooled_by_length(self):
        """Same length, different content: must synchronise, not skip."""
        old = b"A" * 1000
        new = b"B" * 1000
        result = synchronize(old, new)
        assert not result.unchanged
        assert result.reconstructed == new
