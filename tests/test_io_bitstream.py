"""Unit and property tests for the bit-packed writer/reader."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_produces_empty_payload(self):
        assert BitWriter().getvalue() == b""
        assert len(BitWriter()) == 0

    def test_single_bit(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x01"
        assert writer.bit_length == 1

    def test_width_zero_writes_nothing(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert len(writer) == 0

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(8, 3)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(0, -1)

    def test_bit_length_tracks_partial_bytes(self):
        writer = BitWriter()
        writer.write(5, 3)
        assert writer.bit_length == 3
        writer.write(1, 13)
        assert writer.bit_length == 16
        assert len(writer.getvalue()) == 2

    def test_final_byte_zero_padded(self):
        writer = BitWriter()
        writer.write(1, 1)
        (byte,) = writer.getvalue()
        assert byte == 1  # high bits padded with zeros

    def test_write_bytes_roundtrip(self):
        writer = BitWriter()
        writer.write_bytes(b"abc")
        reader = BitReader(writer.getvalue())
        assert reader.read_bytes(3) == b"abc"

    def test_write_bits_bulk(self):
        writer = BitWriter()
        writer.write_bits([1, 2, 3], 4)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3, 4) == [1, 2, 3]


class TestBitReader:
    def test_read_past_end_raises(self):
        reader = BitReader(b"\x01")
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_remaining_bits(self):
        reader = BitReader(b"\xff\xff")
        assert reader.remaining_bits == 16
        reader.read(5)
        assert reader.remaining_bits == 11

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").read(-2)

    def test_read_bit(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(4)] == [1, 0, 1, 1]


class TestVarintInBitstream:
    def test_small_value_single_byte(self):
        writer = BitWriter()
        writer.write_uvarint(5)
        assert len(writer.getvalue()) == 1

    def test_large_value_roundtrip(self):
        writer = BitWriter()
        writer.write_uvarint(2**40 + 17)
        assert BitReader(writer.getvalue()).read_uvarint() == 2**40 + 17

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_uvarint(-1)

    def test_unaligned_varint(self):
        writer = BitWriter()
        writer.write(3, 3)
        writer.write_uvarint(300)
        reader = BitReader(writer.getvalue())
        assert reader.read(3) == 3
        assert reader.read_uvarint() == 300


@given(
    st.lists(
        st.integers(min_value=1, max_value=32).flatmap(
            lambda w: st.tuples(
                st.integers(min_value=0, max_value=(1 << w) - 1), st.just(w)
            )
        ),
        max_size=200,
    )
)
def test_arbitrary_sequences_roundtrip(items):
    """Any sequence of (value, width) pairs survives a write/read cycle."""
    writer = BitWriter()
    for value, width in items:
        writer.write(value, width)
    reader = BitReader(writer.getvalue())
    for value, width in items:
        assert reader.read(width) == value


@given(st.lists(st.integers(min_value=0, max_value=2**63 - 1), max_size=50))
def test_varint_sequences_roundtrip(values):
    writer = BitWriter()
    for value in values:
        writer.write_uvarint(value)
    reader = BitReader(writer.getvalue())
    for value in values:
        assert reader.read_uvarint() == value


@given(st.binary(max_size=300))
def test_bytes_roundtrip(data):
    writer = BitWriter()
    writer.write_bytes(data)
    assert BitReader(writer.getvalue()).read_bytes(len(data)) == data
