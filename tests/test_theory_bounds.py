"""Tests for the communication bounds — including the bracket check that
the measured protocol sits between lower bound and upper bound."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.theory import (
    exchange_lower_bound_bits,
    multiround_upper_bound_bits,
    optimal_rsync_block_size,
    rsync_cost_model_bits,
)


class TestLowerBound:
    def test_zero_edits_zero_bits(self):
        assert exchange_lower_bound_bits(1000, 0) == 0.0

    def test_monotone_in_edits(self):
        values = [exchange_lower_bound_bits(10000, k) for k in (1, 5, 20, 100)]
        assert values == sorted(values)

    def test_monotone_in_length(self):
        assert exchange_lower_bound_bits(100000, 10) > exchange_lower_bound_bits(
            1000, 10
        )

    def test_order_of_magnitude(self):
        # k edits need ~ k*(log2(n) + log2(sigma)) bits.
        bits = exchange_lower_bound_bits(2**20, 10)
        assert 10 * 20 < bits < 10 * 40

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            exchange_lower_bound_bits(-1, 1)
        with pytest.raises(ValueError):
            exchange_lower_bound_bits(1, -1)


class TestRsyncModel:
    def test_tradeoff_shape(self):
        """Cost is U-shaped in block size around the analytic optimum."""
        n, k = 1_000_000, 50
        best = optimal_rsync_block_size(n, k)
        at_best = rsync_cost_model_bits(n, k, best)
        assert rsync_cost_model_bits(n, k, best * 8) > at_best
        assert rsync_cost_model_bits(n, k, max(1, best // 8)) > at_best

    def test_optimum_decreases_with_edits(self):
        assert optimal_rsync_block_size(1_000_000, 1000) < (
            optimal_rsync_block_size(1_000_000, 10)
        )

    def test_optimum_formula(self):
        n, k, f, c = 1_000_000, 100, 48, 3.0
        expected = round(math.sqrt(n * f / (k * c)))
        assert optimal_rsync_block_size(n, k, f, c) == expected

    def test_degenerate_cases(self):
        assert optimal_rsync_block_size(1000, 0) == 1000
        assert optimal_rsync_block_size(0, 10) == 1
        with pytest.raises(ValueError):
            rsync_cost_model_bits(100, 1, 0)


class TestMultiroundBound:
    def test_zero_cases(self):
        assert multiround_upper_bound_bits(0, 5) == 0.0
        assert multiround_upper_bound_bits(1000, 0) == 0.0

    def test_scales_near_linearly_in_k(self):
        one = multiround_upper_bound_bits(2**20, 1)
        fifty = multiround_upper_bound_bits(2**20, 50)
        assert 20 * one < fifty < 80 * one

    def test_better_than_rsync_model_for_few_edits(self):
        """The asymptotic motivation: k log(n/k) log n beats n/b * f + k*b
        once n >> k (at the rsync-optimal block size)."""
        n, k = 10_000_000, 10
        rsync_bits = rsync_cost_model_bits(
            n, k, optimal_rsync_block_size(n, k)
        )
        assert multiround_upper_bound_bits(n, k) < rsync_bits


class TestMeasuredBracket:
    """The implementation must live between the reference curves."""

    def make_pair(self, n: int, k: int, seed: int) -> tuple[bytes, bytes]:
        rng = random.Random(seed)
        old = bytes(rng.randrange(256) for _ in range(n))
        new = bytearray(old)
        positions = sorted(
            rng.sample(range(n), k), reverse=True
        )
        for position in positions:
            new[position] = (new[position] + 1) % 256
        return old, bytes(new)

    @pytest.mark.parametrize("k", [2, 8, 32])
    def test_protocol_between_bounds(self, k):
        n = 32768
        old, new = self.make_pair(n, k, seed=k)
        result = synchronize(
            old, new,
            ProtocolConfig(min_block_size=32, continuation_min_block_size=8),
        )
        assert result.reconstructed == new
        measured_bits = result.total_bytes * 8

        lower = exchange_lower_bound_bits(n, k)
        upper = multiround_upper_bound_bits(n, k)
        assert measured_bits > lower
        # Allow a generous constant over the asymptotic upper bound
        # (handshake, fingerprints, delta framing, incompressible
        # replacement bytes).
        assert measured_bits < 12 * upper + 3000 * 8
