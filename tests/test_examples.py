"""Every example script must run clean and print its headline output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_examples_directory_complete(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 3

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "our protocol" in out
        assert "rsync (default)" in out
        assert "zdelta (local)" in out

    def test_web_mirror(self):
        out = run_example("web_mirror.py")
        assert "every 1d" in out
        assert "every 7d" in out
        assert "ours" in out

    def test_source_tree_release(self):
        out = run_example("source_tree_release.py")
        assert "Updating the mirror" in out
        assert "s2c/delta" in out

    def test_tuning_block_sizes(self):
        out = run_example("tuning_block_sizes.py")
        assert "Minimum block size trade-off" in out
        assert "best with continuation" in out

    def test_adaptive_link(self):
        out = run_example("adaptive_link.py")
        assert "Adaptive parameter selection" in out
        assert "satellite" in out

    def test_protocol_trace(self):
        out = run_example("protocol_trace.py")
        assert "round" in out
        assert "harvest rate" in out

    def test_inplace_mobile(self):
        out = run_example("inplace_mobile.py")
        assert "cycle-breaking literals" in out
