"""Tests for the gcc/emacs-like source-tree workloads."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import emacs_like, gcc_like
from repro.workloads.source_tree import SourceTreeProfile, make_source_tree


class TestGenerated:
    @pytest.fixture(scope="class")
    def tree(self):
        return gcc_like(scale=0.1, seed=0)

    def test_deterministic(self, tree):
        again = gcc_like(scale=0.1, seed=0)
        assert tree.old == again.old
        assert tree.new == again.new

    def test_file_counts(self, tree):
        assert len(tree.old) == 25
        # New release: some removed, some added.
        assert abs(len(tree.new) - len(tree.old)) <= 3

    def test_common_files_mix_of_changed_and_unchanged(self, tree):
        common = tree.common_names()
        changed = sum(1 for n in common if tree.old[n] != tree.new[n])
        unchanged = len(common) - changed
        assert changed > 0
        assert unchanged > 0

    def test_sizes_reported(self, tree):
        assert tree.old_bytes == sum(len(v) for v in tree.old.values())
        assert tree.old_bytes > 25 * 256

    def test_added_and_removed_files_exist(self):
        tree = gcc_like(scale=0.5, seed=1)
        assert set(tree.new) - set(tree.old)
        assert set(tree.old) - set(tree.new)


class TestPresets:
    def test_emacs_changes_less_than_gcc(self):
        gcc = gcc_like(scale=0.2, seed=3)
        emacs = emacs_like(scale=0.2, seed=3)

        def changed_fraction(tree):
            common = tree.common_names()
            return sum(1 for n in common if tree.old[n] != tree.new[n]) / len(common)

        assert changed_fraction(emacs) < changed_fraction(gcc)

    def test_scale_controls_file_count(self):
        small = gcc_like(scale=0.1, seed=0)
        large = gcc_like(scale=0.3, seed=0)
        assert len(large.old) > len(small.old)

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            gcc_like(scale=0)
        with pytest.raises(WorkloadError):
            emacs_like(scale=-1)


class TestProfileValidation:
    def test_fractions_must_fit(self):
        with pytest.raises(WorkloadError):
            SourceTreeProfile(
                name="bad",
                file_count=10,
                unchanged_fraction=0.8,
                lightly_edited_fraction=0.5,
            )

    def test_zero_files_rejected(self):
        with pytest.raises(WorkloadError):
            SourceTreeProfile(name="bad", file_count=0)

    def test_custom_profile_generates(self):
        profile = SourceTreeProfile(
            name="tiny",
            file_count=5,
            mean_file_size=1024,
            unchanged_fraction=0.2,
            lightly_edited_fraction=0.6,
            heavy_rewrite_fraction=0.2,
            added_fraction=0.0,
            removed_fraction=0.0,
        )
        tree = make_source_tree(profile, seed=9)
        assert len(tree.old) == 5
        assert set(tree.old) == set(tree.new)
