"""Tests for boundary refinement (searching-with-liars at match edges)."""

from __future__ import annotations

import random

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.core.refine import _gap_searches
from repro.exceptions import ConfigError
from tests.conftest import make_version_pair


def coarse(refine: bool, **overrides) -> ProtocolConfig:
    return ProtocolConfig(
        min_block_size=256,
        continuation_min_block_size=None,
        refine_boundaries=refine,
        **overrides,
    )


class TestGapSearches:
    def test_no_regions_no_searches(self):
        assert _gap_searches([], 1000) == []

    def test_fully_covered_no_searches(self):
        assert _gap_searches([(0, 1000)], 1000) == []

    def test_interior_gap_gets_both_edges(self):
        searches = _gap_searches([(0, 100), (200, 100)], 300)
        assert len(searches) == 2
        left = next(s for s in searches if s.is_left)
        right = next(s for s in searches if not s.is_left)
        assert left.anchor == 100 and left.limit == 50
        assert right.anchor == 200 and right.limit == 50

    def test_leading_gap_right_edge_only(self):
        searches = _gap_searches([(100, 100)], 200)
        assert len(searches) == 1
        assert not searches[0].is_left
        assert searches[0].anchor == 100
        assert searches[0].limit == 100

    def test_trailing_gap_left_edge_only(self):
        searches = _gap_searches([(0, 100)], 250)
        assert len(searches) == 1
        assert searches[0].is_left
        assert searches[0].anchor == 100
        assert searches[0].limit == 150

    def test_adjacent_regions_no_gap(self):
        assert _gap_searches([(0, 100), (100, 100)], 200) == []

    def test_limits_partition_gap(self):
        searches = _gap_searches([(0, 64), (191, 64)], 255)
        assert sum(s.limit for s in searches) == 127


class TestRefinementEffect:
    def test_reconstruction_still_exact(self):
        old, new = make_version_pair(seed=910, nbytes=40000, edits=10)
        result = synchronize(old, new, coarse(refine=True))
        assert result.reconstructed == new

    def test_coverage_improves(self):
        old, new = make_version_pair(seed=911, nbytes=60000, edits=10)
        base = synchronize(old, new, coarse(refine=False))
        refined = synchronize(old, new, coarse(refine=True))
        assert refined.known_fraction >= base.known_fraction

    def test_delta_shrinks(self):
        old, new = make_version_pair(seed=912, nbytes=60000, edits=12)
        base = synchronize(old, new, coarse(refine=False))
        refined = synchronize(old, new, coarse(refine=True))
        assert refined.delta_bytes <= base.delta_bytes

    def test_no_matches_no_refinement_cost(self):
        rng = random.Random(0)
        old = bytes(rng.randrange(256) for _ in range(8000))
        new = bytes(rng.randrange(256) for _ in range(8000))
        result = synchronize(old, new, coarse(refine=True))
        assert result.reconstructed == new

    def test_identical_files_skip_refinement(self):
        data = b"same " * 4000
        result = synchronize(data, data, coarse(refine=True))
        assert result.unchanged

    def test_tiny_probe_hashes_still_correct(self):
        """1-bit probes lie constantly; confirmation + fingerprint keep
        the outcome exact."""
        old, new = make_version_pair(seed=913, nbytes=30000, edits=8)
        config = coarse(refine=True, refinement_hash_bits=1)
        result = synchronize(old, new, config)
        assert result.reconstructed == new

    def test_all_strategies_compose_with_refinement(self):
        old, new = make_version_pair(seed=914, nbytes=20000, edits=6)
        for strategy in ("trivial", "group2", "group3"):
            config = ProtocolConfig(
                refine_boundaries=True, verification=strategy
            )
            assert synchronize(old, new, config).reconstructed == new


class TestConfigValidation:
    def test_bad_probe_bits(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(refinement_hash_bits=0)

    def test_bad_confirm_bits(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(refinement_confirm_bits=2)
