"""Tests for semantic fault injection: forced collisions and bit rot."""

from __future__ import annotations

import random
import zlib

import pytest

from repro.hashing import file_fingerprint
from repro.multiround.protocol import multiround_rsync_sync
from repro.net.chaos import BitRotPlan
from repro.net.faults import CollisionFaultPlan, FaultKind, FaultPlan
from repro.rsync import rsync_sync
from tests.conftest import make_version_pair


@pytest.fixture
def pair():
    return make_version_pair(seed=81, nbytes=48_000)


class TestCollisionFaultPlan:
    def test_base_plan_refuses_collide(self):
        with pytest.raises(ValueError):
            FaultPlan().collide(b"payload", "delta")

    def test_rsync_delta_is_mutated_hashes_preserved(self, pair):
        """The poisoned payload keeps its framing, fingerprint prefix and
        compressed shape — only decoded content changes."""
        old, new = pair
        plan = CollisionFaultPlan(seed=4)
        result = rsync_sync(old, new, channel=plan.channel(), repair=False)
        assert plan.injected[FaultKind.COLLIDE] == 1
        assert result.collisions_detected == 1
        # Detected by the whole-file fingerprint, answered by fallback.
        assert result.used_fallback
        assert result.reconstructed == new

    def test_multiround_delta_is_mutated(self, pair):
        old, new = pair
        plan = CollisionFaultPlan(seed=4)
        config_kwargs = {}
        result = multiround_rsync_sync(
            old, new, channel=plan.channel(), **config_kwargs
        )
        assert plan.injected[FaultKind.COLLIDE] == 1
        assert result.collisions_detected == 1
        assert result.reconstructed == new

    def test_deterministic_per_seed(self, pair):
        old, new = pair
        logs = []
        for _ in range(2):
            plan = CollisionFaultPlan(seed=9)
            rsync_sync(old, new, channel=plan.channel(), repair=False)
            logs.append(list(plan.fault_log))
        assert logs[0] == logs[1]
        different = CollisionFaultPlan(seed=10)
        rsync_sync(old, new, channel=different.channel(), repair=False)
        # Same victim send, but the seeded mutation differs.
        assert different.fault_log != []

    def test_budget_respected(self, pair):
        old, new = pair
        plan = CollisionFaultPlan(seed=4, max_collisions=0)
        result = rsync_sync(old, new, channel=plan.channel())
        assert plan.injected[FaultKind.COLLIDE] == 0
        assert result.collisions_detected == 0
        assert result.reconstructed == new

    def test_skip_deltas_selects_a_later_victim(self, pair):
        old, new = pair
        plan = CollisionFaultPlan(seed=4, skip_deltas=50)
        result = rsync_sync(old, new, channel=plan.channel())
        # Only one delta send crosses this session: skipping it means
        # no collision at all.
        assert plan.injected[FaultKind.COLLIDE] == 0
        assert result.collisions_detected == 0

    def test_unparseable_payload_passes_through_unrecorded(self):
        plan = CollisionFaultPlan(seed=1)
        for payload in (b"", b"not zlib at all", zlib.compress(b"\xff\x00")):
            assert plan.collide(payload, "delta") == payload
        assert plan.injected[FaultKind.COLLIDE] == 0
        assert plan.fault_log == []

    def test_wrong_phase_untouched(self):
        plan = CollisionFaultPlan(seed=1)
        assert plan.next_fault("signature") is None
        assert plan.next_fault("fingerprint") is None

    def test_classic_rates_still_apply(self, pair):
        """Probabilistic corruption composes with the forced collision."""
        old, new = pair
        plan = CollisionFaultPlan(seed=2, corrupt_rate=1.0)
        fault = plan.next_fault("signature")
        assert fault is FaultKind.CORRUPT


class TestBitRotPlan:
    @pytest.fixture
    def store_dir(self, tmp_path):
        rng = random.Random(11)
        for i in range(6):
            sub = tmp_path / ("deep" if i % 2 else ".")
            sub.mkdir(exist_ok=True)
            (sub / f"f{i}.bin").write_bytes(rng.randbytes(3000))
        return tmp_path

    def test_validation(self):
        with pytest.raises(ValueError):
            BitRotPlan(files_affected=0)
        with pytest.raises(ValueError):
            BitRotPlan(flips_per_file=0)

    def test_rot_is_deterministic_and_logged(self, store_dir):
        baseline = {
            p.name: p.read_bytes() for p in store_dir.rglob("*.bin")
        }
        plan = BitRotPlan(seed=3, files_affected=2, flips_per_file=2)
        victims = plan.apply(store_dir)
        assert len(victims) == 2
        assert len(plan.rot_log) == 4
        replay = BitRotPlan(seed=3, files_affected=2, flips_per_file=2)
        # Rotting an identical tree rots the identical bits.
        assert replay.apply(store_dir) == victims
        for name, offset, bit in plan.rot_log:
            rotted = (store_dir / name).read_bytes()
            # Two applications of the same flip cancel out...
            assert rotted[offset] == baseline[(store_dir / name).name][offset]
        # ...which the second plan's log confirms bit-for-bit.
        assert replay.rot_log == plan.rot_log

    def test_single_flip_changes_fingerprint(self, store_dir):
        plan = BitRotPlan(seed=5)
        (victim,) = plan.apply(store_dir)
        before_rot = BitRotPlan(seed=5)  # same victim choice
        data = (store_dir / victim).read_bytes()
        flipped = bytearray(data)
        name, offset, bit = plan.rot_log[0]
        flipped[offset] ^= 1 << bit
        assert file_fingerprint(data) != file_fingerprint(bytes(flipped))

    def test_quarantine_tmp_and_empty_excluded(self, tmp_path):
        (tmp_path / "real.bin").write_bytes(b"x" * 100)
        (tmp_path / "empty.bin").write_bytes(b"")
        (tmp_path / "ghost.repro.tmp").write_bytes(b"y" * 100)
        qdir = tmp_path / ".repro-quarantine"
        qdir.mkdir()
        (qdir / "evidence").write_bytes(b"z" * 100)
        plan = BitRotPlan(seed=0, files_affected=10)
        assert plan.apply(tmp_path) == ["real.bin"]

    def test_names_restricts_pool(self, store_dir):
        plan = BitRotPlan(seed=0, files_affected=10)
        victims = plan.apply(store_dir, names=["f0.bin"])
        assert victims == ["f0.bin"]

    def test_empty_pool_is_a_noop(self, tmp_path):
        assert BitRotPlan(seed=0).apply(tmp_path) == []
