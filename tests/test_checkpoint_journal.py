"""Checkpoint journal: record formats, durability, torn-tail tolerance."""

from __future__ import annotations

import pytest

from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction, TransferStats
from repro.resilience import (
    CheckpointStore,
    RoundCheckpoint,
    SessionIdentity,
    SessionJournal,
    config_digest,
)
from repro.resilience.checkpoint import (
    _KIND_COMMIT,
    _encode_record,
    CheckpointFormatError,
)


def make_identity(tag: bytes = b"a") -> SessionIdentity:
    return SessionIdentity(
        protocol="ours",
        old_fingerprint=tag * 16,
        new_fingerprint=b"b" * 16,
        config_digest=b"c" * 16,
    )


def make_stats() -> TransferStats:
    channel = SimulatedChannel()
    channel.send(Direction.CLIENT_TO_SERVER, b"x" * 10, "map", bits=77)
    channel.send(Direction.SERVER_TO_CLIENT, b"y" * 5, "delta", bits=33)
    return channel.stats


class TestRecords:
    def test_identity_roundtrip(self):
        identity = make_identity()
        assert SessionIdentity.decode(identity.encode()) == identity

    def test_checkpoint_roundtrip(self):
        checkpoint = RoundCheckpoint.at_boundary(3, b"state", make_stats())
        again = RoundCheckpoint.decode(checkpoint.encode())
        assert again == checkpoint
        assert again.digest() == checkpoint.digest()

    def test_byte_accounting_matches_stats(self):
        stats = make_stats()
        checkpoint = RoundCheckpoint.at_boundary(1, b"", stats)
        assert checkpoint.total_bytes == stats.total_bytes
        assert (
            checkpoint.bytes_in_direction(Direction.CLIENT_TO_SERVER)
            == stats.client_to_server_bytes
        )

    def test_seed_stats_is_exact(self):
        """Seeding a fresh channel reproduces the checkpointed counters."""
        stats = make_stats()
        checkpoint = RoundCheckpoint.at_boundary(2, b"s", stats)
        fresh = SimulatedChannel().stats
        checkpoint.seed_stats(fresh)
        assert fresh.bits_by == stats.bits_by
        assert fresh.messages == stats.messages
        assert fresh.roundtrips == stats.roundtrips

    def test_config_digest_separates_configs(self):
        from repro.core import ProtocolConfig

        base = ProtocolConfig()
        assert config_digest(base) == config_digest(ProtocolConfig())
        assert config_digest(base) != config_digest(
            ProtocolConfig(min_block_size=32)
        )


class TestJournalLifecycle:
    def test_record_requires_open(self):
        journal = SessionJournal(None)
        with pytest.raises(CheckpointFormatError):
            journal.record_round(1, b"", make_stats())

    def test_memory_journal_tracks_head(self):
        journal = SessionJournal(None)
        journal.open(make_identity())
        assert journal.head() is None
        journal.record_round(1, b"one", make_stats())
        journal.record_round(2, b"two", make_stats())
        assert journal.head().round_index == 2
        journal.commit()
        assert journal.head() is None

    def test_reopen_same_identity_keeps_head(self):
        journal = SessionJournal(None)
        journal.open(make_identity())
        journal.record_round(1, b"one", make_stats())
        journal.open(make_identity())  # same identity: no-op
        assert journal.head() is not None

    def test_reopen_different_identity_discards_head(self):
        journal = SessionJournal(None)
        journal.open(make_identity(b"a"))
        journal.record_round(1, b"one", make_stats())
        journal.open(make_identity(b"z"))
        assert journal.head() is None


class TestDurability:
    def test_resume_across_instances(self, tmp_path):
        path = tmp_path / "file.ckpt"
        writer = SessionJournal(path)
        writer.open(make_identity())
        writer.record_round(1, b"one", make_stats())
        saved = writer.record_round(2, b"two", make_stats())
        assert writer.bytes_written == path.stat().st_size

        reader = SessionJournal(path)
        reader.open(make_identity(), resume=True)
        head = reader.head()
        assert head is not None
        assert head.round_index == 2
        assert head.digest() == saved.digest()

    def test_resume_requires_matching_identity(self, tmp_path):
        path = tmp_path / "file.ckpt"
        writer = SessionJournal(path)
        writer.open(make_identity(b"a"))
        writer.record_round(1, b"one", make_stats())

        reader = SessionJournal(path)
        reader.open(make_identity(b"z"), resume=True)
        assert reader.head() is None

    def test_resume_without_flag_starts_fresh(self, tmp_path):
        path = tmp_path / "file.ckpt"
        writer = SessionJournal(path)
        writer.open(make_identity())
        writer.record_round(1, b"one", make_stats())

        reader = SessionJournal(path)
        reader.open(make_identity(), resume=False)
        assert reader.head() is None

    def test_commit_removes_journal(self, tmp_path):
        path = tmp_path / "file.ckpt"
        journal = SessionJournal(path)
        journal.open(make_identity())
        journal.record_round(1, b"one", make_stats())
        assert path.exists()
        journal.commit()
        assert not path.exists()

    def test_commit_record_refuses_resume(self, tmp_path):
        """A leftover COMMIT record means the session finished — there is
        nothing to salvage even though round records precede it."""
        path = tmp_path / "file.ckpt"
        journal = SessionJournal(path)
        journal.open(make_identity())
        journal.record_round(1, b"one", make_stats())
        with open(path, "ab") as handle:
            handle.write(_encode_record(_KIND_COMMIT, b""))

        reader = SessionJournal(path)
        reader.open(make_identity(), resume=True)
        assert reader.head() is None

    @pytest.mark.parametrize("cut", [1, 3, 7])
    def test_torn_tail_falls_back_to_previous_round(self, tmp_path, cut):
        """A crash mid-append tears only the last record; the loader
        resumes from the previous intact round."""
        path = tmp_path / "file.ckpt"
        journal = SessionJournal(path)
        journal.open(make_identity())
        journal.record_round(1, b"one", make_stats())
        intact = path.stat().st_size
        journal.record_round(2, b"two", make_stats())

        raw = path.read_bytes()
        path.write_bytes(raw[: intact + cut])  # tear record 2 mid-frame
        reader = SessionJournal(path)
        reader.open(make_identity(), resume=True)
        assert reader.head().round_index == 1

    def test_corrupt_record_stops_the_scan(self, tmp_path):
        path = tmp_path / "file.ckpt"
        journal = SessionJournal(path)
        journal.open(make_identity())
        journal.record_round(1, b"one", make_stats())
        intact = path.stat().st_size
        journal.record_round(2, b"two", make_stats())

        raw = bytearray(path.read_bytes())
        raw[intact + 9] ^= 0xFF  # flip a byte inside record 2
        path.write_bytes(bytes(raw))
        reader = SessionJournal(path)
        reader.open(make_identity(), resume=True)
        assert reader.head().round_index == 1

    def test_garbage_journal_is_refused(self, tmp_path):
        path = tmp_path / "file.ckpt"
        path.write_bytes(b"not a journal at all")
        reader = SessionJournal(path)
        reader.open(make_identity(), resume=True)
        assert reader.head() is None


class TestCheckpointStore:
    def test_memory_store_yields_unnamed_journals(self):
        store = CheckpointStore.in_memory()
        assert store.journal("x").path is None
        assert store.pending() == []

    def test_names_map_to_distinct_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        paths = {
            store.journal(name).path
            for name in ("src/a.c", "src/b.c", "src_a.c", None, "")
        }
        assert len(paths) == 4  # None and "" share the anonymous journal
        for path in paths:
            assert path.parent == tmp_path
            assert path.suffix == ".ckpt"

    def test_hostile_names_stay_inside_root(self, tmp_path):
        store = CheckpointStore(tmp_path)
        journal = store.journal("../../etc/passwd")
        assert journal.path.parent == tmp_path

    def test_pending_lists_unfinished_journals(self, tmp_path):
        store = CheckpointStore(tmp_path)
        journal = store.journal("a.txt")
        journal.open(make_identity())
        journal.record_round(1, b"one", make_stats())
        assert store.pending() == [journal.path]
        journal.commit()
        assert store.pending() == []

    def test_store_is_picklable(self, tmp_path):
        import pickle

        store = CheckpointStore(tmp_path, resume=True)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.resume is True
