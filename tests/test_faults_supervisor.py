"""RetryPolicy and SyncSupervisor: retry, backoff, and the fallback ladder."""

from __future__ import annotations

import pytest

from repro.bench.methods import (
    FullTransferMethod,
    MultiroundRsyncMethod,
    OursMethod,
    RsyncMethod,
)
from repro.exceptions import ProtocolError, SyncFailedError
from repro.net import FaultPlan
from repro.resilience import RetryPolicy, SyncSupervisor, default_ladder
from repro.syncmethod import MethodOutcome, SyncMethod
from tests.conftest import make_version_pair


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(base_backoff_s=1.0, multiplier=2.0,
                             max_backoff_s=5.0)
        assert policy.backoff_seconds(1) == 1.0
        assert policy.backoff_seconds(2) == 2.0
        assert policy.backoff_seconds(3) == 4.0
        assert policy.backoff_seconds(4) == 5.0  # capped
        assert policy.total_backoff_seconds(3) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=10.0, max_backoff_s=1.0)
        with pytest.raises(ValueError):
            policy = RetryPolicy()
            policy.backoff_seconds(0)


class TestDefaultLadder:
    def test_full_ladder_below_ours(self):
        names = [rung.name for rung in default_ladder(OursMethod())]
        assert names == ["multiround", "rsync", "gzip-full"]

    def test_primary_rung_not_repeated(self):
        names = [rung.name for rung in default_ladder(RsyncMethod())]
        assert names == ["multiround", "gzip-full"]


class TestHappyPath:
    def test_passthrough_without_faults(self):
        """Zero overhead: the supervised outcome is byte-identical to the
        plain method's on a clean channel."""
        old, new = make_version_pair(seed=300, nbytes=12000, edits=6)
        plain = OursMethod().sync_file(old, new)
        supervised = SyncSupervisor(OursMethod()).sync_file(old, new)
        assert supervised.total_bytes == plain.total_bytes
        assert supervised.breakdown == plain.breakdown
        assert supervised.retries == 0
        assert supervised.fallback_method is None
        assert supervised.retransmitted_bytes == 0
        assert supervised.recovery_seconds == 0.0


class TestRecovery:
    def test_retry_cures_a_transient_fault(self):
        """One corrupted map message: the retry succeeds on the same
        rung, and the wasted attempt is charged as retransmission."""
        old, new = make_version_pair(seed=301, nbytes=10000, edits=5)
        plan = FaultPlan(seed=1, corrupt_rate=1.0, max_faults=1,
                         phases=frozenset({"map"}))
        supervisor = SyncSupervisor(OursMethod(), fault_plan=plan)
        outcome = supervisor.sync_file(old, new)
        assert outcome.correct
        assert outcome.retries == 1
        assert outcome.fallback_method is None
        assert outcome.retransmitted_bytes > 0
        assert outcome.recovery_seconds > 0.0

    def test_ladder_descends_to_rsync_when_map_phase_is_dead(self):
        """Permanent corruption of every map-phase message kills ours and
        multiround (both speak 'map'), but rsync's signature protocol
        does not use that phase and gets through."""
        old, new = make_version_pair(seed=302, nbytes=8000, edits=4)
        plan = FaultPlan(seed=2, corrupt_rate=1.0,
                         phases=frozenset({"map"}))
        retry = RetryPolicy(max_attempts=2)
        supervisor = SyncSupervisor(OursMethod(), retry=retry,
                                    fault_plan=plan)
        outcome = supervisor.sync_file(old, new)
        assert outcome.correct
        assert outcome.fallback_method == "rsync"
        # Both map-speaking rungs exhausted their attempts first.
        assert outcome.retries == 2 * retry.max_attempts

    def test_disconnect_mid_protocol_recovers(self):
        old, new = make_version_pair(seed=303, nbytes=9000, edits=5)
        plan = FaultPlan(seed=3, disconnect_after_sends=5)
        outcome = SyncSupervisor(OursMethod(), fault_plan=plan).sync_file(
            old, new
        )
        assert outcome.correct
        assert outcome.retries == 1

    def test_all_rungs_dead_raises_sync_failed(self):
        old, new = make_version_pair(seed=304, nbytes=4000, edits=3)
        plan = FaultPlan(seed=4, corrupt_rate=1.0)  # kills every message
        retry = RetryPolicy(max_attempts=2)
        supervisor = SyncSupervisor(OursMethod(), retry=retry,
                                    fault_plan=plan)
        with pytest.raises(SyncFailedError) as info:
            supervisor.sync_file(old, new)
        # 4 rungs (ours, multiround, rsync, full) x 2 attempts each.
        assert info.value.attempts == 8
        assert len(info.value.history) == 8

    def test_incorrect_outcome_triggers_ladder(self):
        """A method that 'succeeds' with wrong bytes is treated as a
        failure — the integrity check feeds the ladder."""

        class LyingMethod(SyncMethod):
            name = "liar"

            def sync_file(self, old, new):
                return MethodOutcome(total_bytes=1, correct=False)

        old, new = make_version_pair(seed=305, nbytes=3000, edits=2)
        supervisor = SyncSupervisor(
            LyingMethod(), retry=RetryPolicy(max_attempts=1)
        )
        outcome = supervisor.sync_file(old, new)
        assert outcome.correct
        assert outcome.fallback_method == "multiround"
        assert outcome.retries == 1

    def test_protocol_error_is_recoverable(self):
        class FlakyMethod(SyncMethod):
            name = "flaky"

            def __init__(self):
                self.calls = 0

            def sync_file_over(self, old, new, channel):
                self.calls += 1
                if self.calls == 1:
                    raise ProtocolError("transient parse failure")
                return MethodOutcome(total_bytes=7)

            def sync_file(self, old, new):
                return self.sync_file_over(old, new, None)

        outcome = SyncSupervisor(FlakyMethod()).sync_file(b"a", b"b")
        assert outcome.retries == 1
        assert outcome.total_bytes == 7


class TestBackoffAccounting:
    def test_recovery_seconds_include_backoff_and_wasted_transfer(self):
        old, new = make_version_pair(seed=306, nbytes=10000, edits=5)
        plan = FaultPlan(seed=5, corrupt_rate=1.0, max_faults=2,
                         phases=frozenset({"map"}))
        retry = RetryPolicy(base_backoff_s=10.0, multiplier=2.0,
                            max_backoff_s=100.0)
        outcome = SyncSupervisor(
            OursMethod(), retry=retry, fault_plan=plan
        ).sync_file(old, new)
        assert outcome.retries == 2
        # At least the two backoffs (10 + 20s); wasted transfer adds more.
        assert outcome.recovery_seconds > 30.0
