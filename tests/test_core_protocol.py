"""End-to-end tests of the full multi-round protocol."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProtocolConfig, synchronize
from repro.net import SimulatedChannel
from tests.conftest import make_version_pair


class TestCorrectness:
    def test_reconstruction_exact(self, text_pair):
        old, new = text_pair
        result = synchronize(old, new)
        assert result.reconstructed == new

    def test_identical_files_short_circuit(self):
        data = b"stable content " * 500
        result = synchronize(data, data)
        assert result.unchanged
        assert result.reconstructed == data
        # Handshake only: fingerprint + lengths + flag.
        assert result.total_bytes < 48

    def test_empty_server_file(self):
        result = synchronize(b"whatever", b"")
        assert result.reconstructed == b""

    def test_empty_client_file(self):
        result = synchronize(b"", b"fresh content " * 100)
        assert result.reconstructed == b"fresh content " * 100

    def test_single_byte_files(self):
        assert synchronize(b"a", b"b").reconstructed == b"b"

    def test_disjoint_files(self):
        rng = random.Random(5)
        old = bytes(rng.randrange(256) for _ in range(10000))
        new = bytes(rng.randrange(256) for _ in range(10000))
        result = synchronize(old, new)
        assert result.reconstructed == new
        assert result.known_fraction == 0.0

    @given(st.binary(max_size=2000), st.binary(max_size=2000))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_pairs(self, old, new):
        assert synchronize(old, new).reconstructed == new

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_seeded_version_pairs(self, seed):
        old, new = make_version_pair(seed=seed, nbytes=6000, edits=5)
        assert synchronize(old, new).reconstructed == new


class TestConfigurations:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"verification": "trivial"},
            {"verification": "light"},
            {"verification": "group1"},
            {"verification": "group2"},
            {"verification": "group3"},
            {"use_decomposable": False},
            {"continuation_min_block_size": None},
            {"continuation_first": False},
            {"use_local_hashes": True},
            {"delta_coder": "vcdiff"},
            {"min_block_size": 16, "continuation_min_block_size": 8},
            {"min_block_size": 256, "continuation_min_block_size": 256},
            {"start_block_size": 256, "min_block_size": 32},
            {"global_hash_bits": 24},
            {"max_candidate_positions": 1},
        ],
    )
    def test_all_variants_reconstruct(self, text_pair, overrides):
        old, new = text_pair
        config = ProtocolConfig(**overrides)
        result = synchronize(old, new, config)
        assert result.reconstructed == new

    def test_decomposable_saves_server_bits(self, text_pair):
        old, new = text_pair
        with_decomposable = synchronize(old, new, ProtocolConfig())
        without = synchronize(old, new, ProtocolConfig(use_decomposable=False))
        assert (
            with_decomposable.stats.server_to_client_bytes
            < without.stats.server_to_client_bytes
        )

    def test_continuation_extends_below_global_minimum(self):
        """Continuation hashes should improve coverage (smaller delta)
        compared to stopping at the global minimum."""
        old, new = make_version_pair(seed=77, nbytes=40000, edits=25)
        base = ProtocolConfig(min_block_size=128, continuation_min_block_size=None)
        cont = ProtocolConfig(min_block_size=128, continuation_min_block_size=16)
        without = synchronize(old, new, base)
        with_cont = synchronize(old, new, cont)
        assert with_cont.known_fraction >= without.known_fraction

    def test_smaller_min_block_more_matches(self, text_pair):
        old, new = text_pair
        coarse = synchronize(
            old, new, ProtocolConfig(min_block_size=512,
                                     continuation_min_block_size=None)
        )
        fine = synchronize(
            old, new, ProtocolConfig(min_block_size=32,
                                     continuation_min_block_size=None)
        )
        assert fine.known_fraction >= coarse.known_fraction


class TestAccounting:
    def test_phases_present(self, text_pair):
        old, new = text_pair
        result = synchronize(old, new)
        phases = result.stats.phases()
        assert "handshake" in phases
        assert "map" in phases
        assert "delta" in phases

    def test_totals_consistent(self, text_pair):
        old, new = text_pair
        result = synchronize(old, new)
        assert (
            result.stats.client_to_server_bytes
            + result.stats.server_to_client_bytes
            == result.total_bytes
        )

    def test_roundtrips_grow_with_rounds(self, text_pair):
        old, new = text_pair
        result = synchronize(old, new)
        assert result.stats.roundtrips >= result.rounds

    def test_external_channel_collects_stats(self, small_pair):
        old, new = small_pair
        channel = SimulatedChannel()
        result = synchronize(old, new, channel=channel)
        assert channel.stats.total_bytes == result.total_bytes

    def test_map_cost_scales_with_block_granularity(self, text_pair):
        old, new = text_pair
        coarse = synchronize(old, new, ProtocolConfig(min_block_size=512))
        fine = synchronize(old, new, ProtocolConfig(min_block_size=16,
                                                    continuation_min_block_size=16))
        assert fine.map_bytes > coarse.map_bytes


class TestMapQuality:
    def test_high_coverage_on_lightly_edited_file(self):
        old, new = make_version_pair(seed=88, nbytes=50000, edits=4)
        result = synchronize(old, new)
        assert result.known_fraction > 0.9

    def test_matched_blocks_reported(self, text_pair):
        old, new = text_pair
        result = synchronize(old, new)
        assert result.matched_blocks > 0


class TestComparativeShape:
    """The headline claims, at test scale."""

    def test_beats_rsync_default(self):
        from repro.rsync import rsync_sync

        old, new = make_version_pair(seed=99, nbytes=60000, edits=15)
        ours = synchronize(old, new)
        rsync = rsync_sync(old, new)
        assert ours.total_bytes < rsync.total_bytes

    def test_within_small_factor_of_zdelta(self):
        from repro.delta import zdelta_size

        old, new = make_version_pair(seed=100, nbytes=60000, edits=15)
        ours = synchronize(old, new)
        lower_bound = zdelta_size(old, new)
        assert ours.total_bytes < 5 * lower_bound
