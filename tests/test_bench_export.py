"""Tests for benchmark-row export."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.bench import ZdeltaMethod, run_method_on_collection
from repro.bench.export import (
    export_runs,
    rows_to_csv,
    rows_to_json,
    run_to_row,
)
from repro.workloads import gcc_like


@pytest.fixture(scope="module")
def run():
    tree = gcc_like(scale=0.05, seed=7)
    return run_method_on_collection(ZdeltaMethod(), tree.old, tree.new)


class TestRowFlattening:
    def test_core_fields_present(self, run):
        row = run_to_row(run)
        assert row["method"] == "zdelta"
        assert row["total_bytes"] == run.total_bytes
        assert any(key.startswith("breakdown.") for key in row)


class TestCsv:
    def test_roundtrips_through_reader(self, run):
        text = rows_to_csv([run_to_row(run)])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 1
        assert parsed[0]["method"] == "zdelta"
        assert int(parsed[0]["total_bytes"]) == run.total_bytes

    def test_union_of_keys(self):
        text = rows_to_csv([{"a": 1}, {"a": 2, "b": 3}])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["b"] == ""
        assert parsed[1]["b"] == "3"

    def test_empty(self):
        assert rows_to_csv([]) == ""


class TestJson:
    def test_valid_json(self, run):
        rows = json.loads(rows_to_json([run_to_row(run)]))
        assert rows[0]["method"] == "zdelta"


class TestExportRuns:
    def test_csv_by_suffix(self, run, tmp_path):
        out = export_runs([run], tmp_path / "results.csv")
        assert out.read_text().startswith("method,")

    def test_json_by_suffix(self, run, tmp_path):
        out = export_runs([run], tmp_path / "results.json")
        assert json.loads(out.read_text())[0]["method"] == "zdelta"

    def test_explicit_format_wins(self, run, tmp_path):
        out = export_runs([run], tmp_path / "results.dat", fmt="json")
        json.loads(out.read_text())

    def test_unknown_format_rejected(self, run, tmp_path):
        with pytest.raises(ValueError):
            export_runs([run], tmp_path / "results.xml")
