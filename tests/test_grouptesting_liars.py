"""Tests for the searching-with-liars (Ulam) utilities."""

from __future__ import annotations

import random

import pytest

from repro.grouptesting import UlamSearcher, UnreliableOracle


def make_oracle(boundary: int, bits: int, seed: int = 0) -> UnreliableOracle:
    return UnreliableOracle(
        truth=lambda k: k <= boundary, bits=bits, rng=random.Random(seed)
    )


class TestUnreliableOracle:
    def test_true_answers_never_lie(self):
        oracle = make_oracle(boundary=10, bits=1)
        assert all(oracle.ask(5) for _ in range(50))

    def test_lie_probability(self):
        assert make_oracle(0, bits=3).lie_probability == pytest.approx(1 / 8)

    def test_false_answers_lie_at_expected_rate(self):
        oracle = make_oracle(boundary=0, bits=2, seed=7)
        lies = sum(oracle.ask(5) for _ in range(4000))
        assert 800 <= lies <= 1200  # p = 1/4

    def test_bits_spent_tracks_queries(self):
        oracle = make_oracle(boundary=5, bits=6)
        oracle.ask(1)
        oracle.ask(9)
        assert oracle.queries == 2
        assert oracle.bits_spent == 12


class TestUlamSearcher:
    def test_exact_with_reliable_oracle(self):
        for boundary in (0, 1, 17, 99, 100):
            oracle = make_oracle(boundary, bits=60)  # lies essentially never
            assert UlamSearcher(oracle).search(0, 100) == boundary

    def test_below_range_returns_lo_minus_one(self):
        oracle = make_oracle(boundary=-5, bits=60)
        assert UlamSearcher(oracle).search(0, 50) == -1

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            UlamSearcher(make_oracle(1, bits=4)).search(5, 4)

    def test_negative_confirmations_rejected(self):
        with pytest.raises(ValueError):
            UlamSearcher(make_oracle(1, bits=4), confirmations=-1)

    def test_lying_oracle_mostly_recovered_by_confirmation(self):
        """With 4-bit queries lies happen; re-confirmation should keep the
        error rate low."""
        wrong = 0
        trials = 300
        for seed in range(trials):
            boundary = seed % 60
            oracle = make_oracle(boundary, bits=4, seed=seed)
            found = UlamSearcher(oracle, confirmations=2).search(0, 63)
            if found != boundary:
                wrong += 1
        assert wrong < trials * 0.15

    def test_more_bits_fewer_errors(self):
        def error_rate(bits: int) -> float:
            wrong = 0
            for seed in range(200):
                boundary = (seed * 7) % 60
                oracle = make_oracle(boundary, bits=bits, seed=seed)
                if UlamSearcher(oracle, confirmations=1).search(0, 63) != boundary:
                    wrong += 1
            return wrong / 200

        assert error_rate(8) <= error_rate(2)
