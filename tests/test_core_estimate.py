"""Tests for the predictive cost model."""

from __future__ import annotations

import random

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.core.adaptive import ProbeResult, choose_config
from repro.core.estimate import (
    best_min_block_size,
    dirty_rate_from_similarity,
    estimate_protocol_cost,
)


class TestDirtyRateInversion:
    def test_extremes(self):
        assert dirty_rate_from_similarity(1.0, 256) == 0.0
        assert dirty_rate_from_similarity(0.0, 256) == 1.0

    def test_inverse_of_forward_model(self):
        p = 0.001
        block = 256
        similarity = (1 - p) ** block
        assert dirty_rate_from_similarity(similarity, block) == pytest.approx(p)

    def test_validation(self):
        with pytest.raises(ValueError):
            dirty_rate_from_similarity(1.5, 256)
        with pytest.raises(ValueError):
            dirty_rate_from_similarity(0.5, 0)


class TestEstimateShape:
    def test_zero_length_file(self):
        estimate = estimate_protocol_cost(0, 0.01)
        assert estimate.total_bits == 0.0
        assert estimate.matched_fraction == 1.0

    def test_clean_file_mostly_matched(self):
        estimate = estimate_protocol_cost(100_000, 0.0)
        assert estimate.matched_fraction > 0.99
        assert estimate.delta_bits < estimate.map_bits * 10

    def test_hopeless_file_mostly_delta(self):
        estimate = estimate_protocol_cost(100_000, 0.5)
        assert estimate.matched_fraction < 0.05
        assert estimate.delta_bits > estimate.map_bits

    def test_u_shape_over_min_block(self):
        """The model reproduces the Figure 6.1 U-curve."""
        costs = {}
        for min_block in (16, 64, 256, 512):
            config = ProtocolConfig(
                min_block_size=min_block,
                continuation_min_block_size=max(4, min_block // 4),
            )
            costs[min_block] = estimate_protocol_cost(
                100_000, 0.0005, config
            ).total_bits
        interior = min(costs[64], costs[256])
        assert interior < costs[16] or interior < costs[512]
        assert min(costs.values()) in (costs[64], costs[256])

    def test_dirtier_files_prefer_smaller_blocks(self):
        clean_best = best_min_block_size(100_000, 0.00005)
        dirty_best = best_min_block_size(100_000, 0.005)
        assert dirty_best <= clean_best

    def test_map_bits_grow_as_blocks_shrink(self):
        small = estimate_protocol_cost(
            100_000, 0.001, ProtocolConfig(min_block_size=16,
                                           continuation_min_block_size=4)
        )
        large = estimate_protocol_cost(
            100_000, 0.001, ProtocolConfig(min_block_size=256,
                                           continuation_min_block_size=64)
        )
        assert small.map_bits > large.map_bits
        assert small.delta_bits < large.delta_bits

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_protocol_cost(-1, 0.1)
        with pytest.raises(ValueError):
            estimate_protocol_cost(100, 1.5)


class TestModelAgainstMeasurement:
    def make_bernoulli_pair(self, n: int, p: float, seed: int):
        """A pair matching the model's own edit assumptions."""
        rng = random.Random(seed)
        old = bytes(rng.randrange(256) for _ in range(n))
        new = bytearray(old)
        for i in range(n):
            if rng.random() < p:
                new[i] = (new[i] + 1) % 256
        return old, bytes(new)

    def test_predicted_optimum_close_to_measured(self):
        n, p = 60_000, 0.0008
        old, new = self.make_bernoulli_pair(n, p, seed=1)
        measured = {}
        for min_block in (32, 64, 128, 256):
            config = ProtocolConfig(
                min_block_size=min_block,
                continuation_min_block_size=max(4, min_block // 4),
            )
            result = synchronize(old, new, config)
            assert result.reconstructed == new
            measured[min_block] = result.total_bytes
        measured_best = min(measured, key=measured.get)
        # Random bytes are incompressible: literals cost 8 bits each.
        predicted_best = best_min_block_size(
            n, p, candidates=(32, 64, 128, 256), literal_bits_per_byte=8.0
        )
        # Within one power of two of the truth.
        assert 0.5 <= predicted_best / measured_best <= 2.0

    def test_matched_fraction_prediction_reasonable(self):
        n, p = 40_000, 0.0005
        old, new = self.make_bernoulli_pair(n, p, seed=2)
        result = synchronize(old, new)
        estimate = estimate_protocol_cost(n, p)
        assert abs(estimate.matched_fraction - result.known_fraction) < 0.25


class TestModelDrivenAdaptive:
    def test_model_configs_valid_and_correct(self):
        from tests.conftest import make_version_pair

        old, new = make_version_pair(seed=930, nbytes=20000)
        for matched in (2, 12, 23):
            config = choose_config(
                ProbeResult(samples=24, matched=matched),
                use_cost_model=True,
            )
            result = synchronize(old, new, config)
            assert result.reconstructed == new

    def test_model_choice_shrinks_blocks_for_dirty_files(self):
        clean = choose_config(
            ProbeResult(samples=24, matched=23), use_cost_model=True
        )
        dirty = choose_config(
            ProbeResult(samples=24, matched=4), use_cost_model=True
        )
        assert dirty.min_block_size <= clean.min_block_size
