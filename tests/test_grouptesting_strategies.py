"""Tests for the verification strategy descriptions."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigError
from repro.grouptesting import (
    BatchMode,
    BatchScope,
    BatchSpec,
    VerificationStrategy,
    make_strategy,
    strategy_names,
)


class TestBatchSpec:
    def test_individual_defaults(self):
        batch = BatchSpec(BatchMode.INDIVIDUAL, bits=12)
        assert batch.group_size == 1
        assert batch.scope is BatchScope.ALL

    def test_group_needs_size(self):
        with pytest.raises(ConfigError):
            BatchSpec(BatchMode.GROUP, bits=16, group_size=1)

    def test_individual_rejects_group_size(self):
        with pytest.raises(ConfigError):
            BatchSpec(BatchMode.INDIVIDUAL, bits=16, group_size=4)

    def test_bits_bounds(self):
        with pytest.raises(ConfigError):
            BatchSpec(BatchMode.INDIVIDUAL, bits=0)
        with pytest.raises(ConfigError):
            BatchSpec(BatchMode.INDIVIDUAL, bits=65)


class TestVerificationStrategy:
    def test_first_batch_must_cover_all(self):
        with pytest.raises(ConfigError):
            VerificationStrategy(
                "bad",
                (BatchSpec(BatchMode.INDIVIDUAL, bits=8, scope=BatchScope.SURVIVORS),),
            )

    def test_later_batch_cannot_cover_all(self):
        with pytest.raises(ConfigError):
            VerificationStrategy(
                "bad",
                (
                    BatchSpec(BatchMode.INDIVIDUAL, bits=8),
                    BatchSpec(BatchMode.INDIVIDUAL, bits=8),
                ),
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            VerificationStrategy("bad", ())

    def test_roundtrips(self):
        assert make_strategy("trivial").roundtrips == 1
        assert make_strategy("group2").roundtrips == 2
        assert make_strategy("group3").roundtrips == 3


class TestRegistry:
    def test_all_names_resolve(self):
        for name in strategy_names():
            strategy = make_strategy(name)
            assert strategy.name == name

    def test_figure_6_4_lineup_present(self):
        assert {"trivial", "light", "group1", "group2", "group3"} <= set(
            strategy_names()
        )

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_strategy("nonsense")

    def test_trivial_is_16_bit_individual(self):
        (batch,) = make_strategy("trivial").batches
        assert batch.mode is BatchMode.INDIVIDUAL
        assert batch.bits == 16

    def test_group3_ends_with_salvage(self):
        strategy = make_strategy("group3")
        assert strategy.batches[-1].scope is BatchScope.FAILED_GROUP_MEMBERS

    def test_lighter_strategies_send_fewer_individual_bits(self):
        assert (
            make_strategy("group3").total_individual_bits
            < make_strategy("group2").total_individual_bits
            < make_strategy("light").total_individual_bits
            < make_strategy("trivial").total_individual_bits
        )


class TestCustomRegistry:
    def _custom(self, name="custom-x"):
        return VerificationStrategy(
            name,
            (
                BatchSpec(BatchMode.INDIVIDUAL, bits=10),
                BatchSpec(BatchMode.GROUP, bits=20, group_size=4,
                          scope=BatchScope.SURVIVORS),
            ),
        )

    def test_register_and_use_through_protocol(self):
        from repro.core import ProtocolConfig, synchronize
        from repro.grouptesting import register_strategy, unregister_strategy
        from tests.conftest import make_version_pair

        register_strategy(self._custom())
        try:
            old, new = make_version_pair(seed=950, nbytes=8000)
            config = ProtocolConfig(verification="custom-x")
            assert synchronize(old, new, config).reconstructed == new
        finally:
            unregister_strategy("custom-x")
        with pytest.raises(ConfigError):
            make_strategy("custom-x")

    def test_builtin_protected(self):
        from repro.grouptesting import register_strategy, unregister_strategy

        with pytest.raises(ConfigError):
            register_strategy(self._custom("trivial"))
        with pytest.raises(ConfigError):
            unregister_strategy("trivial")

    def test_replace_flag(self):
        from repro.grouptesting import register_strategy, unregister_strategy

        register_strategy(self._custom())
        try:
            with pytest.raises(ConfigError):
                register_strategy(self._custom())
            register_strategy(self._custom(), replace=True)
        finally:
            unregister_strategy("custom-x")
