"""Tests for the delta memo cache: byte-identity, gating, counter plumbing.

The memo's contract is strict (DESIGN §17): a hit changes wall-clock
only — instruction lists and payloads must be byte-identical to fresh
computation, across both matching engines and all executor substrates,
and a default (switched-off) run must leave reports untouched.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.methods import OursMethod
from repro.collection.sync import sync_collection
from repro.delta import (
    compute_instructions,
    vcdiff_decode,
    vcdiff_encode,
    zdelta_decode,
    zdelta_encode,
    zdelta_size,
)
from repro.parallel import arena_available
from repro.reuse import (
    DeltaMemoCache,
    default_delta_memo,
    delta_memo_enabled,
    delta_memo_scope,
    reset_default_delta_memo,
    set_delta_memo_enabled,
)


@pytest.fixture(autouse=True)
def fresh_memo():
    reset_default_delta_memo()
    set_delta_memo_enabled(None)
    yield
    reset_default_delta_memo()
    set_delta_memo_enabled(None)


def _pair(seed: int = 11, nbytes: int = 20_000, edits: int = 8):
    rng = random.Random(seed)
    old = rng.randbytes(nbytes)
    new = bytearray(old)
    for _ in range(edits):
        at = rng.randrange(nbytes - 200)
        new[at : at + 50] = rng.randbytes(80)
    return old, bytes(new)


class TestGating:
    def test_default_off(self):
        assert delta_memo_enabled() is False
        old, new = _pair()
        zdelta_encode(old, new)
        zdelta_encode(old, new)
        assert default_delta_memo().stats.hits == 0
        assert default_delta_memo().stats.misses == 0

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_MEMO", "1")
        assert delta_memo_enabled() is True
        monkeypatch.setenv("REPRO_DELTA_MEMO", "off")
        assert delta_memo_enabled() is False

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_MEMO", "1")
        set_delta_memo_enabled(False)
        assert delta_memo_enabled() is False

    def test_scope_restores_previous_state(self):
        set_delta_memo_enabled(False)
        with delta_memo_scope(True):
            assert delta_memo_enabled() is True
        assert delta_memo_enabled() is False
        with delta_memo_scope(None):  # None leaves the switch alone
            assert delta_memo_enabled() is False

    def test_size_tier_always_memoized(self):
        old, new = _pair()
        first = zdelta_size(old, new)
        second = zdelta_size(old, new)
        assert first == second
        assert default_delta_memo().stats.hits >= 1


class TestByteIdentity:
    def test_payload_hit_is_byte_identical(self):
        old, new = _pair()
        cold = zdelta_encode(old, new, memo=False)
        set_delta_memo_enabled(True)
        primed = zdelta_encode(old, new)
        cached = zdelta_encode(old, new)
        assert default_delta_memo().stats.hits >= 1
        assert primed == cold
        assert cached == cold
        assert zdelta_decode(old, cached) == new

    def test_vcdiff_payload_hit_is_byte_identical(self):
        old, new = _pair(seed=13)
        cold = vcdiff_encode(old, new, memo=False)
        set_delta_memo_enabled(True)
        vcdiff_encode(old, new)
        cached = vcdiff_encode(old, new)
        assert cached == cold
        assert vcdiff_decode(old, cached) == new

    def test_cross_engine_instruction_hit(self):
        """Engines emit identical streams, so the engine is not part of
        the key: a hit primed by one engine serves the other."""
        old, new = _pair(seed=17)
        set_delta_memo_enabled(True)
        primed = compute_instructions(old, new, engine="vectorized")
        served = compute_instructions(old, new, engine="scalar")
        assert served is primed  # the same cached object
        cold = compute_instructions(old, new, engine="scalar", memo=False)
        assert served == cold

    def test_explicit_memo_instance(self):
        old, new = _pair(seed=19)
        memo = DeltaMemoCache()
        first = zdelta_encode(old, new, memo=memo)
        second = zdelta_encode(old, new, memo=memo)
        assert memo.stats.hits == 1
        assert first == second
        assert default_delta_memo().stats.hits == 0


class TestCollectionParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_memoized_run_matches_cold_run(self, workers):
        if workers > 1 and not arena_available():
            pytest.skip("POSIX shared memory unavailable")
        rng = random.Random(23)
        old_side, new_side = {}, {}
        for i in range(6):
            old, new = _pair(seed=100 + i, nbytes=8_000, edits=4)
            old_side[f"f{i}"] = old
            new_side[f"f{i}"] = new
        # Duplicate content pair under another name: the memo's bread
        # and butter.
        old_side["twin"] = old_side["f0"]
        new_side["twin"] = new_side["f0"]

        cold = sync_collection(
            old_side, new_side, OursMethod(), workers=workers
        )
        reset_default_delta_memo()
        warm = sync_collection(
            old_side,
            new_side,
            OursMethod(),
            workers=workers,
            delta_memo=True,
        )
        assert warm.total_bytes == cold.total_bytes
        assert warm.reconstructed == cold.reconstructed
        for name, outcome in cold.per_file.items():
            assert warm.per_file[name].total_bytes == outcome.total_bytes

    def test_clean_default_run_reports_zero_counters(self):
        old, new = _pair(seed=29, nbytes=6_000)
        report = sync_collection({"f": old}, {"f": new}, OursMethod())
        assert report.dedup_hits == 0
        assert report.delta_memo_hits == 0
        assert report.delta_memo_misses == 0
        assert report.sibling_refs_used == 0
        assert report.bytes_saved_vs_self_ref == 0

    def test_memo_counters_folded_back_serial(self):
        """OursMethod's protocol rounds don't consult the payload memo,
        so counter fold-back is pinned with a zdelta method instead."""
        from repro.bench.methods import ZdeltaMethod

        rng = random.Random(31)
        old_side, new_side = {}, {}
        for i in range(3):
            old, new = _pair(seed=200 + i, nbytes=6_000, edits=4)
            old_side[f"f{i}"] = old
            new_side[f"f{i}"] = new
        first = sync_collection(
            old_side, new_side, ZdeltaMethod(), delta_memo=True
        )
        assert first.delta_memo_misses > 0
        second = sync_collection(
            old_side, new_side, ZdeltaMethod(), delta_memo=True
        )
        assert second.delta_memo_hits > 0


class TestByteBudget:
    def test_budget_evicts_and_counts_bytes(self):
        memo = DeltaMemoCache(max_entries=64, max_bytes=1_000)
        for i in range(8):
            memo.payload(
                "zdelta",
                bytes([i]) * 16,
                bytes([i + 1]) * 16,
                16,
                lambda: b"x" * 400,
            )
        assert memo.current_bytes <= 1_000
        assert memo.stats.evictions > 0
        assert memo.stats.evicted_bytes >= 400 * memo.stats.evictions
        assert memo.stats.snapshot()["evicted_bytes"] == (
            memo.stats.evicted_bytes
        )

    def test_mru_entry_survives_oversized_budget(self):
        memo = DeltaMemoCache(max_entries=64, max_bytes=10)
        payload = memo.payload(
            "zdelta", b"a" * 16, b"b" * 16, 16, lambda: b"y" * 100
        )
        assert payload == b"y" * 100
        assert len(memo) == 1  # never evict the entry just built
