"""Monte Carlo simulation vs the closed-form verification model."""

from __future__ import annotations

import pytest

from repro.grouptesting import (
    expected_strategy_bits,
    make_strategy,
    simulate_strategy,
)
from repro.grouptesting.analysis import expected_true_match_yield


class TestSimulation:
    def test_zero_candidates(self):
        outcome = simulate_strategy(make_strategy("trivial"), 0, 0.1)
        assert outcome.mean_bits == 0.0
        assert outcome.mean_true_accepted == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_strategy(make_strategy("trivial"), -1, 0.1)
        with pytest.raises(ValueError):
            simulate_strategy(make_strategy("trivial"), 1, 2.0)

    def test_trivial_bits_deterministic(self):
        outcome = simulate_strategy(make_strategy("trivial"), 50, 0.2,
                                    trials=10)
        assert outcome.mean_bits == 50 * 16

    def test_deterministic_with_seed(self):
        a = simulate_strategy(make_strategy("group2"), 40, 0.2, seed=5)
        b = simulate_strategy(make_strategy("group2"), 40, 0.2, seed=5)
        assert a == b

    def test_false_accepts_rare_for_strong_hashes(self):
        outcome = simulate_strategy(make_strategy("trivial"), 100, 0.5,
                                    trials=100)
        assert outcome.mean_false_accepted < 0.5

    def test_bits_per_true_match_infinite_when_nothing_accepted(self):
        outcome = simulate_strategy(make_strategy("trivial"), 10, 1.0,
                                    trials=20)
        assert outcome.bits_per_true_match() == float("inf")


class TestAgreementWithModel:
    @pytest.mark.parametrize("name", ["trivial", "light", "group1",
                                      "group2", "group3"])
    @pytest.mark.parametrize("false_rate", [0.05, 0.3])
    def test_bits_match_closed_form(self, name, false_rate):
        strategy = make_strategy(name)
        candidates = 120
        simulated = simulate_strategy(
            strategy, candidates, false_rate, trials=400, seed=1
        )
        predicted = expected_strategy_bits(strategy, candidates, false_rate)
        assert simulated.mean_bits == pytest.approx(predicted, rel=0.15)

    @pytest.mark.parametrize("name", ["trivial", "group1", "group3"])
    def test_yield_matches_closed_form(self, name):
        strategy = make_strategy(name)
        simulated = simulate_strategy(strategy, 150, 0.25, trials=400, seed=2)
        predicted = expected_true_match_yield(strategy, 150, 0.25)
        assert simulated.mean_true_accepted == pytest.approx(
            predicted, rel=0.15, abs=1.5
        )

    def test_group_testing_beats_trivial_in_bits_per_match(self):
        trivial = simulate_strategy(make_strategy("trivial"), 200, 0.05,
                                    trials=100, seed=3)
        grouped = simulate_strategy(make_strategy("group2"), 200, 0.05,
                                    trials=100, seed=3)
        assert grouped.bits_per_true_match() < trivial.bits_per_true_match()
