"""Resumable sessions: byte-exact continuation from every round boundary.

The property the checkpoint subsystem must uphold: a session interrupted
after any completed round and resumed from its checkpoint reconstructs
the same bytes with the *same cumulative wire accounting* as the
uninterrupted run — and, supervised end to end, strictly fewer total
bits than restarting from scratch.
"""

from __future__ import annotations

import pytest

from repro.bench.methods import MultiroundRsyncMethod, OursMethod
from repro.collection import sync_collection
from repro.core import ProtocolConfig, synchronize
from repro.exceptions import ResumeRefusedError
from repro.multiround import multiround_rsync_sync
from repro.net import FaultPlan
from repro.net.channel import SimulatedChannel
from repro.resilience import CheckpointStore, RoundCheckpoint, SyncSupervisor
from tests.conftest import make_version_pair


class Recorder:
    """A checkpointer that keeps every round checkpoint in memory."""

    def __init__(self):
        self.checkpoints: list[RoundCheckpoint] = []

    def record_round(self, round_index, payload, stats):
        self.checkpoints.append(
            RoundCheckpoint.at_boundary(round_index, payload, stats)
        )


class TestCoreProtocolResume:
    def test_checkpointing_does_not_change_the_wire(self):
        old, new = make_version_pair(seed=420, nbytes=12000, edits=6)
        plain = synchronize(old, new)
        recorded = synchronize(old, new, checkpointer=Recorder())
        assert recorded.stats.bits_by == plain.stats.bits_by
        assert recorded.rounds == plain.rounds

    def test_resume_from_every_round_boundary(self):
        """Interrupt-at-round-k, for every k: the resumed run finishes
        with bit-identical cumulative accounting and identical bytes."""
        old, new = make_version_pair(seed=421, nbytes=15000, edits=8)
        recorder = Recorder()
        baseline = synchronize(old, new, checkpointer=recorder)
        assert baseline.reconstructed == new
        assert len(recorder.checkpoints) >= 3  # a real multi-round session

        for checkpoint in recorder.checkpoints:
            channel = SimulatedChannel()
            checkpoint.seed_stats(channel.stats)
            resumed = synchronize(
                old, new, channel=channel, resume_from=checkpoint
            )
            assert resumed.reconstructed == new
            assert resumed.rounds == baseline.rounds
            assert resumed.stats.bits_by == baseline.stats.bits_by, (
                f"resume from round {checkpoint.round_index} diverged"
            )

    def test_resume_respects_max_rounds(self):
        old, new = make_version_pair(seed=422, nbytes=15000, edits=8)
        config = ProtocolConfig(max_rounds=3)
        recorder = Recorder()
        baseline = synchronize(old, new, config, checkpointer=recorder)
        assert baseline.reconstructed == new

        for checkpoint in recorder.checkpoints:
            channel = SimulatedChannel()
            checkpoint.seed_stats(channel.stats)
            resumed = synchronize(
                old, new, config, channel=channel, resume_from=checkpoint
            )
            assert resumed.reconstructed == new
            assert resumed.stats.bits_by == baseline.stats.bits_by


class TestMultiroundResume:
    def test_resume_from_every_round_boundary(self):
        old, new = make_version_pair(seed=423, nbytes=15000, edits=8)
        recorder = Recorder()
        baseline = multiround_rsync_sync(old, new, checkpointer=recorder)
        assert baseline.reconstructed == new
        assert len(recorder.checkpoints) >= 3

        for checkpoint in recorder.checkpoints:
            channel = SimulatedChannel()
            checkpoint.seed_stats(channel.stats)
            resumed = multiround_rsync_sync(
                old, new, channel=channel, resume_from=checkpoint
            )
            assert resumed.reconstructed == new
            assert resumed.rounds == baseline.rounds
            assert resumed.stats.bits_by == baseline.stats.bits_by, (
                f"resume from round {checkpoint.round_index} diverged"
            )


def grand_total(outcome) -> int:
    """Everything the link carried: useful traffic (which includes the
    resume handshake, charged on the channel) plus retransmissions."""
    return outcome.total_bytes + outcome.retransmitted_bytes


class TestSupervisedResumeSavings:
    def test_passthrough_with_checkpoints_and_no_faults(self):
        """Opt-in purity: checkpoints alone change nothing on the wire."""
        old, new = make_version_pair(seed=424, nbytes=12000, edits=6)
        plain = OursMethod().sync_file(old, new)
        supervised = SyncSupervisor(
            OursMethod(), checkpoints=CheckpointStore.in_memory()
        ).sync_file(old, new)
        assert supervised.total_bytes == plain.total_bytes
        assert supervised.breakdown == plain.breakdown
        assert supervised.resume_handshake_bits == 0
        assert supervised.rounds_salvaged == 0

    @pytest.mark.parametrize("method_factory",
                             [OursMethod, MultiroundRsyncMethod])
    def test_disconnect_sweep_resume_beats_restart(self, method_factory):
        """Sweep the disconnect point across the session.  Whenever the
        journal salvaged at least one round, the checkpointed run must
        move strictly fewer total bytes than the restarting one — the
        acceptance property of this subsystem."""
        old, new = make_version_pair(seed=425, nbytes=15000, edits=8)
        salvage_cases = 0
        for cutoff in range(2, 40, 3):
            plan = lambda: FaultPlan(seed=7, disconnect_after_sends=cutoff)
            restart = SyncSupervisor(
                method_factory(), fault_plan=plan()
            ).sync_file(old, new)
            resumed = SyncSupervisor(
                method_factory(),
                fault_plan=plan(),
                checkpoints=CheckpointStore.in_memory(),
            ).sync_file(old, new)
            assert restart.correct and resumed.correct
            if resumed.rounds_salvaged >= 1:
                salvage_cases += 1
                assert resumed.resume_handshake_bits > 0
                assert grand_total(resumed) < grand_total(restart), (
                    f"disconnect at send {cutoff}: resume "
                    f"{grand_total(resumed)} B !< restart "
                    f"{grand_total(restart)} B"
                )
        assert salvage_cases >= 3  # the sweep must exercise real salvage

    def test_durable_journal_salvages_across_processes(self, tmp_path):
        """A journal written by one supervisor 'process' is picked up by a
        completely fresh one started with resume=True — the cross-restart
        handoff, minus the actual process kill (that end-to-end variant
        lives in tests/test_crash_recovery.py)."""
        old, new = make_version_pair(seed=426, nbytes=15000, edits=8)
        method = OursMethod()
        plain = method.sync_file(old, new)

        # "Process one": journal a few completed rounds, then die without
        # committing (simply drop the journal object).
        recorder = Recorder()
        synchronize(old, new, checkpointer=recorder)
        head = recorder.checkpoints[2]
        journal = CheckpointStore(tmp_path).journal("f")
        journal.open(method.checkpoint_identity(old, new))
        for checkpoint in recorder.checkpoints[: 3]:
            channel = SimulatedChannel()
            checkpoint.seed_stats(channel.stats)
            journal.record_round(
                checkpoint.round_index, checkpoint.payload, channel.stats
            )

        # "Process two": a fresh supervisor over a clean link resumes it.
        supervisor = SyncSupervisor(
            OursMethod(), checkpoints=CheckpointStore(tmp_path, resume=True)
        )
        outcome = supervisor.sync_named_file("f", old, new)
        assert outcome.correct
        assert outcome.rounds_salvaged == head.round_index
        assert outcome.resume_handshake_bits > 0
        # Cumulative accounting: the uninterrupted total plus only the
        # (tiny) resume handshake.
        handshake_ceiling = outcome.resume_handshake_bits // 8 + 2
        assert plain.total_bytes < outcome.total_bytes
        assert outcome.total_bytes <= plain.total_bytes + handshake_ceiling
        # The salvaged session committed: journal gone.
        assert CheckpointStore(tmp_path).pending() == []

    def test_resume_refused_without_durable_location(self):
        old = {"a": b"x" * 100}
        new = {"a": b"y" * 100}
        with pytest.raises(ResumeRefusedError):
            sync_collection(old, new, OursMethod(), resume=True)


class TestCollectionCheckpointing:
    def test_collection_totals_unchanged_by_checkpoint_dir(self, tmp_path):
        """Acceptance criterion: without faults, a run with
        --checkpoint-dir is byte-identical on the wire to one without."""
        old_files = {}
        new_files = {}
        for index in range(4):
            old, new = make_version_pair(
                seed=430 + index, nbytes=6000, edits=4
            )
            old_files[f"dir/f{index}.bin"] = old
            new_files[f"dir/f{index}.bin"] = new

        plain = sync_collection(old_files, new_files, OursMethod())
        checked = sync_collection(
            old_files,
            new_files,
            OursMethod(),
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert checked.total_bytes == plain.total_bytes
        assert checked.resume_handshake_bits == 0
        assert checked.rounds_salvaged == 0
        assert checked.checkpoint_bytes_written > 0  # journalled locally
        # Every session committed: no journals left behind.
        assert CheckpointStore(tmp_path / "ckpt").pending() == []
