"""Tests for the expected-cost model of verification strategies."""

from __future__ import annotations

import pytest

from repro.grouptesting import (
    expected_strategy_bits,
    make_strategy,
    optimal_dorfman_group_size,
)
from repro.grouptesting.analysis import expected_true_match_yield


class TestDorfmanRule:
    def test_inverse_sqrt(self):
        assert optimal_dorfman_group_size(0.01) == 10
        assert optimal_dorfman_group_size(0.04) == 5

    def test_floor_of_two(self):
        assert optimal_dorfman_group_size(0.9) == 2

    def test_domain_checked(self):
        with pytest.raises(ValueError):
            optimal_dorfman_group_size(0.0)
        with pytest.raises(ValueError):
            optimal_dorfman_group_size(1.0)


class TestExpectedBits:
    def test_zero_candidates_costs_nothing(self):
        assert expected_strategy_bits(make_strategy("trivial"), 0, 0.1) == 0.0

    def test_trivial_is_linear(self):
        strategy = make_strategy("trivial")
        assert expected_strategy_bits(strategy, 100, 0.1) == pytest.approx(1600)

    def test_grouping_cheaper_at_low_false_rate(self):
        """With almost-clean candidates, group testing sends far fewer
        bits than trivial per-candidate hashing — the paper's motivation."""
        trivial = expected_strategy_bits(make_strategy("trivial"), 200, 0.02)
        grouped = expected_strategy_bits(make_strategy("group2"), 200, 0.02)
        assert grouped < trivial

    def test_invalid_inputs(self):
        strategy = make_strategy("trivial")
        with pytest.raises(ValueError):
            expected_strategy_bits(strategy, -1, 0.1)
        with pytest.raises(ValueError):
            expected_strategy_bits(strategy, 1, 1.5)

    def test_group1_cost_matches_hand_calculation(self):
        # 100 candidates, groups of 4 at 20 bits: ceil(100/4)=25 units.
        strategy = make_strategy("group1")
        assert expected_strategy_bits(strategy, 100, 0.5) == pytest.approx(500)


class TestExpectedYield:
    def test_trivial_keeps_all_true_matches(self):
        strategy = make_strategy("trivial")
        assert expected_true_match_yield(strategy, 100, 0.2) == pytest.approx(80)

    def test_zero_candidates(self):
        assert expected_true_match_yield(make_strategy("group1"), 0, 0.2) == 0.0

    def test_one_bad_apple_effect(self):
        """Grouping without salvage loses true matches that share a group
        with a false candidate."""
        yielded = expected_true_match_yield(make_strategy("group1"), 100, 0.3)
        assert yielded < 70  # out of 70 true candidates

    def test_salvage_recovers_bad_apple_losses(self):
        lost = expected_true_match_yield(make_strategy("group2"), 100, 0.3)
        saved = expected_true_match_yield(make_strategy("group3"), 100, 0.3)
        assert saved > lost

    def test_yield_never_exceeds_true_pool(self):
        for name in ("trivial", "light", "group1", "group2", "group3"):
            strategy = make_strategy(name)
            for rate in (0.0, 0.1, 0.5, 0.9):
                assert (
                    expected_true_match_yield(strategy, 50, rate)
                    <= 50 * (1 - rate) + 1e-9
                )
