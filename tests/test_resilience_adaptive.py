"""Adaptive resilience: AIMD retry, circuit breakers, deadline budgets.

Unit coverage for the control loops plus the supervisor/collection
integration invariants the issue pins down:

* the happy path with the adaptive layer *enabled* stays byte-identical
  to a plain run — across serial, multi-worker pickle, arena dispatch,
  and both protocol engines;
* a poisoned file trips its breaker and fails fast with partial
  accounting instead of consuming the run's retry budget;
* deadline breach degrades gracefully: checkpointed rounds salvaged,
  typed error, accounting preserved;
* non-transient failure signatures descend the ladder immediately
  instead of burning the remaining attempts on a beaten rung.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.bench.methods import OursMethod
from repro.collection import sync_collection
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    DeltaFormatError,
    IntegrityError,
    SyncFailedError,
)
from repro.net import FaultPlan
from repro.resilience import (
    AdaptiveRetryPolicy,
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    DeadlineBudget,
    RetryPolicy,
    SyncSupervisor,
)
from repro.resilience.health import FailureSignature
from repro.syncmethod import MethodOutcome, SyncMethod
from repro.workloads import gcc_like
from tests.conftest import make_version_pair


class TestAdaptiveRetryPolicy:
    def test_duck_types_static_policy(self):
        policy = AdaptiveRetryPolicy(max_attempts=5)
        assert policy.max_attempts == 5

    def test_widen_on_transient_failure(self):
        policy = AdaptiveRetryPolicy(jitter=0.0, widen_factor=2.0,
                                     max_widen=8.0)
        assert policy.scale == 1.0
        policy.note_failure(FailureSignature.CORRUPTION)
        assert policy.scale == 2.0
        policy.note_failure(FailureSignature.DROP)
        assert policy.scale == 4.0
        policy.note_failure(FailureSignature.DISCONNECT)
        policy.note_failure(FailureSignature.CORRUPTION)
        assert policy.scale == 8.0  # capped at max_widen

    def test_non_transient_signature_does_not_widen(self):
        """Decode/stall/protocol indict the rung, not the link."""
        policy = AdaptiveRetryPolicy(jitter=0.0)
        policy.note_failure(FailureSignature.DECODE)
        policy.note_failure(FailureSignature.STALL)
        policy.note_failure(FailureSignature.PROTOCOL)
        assert policy.scale == 1.0

    def test_tighten_after_clean_streak(self):
        from repro.resilience.health import AttemptEvidence

        policy = AdaptiveRetryPolicy(jitter=0.0, tighten_after=2,
                                     tighten_step=0.25, min_scale=0.25)
        policy.note_failure(FailureSignature.DROP)
        assert policy.scale == 2.0
        policy.monitor.record(AttemptEvidence(ok=True))
        policy.note_success()
        assert policy.scale == 2.0  # streak of 1: too soon
        policy.monitor.record(AttemptEvidence(ok=True))
        policy.note_success()
        assert policy.scale == 1.75  # additive decrease
        for _ in range(20):
            policy.monitor.record(AttemptEvidence(ok=True))
            policy.note_success()
        assert policy.scale == 0.25  # floored at min_scale

    def test_backoff_scales_with_aimd_state(self):
        policy = AdaptiveRetryPolicy(jitter=0.0, base_backoff_s=1.0,
                                     multiplier=2.0, max_backoff_s=100.0)
        assert policy.backoff_seconds(1) == 1.0
        policy.note_failure(FailureSignature.DROP)
        assert policy.backoff_seconds(1) == 2.0  # same rung, widened

    def test_jitter_is_seeded_and_bounded(self):
        a = AdaptiveRetryPolicy(seed=42, jitter=0.1, base_backoff_s=1.0)
        b = AdaptiveRetryPolicy(seed=42, jitter=0.1, base_backoff_s=1.0)
        seq_a = [a.backoff_seconds(1) for _ in range(10)]
        seq_b = [b.backoff_seconds(1) for _ in range(10)]
        assert seq_a == seq_b  # same seed, same draws
        for value in seq_a:
            assert 0.9 <= value <= 1.1
        other = AdaptiveRetryPolicy(seed=43, jitter=0.1, base_backoff_s=1.0)
        assert [other.backoff_seconds(1) for _ in range(10)] != seq_a

    def test_zero_base_backoff_stays_zero(self):
        policy = AdaptiveRetryPolicy(base_backoff_s=0.0, jitter=0.5)
        policy.note_failure(FailureSignature.DROP)
        assert policy.backoff_seconds(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            AdaptiveRetryPolicy(widen_factor=0.5)
        with pytest.raises(ValueError):
            AdaptiveRetryPolicy(min_scale=0.0)
        with pytest.raises(ValueError):
            AdaptiveRetryPolicy(tighten_after=0)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
        for _ in range(2):
            breaker.record_failure(now=0.0)
            assert breaker.state == BreakerState.CLOSED
        breaker.record_failure(now=0.0)
        assert breaker.state == BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(now=30.0)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.0)
        breaker.record_success(now=0.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        breaker.record_failure(now=0.0)
        assert not breaker.allow(now=59.9)
        assert breaker.allow(now=60.0)  # admits the probe
        assert breaker.state == BreakerState.HALF_OPEN
        breaker.record_success(now=60.0)
        assert breaker.state == BreakerState.CLOSED

    def test_failed_probe_escalates_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0,
                                 cooldown_multiplier=2.0,
                                 max_cooldown_s=900.0)
        breaker.record_failure(now=0.0)       # opens until 60
        assert breaker.allow(now=60.0)        # half-open probe
        breaker.record_failure(now=60.0)      # re-opens until 60+120
        assert breaker.opens == 2
        assert not breaker.allow(now=179.9)
        assert breaker.allow(now=180.0)

    def test_cooldown_capped(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0,
                                 cooldown_multiplier=10.0,
                                 max_cooldown_s=250.0)
        now = 0.0
        for _ in range(4):
            breaker.allow(now)
            breaker.record_failure(now)
            now += 1000.0
        assert breaker._current_cooldown == 250.0

    def test_successful_probe_resets_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        breaker.record_failure(now=0.0)
        breaker.allow(now=60.0)
        breaker.record_success(now=60.0)
        breaker.record_failure(now=60.0)  # re-opens with the base cooldown
        assert not breaker.allow(now=119.9)
        assert breaker.allow(now=120.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=10.0, max_cooldown_s=5.0)


class TestBreakerBoard:
    def test_per_name_isolation(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("a").record_failure(board.clock)
        assert board.breaker("a").state == BreakerState.OPEN
        assert board.breaker("b").state == BreakerState.CLOSED
        assert board.total_opens == 1

    def test_shared_clock_advances_cooldowns(self):
        board = BreakerBoard(failure_threshold=1, cooldown_s=60.0)
        breaker = board.breaker("f")
        breaker.record_failure(board.clock)
        assert not breaker.allow(board.clock)
        board.advance(60.0)  # the rest of the run makes progress
        assert breaker.allow(board.clock)

    def test_anonymous_key(self):
        board = BreakerBoard()
        assert board.breaker(None) is board.breaker(None)


class TestDeadlineBudget:
    def test_charge_and_exhaustion(self):
        budget = DeadlineBudget(100.0)
        budget.charge(60.0)
        assert budget.remaining_s == 40.0
        assert not budget.exhausted
        budget.charge(40.0)
        assert budget.exhausted
        assert budget.remaining_s == 0.0

    def test_negative_charges_ignored(self):
        budget = DeadlineBudget(10.0)
        budget.charge(-5.0)
        assert budget.spent_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineBudget(0.0)


class _AlwaysCorruptPlan:
    """Shorthand: a plan that corrupts every message, forever."""

    @staticmethod
    def make(seed=9):
        return FaultPlan(seed=seed, corrupt_rate=1.0)


class TestSupervisorIntegration:
    def test_breaker_fails_fast_with_partial_accounting(self):
        old, new = make_version_pair(seed=401, nbytes=4000, edits=3)
        board = BreakerBoard(failure_threshold=3, cooldown_s=1e9,
                             max_cooldown_s=1e9)
        supervisor = SyncSupervisor(
            OursMethod(),
            retry=AdaptiveRetryPolicy(max_attempts=4),
            fault_plan=_AlwaysCorruptPlan.make(),
            breakers=board,
        )
        with pytest.raises(CircuitOpenError) as info:
            supervisor.sync_named_file("poisoned", old, new)
        # Exactly threshold attempts burnt, not 4 rungs x 4 attempts.
        assert info.value.attempts == 3
        partial = info.value.partial
        assert partial is not None and not partial.correct
        assert partial.retries == 3
        assert partial.breaker_opens == 1
        assert partial.retransmitted_bytes > 0
        assert partial.health_score < 1.0

    def test_breaker_reopens_cooldown_then_probe(self):
        """An open breaker refuses the file until the shared clock has
        moved past the cooldown — 'come back to this file later' — then
        admits one half-open probe, which on a healed link closes it."""
        old, new = make_version_pair(seed=402, nbytes=4000, edits=3)
        board = BreakerBoard(failure_threshold=2, cooldown_s=5.0)
        plan = FaultPlan(seed=11, corrupt_rate=1.0, max_faults=2)
        supervisor = SyncSupervisor(
            OursMethod(),
            retry=AdaptiveRetryPolicy(max_attempts=6),
            fault_plan=plan,
            breakers=board,
        )
        with pytest.raises(CircuitOpenError):
            supervisor.sync_named_file("healing", old, new)
        assert board.breaker("healing").state == BreakerState.OPEN
        # The rest of the run makes progress; the faults have burnt out.
        board.advance(5.0)
        outcome = supervisor.sync_named_file("healing", old, new)
        assert outcome.correct
        assert board.breaker("healing").state == BreakerState.CLOSED
        assert board.total_opens == 1

    def test_file_deadline_breach_raises_typed_error(self):
        old, new = make_version_pair(seed=403, nbytes=4000, edits=3)
        supervisor = SyncSupervisor(
            OursMethod(),
            retry=AdaptiveRetryPolicy(max_attempts=10, base_backoff_s=50.0,
                                      max_backoff_s=1000.0, jitter=0.0),
            fault_plan=_AlwaysCorruptPlan.make(),
            deadline_s=60.0,
        )
        with pytest.raises(DeadlineExceededError) as info:
            supervisor.sync_file(old, new)
        partial = info.value.partial
        assert partial is not None
        assert partial.retries >= 1
        assert partial.recovery_seconds >= 60.0

    def test_run_budget_shared_across_files(self):
        old, new = make_version_pair(seed=404, nbytes=4000, edits=3)
        budget = DeadlineBudget(80.0)
        supervisor = SyncSupervisor(
            OursMethod(),
            retry=AdaptiveRetryPolicy(max_attempts=10, base_backoff_s=100.0,
                                      max_backoff_s=1000.0, jitter=0.0),
            fault_plan=_AlwaysCorruptPlan.make(),
            budget=budget,
        )
        with pytest.raises(DeadlineExceededError):
            supervisor.sync_named_file("first", old, new)
        assert budget.exhausted
        # The next file is refused before burning a single attempt.
        with pytest.raises(DeadlineExceededError) as info:
            supervisor.sync_named_file("second", old, new)
        assert info.value.partial.retries == 0

    def test_decode_signature_descends_ladder_immediately(self):
        """A rung whose delta cannot be decoded under the adaptive policy
        burns ONE attempt, not max_attempts — the signature router sends
        the supervisor down the ladder."""

        class BrokenDecoder(SyncMethod):
            name = "broken"

            def __init__(self):
                self.calls = 0

            def sync_file(self, old, new):
                self.calls += 1
                raise DeltaFormatError("unknown opcode")

        old, new = make_version_pair(seed=405, nbytes=3000, edits=2)
        broken = BrokenDecoder()
        outcome = SyncSupervisor(
            broken, retry=AdaptiveRetryPolicy(max_attempts=4)
        ).sync_file(old, new)
        assert outcome.correct
        assert broken.calls == 1
        assert outcome.retries == 1
        assert outcome.fallback_method == "multiround"

    def test_collision_signature_repairs_now_on_same_rung(self):
        """Wrong bytes are a *collision*, not a beaten rung: the adaptive
        router retries the same rung immediately (zero backoff) instead
        of descending the ladder after one attempt."""

        class LyingMethod(SyncMethod):
            name = "liar"

            def __init__(self):
                self.calls = 0

            def sync_file(self, old, new):
                self.calls += 1
                return MethodOutcome(total_bytes=1, correct=False)

        old, new = make_version_pair(seed=405, nbytes=3000, edits=2)
        liar = LyingMethod()
        outcome = SyncSupervisor(
            liar, retry=AdaptiveRetryPolicy(max_attempts=4)
        ).sync_file(old, new)
        assert outcome.correct
        # The whole same-rung budget is spent before descending...
        assert liar.calls == 4
        assert outcome.retries >= 4
        assert outcome.fallback_method == "multiround"
        # ...and repair-now means none of it waits out a backoff.
        assert outcome.adaptive_backoff_s == 0.0

    def test_static_policy_keeps_pr2_ladder_semantics(self):
        """The same lying rung under the *static* policy burns its whole
        attempt budget first — routing only activates with the adaptive
        policy, preserving historical behaviour byte for byte."""

        class LyingMethod(SyncMethod):
            name = "liar"

            def __init__(self):
                self.calls = 0

            def sync_file(self, old, new):
                self.calls += 1
                return MethodOutcome(total_bytes=1, correct=False)

        old, new = make_version_pair(seed=405, nbytes=3000, edits=2)
        liar = LyingMethod()
        outcome = SyncSupervisor(
            liar, retry=RetryPolicy(max_attempts=4)
        ).sync_file(old, new)
        assert liar.calls == 4
        assert outcome.retries == 4

    def test_adaptive_recovery_reports_health_below_one(self):
        old, new = make_version_pair(seed=406, nbytes=10000, edits=5)
        plan = FaultPlan(seed=1, corrupt_rate=1.0, max_faults=1,
                         phases=frozenset({"map"}))
        outcome = SyncSupervisor(
            OursMethod(), retry=AdaptiveRetryPolicy(), fault_plan=plan
        ).sync_file(old, new)
        assert outcome.correct
        assert outcome.retries == 1
        assert 0.0 < outcome.health_score < 1.0
        assert outcome.adaptive_backoff_s > 0.0


@pytest.fixture(scope="module")
def tree():
    return gcc_like(scale=0.05, seed=23)


def _summary_with_counters(report):
    return (
        report.summary(),
        {n: o.total_bytes for n, o in report.per_file.items()},
        report.health_score,
        report.breaker_opens,
        report.deadline_salvages,
        report.adaptive_backoff_s,
    )


class TestHappyPathByteIdentity:
    """ISSUE acceptance: a clean collection run with the adaptive layer
    enabled reports byte-identical numbers to a plain run."""

    def test_serial(self, tree):
        plain = sync_collection(tree.old, tree.new, OursMethod())
        adaptive = sync_collection(
            tree.old, tree.new, OursMethod(),
            adaptive_retry=True, breaker_threshold=3, deadline_s=3600.0,
        )
        assert adaptive.summary() == plain.summary()
        assert adaptive.health_score == 1.0
        assert adaptive.breaker_opens == 0
        assert adaptive.deadline_salvages == 0
        assert adaptive.adaptive_backoff_s == 0.0

    @pytest.mark.parametrize("use_arena", [False, True],
                             ids=["pickle", "arena"])
    def test_parallel_dispatch(self, tree, use_arena):
        plain = sync_collection(tree.old, tree.new, OursMethod())
        adaptive = sync_collection(
            tree.old, tree.new, OursMethod(),
            workers=2, use_arena=use_arena,
            adaptive_retry=True, breaker_threshold=3, deadline_s=3600.0,
        )
        assert adaptive.summary() == plain.summary()
        assert adaptive.health_score == 1.0
        assert adaptive.breaker_opens == 0

    def test_run_deadline_forces_serial_but_identical(self, tree):
        plain = sync_collection(tree.old, tree.new, OursMethod())
        budgeted = sync_collection(
            tree.old, tree.new, OursMethod(),
            workers=4, adaptive_retry=True, run_deadline_s=1e9,
        )
        assert budgeted.summary() == plain.summary()
        assert budgeted.workers == 1  # run budget implies serial

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_both_protocol_engines(self, tree, engine):
        """The adaptive layer is engine-agnostic: identical clean-run
        reports whichever round engine the protocol uses."""
        code = (
            "from repro.bench.methods import OursMethod\n"
            "from repro.collection import sync_collection\n"
            "from repro.workloads import gcc_like\n"
            "tree = gcc_like(scale=0.05, seed=23)\n"
            "plain = sync_collection(tree.old, tree.new, OursMethod())\n"
            "adaptive = sync_collection(tree.old, tree.new, OursMethod(),\n"
            "    adaptive_retry=True, breaker_threshold=3,\n"
            "    deadline_s=3600.0)\n"
            "assert adaptive.summary() == plain.summary()\n"
            "assert adaptive.health_score == 1.0\n"
            "print(sorted(plain.summary().items()))\n"
        )
        env = dict(os.environ, REPRO_PROTOCOL_ENGINE=engine)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()


class TestCollectionGracefulDegradation:
    def test_breaker_failure_reported_not_raised(self, tree):
        """on_error='raise' still degrades gracefully for *typed*
        resilience failures: the poisoned file lands in report.failed."""
        plan = FaultPlan(seed=12, corrupt_rate=1.0)
        report = sync_collection(
            tree.old, tree.new, OursMethod(),
            fault_plan=plan, on_error="raise",
            adaptive_retry=True, breaker_threshold=2, deadline_s=600.0,
        )
        assert report.files_failed == len(report.failed)
        assert report.files_failed >= 1
        assert report.breaker_opens + report.deadline_salvages >= 0
        assert report.health_score < 1.0

    def test_plain_failures_still_raise(self, tree):
        """Without breakers/deadlines, on_error='raise' keeps raising."""
        plan = FaultPlan(seed=12, corrupt_rate=1.0)
        with pytest.raises(SyncFailedError):
            sync_collection(
                tree.old, tree.new, OursMethod(),
                fault_plan=plan, on_error="raise",
                retry_policy=RetryPolicy(max_attempts=1),
            )

    def test_skip_mode_records_partial_accounting(self, tree):
        plan = FaultPlan(seed=13, corrupt_rate=1.0)
        report = sync_collection(
            tree.old, tree.new, OursMethod(),
            fault_plan=plan, on_error="skip",
            adaptive_retry=True, breaker_threshold=2,
        )
        assert report.files_failed >= 1
        assert report.total_retries >= 1  # doomed attempts still counted
        assert report.retransmitted_bytes > 0
