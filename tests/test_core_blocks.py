"""Tests for the mirrored block tree."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.core.blocks import Block, BlockStatus, BlockTracker


def make_tracker(target_length: int = 4096, **overrides) -> BlockTracker:
    config = ProtocolConfig(
        start_block_size=overrides.pop("start_block_size", 1024),
        min_block_size=overrides.pop("min_block_size", 64),
        continuation_min_block_size=overrides.pop("continuation_min_block_size", 16),
        **overrides,
    )
    return BlockTracker(target_length, config)


class TestInitialPartition:
    def test_full_blocks_plus_tail(self):
        tracker = make_tracker(2500, start_block_size=1024)
        lengths = [block.length for block in tracker.current]
        assert lengths == [1024, 1024, 452]
        assert tracker.current[0].start == 0
        assert tracker.current[-1].end == 2500

    def test_empty_target(self):
        tracker = make_tracker(0)
        assert tracker.current == []
        assert not tracker.has_active()

    def test_tiny_target_one_block(self):
        tracker = make_tracker(100, start_block_size=1024)
        assert [b.length for b in tracker.current] == [100]


class TestSplitting:
    def test_split_halves_with_left_bias(self):
        block = Block(start=0, length=101, level=0)
        left, right = block.split()
        assert (left.length, right.length) == (51, 50)
        assert left.start == 0 and right.start == 51
        assert left.is_left and not right.is_left
        assert left.sibling is right and right.sibling is left
        assert block.status is BlockStatus.SPLIT

    def test_advance_splits_active_blocks(self):
        tracker = make_tracker(2048, start_block_size=1024)
        assert tracker.advance_level()
        assert [b.length for b in tracker.current] == [512, 512, 512, 512]
        assert tracker.level == 1

    def test_matched_blocks_not_split(self):
        tracker = make_tracker(2048, start_block_size=1024)
        tracker.record_match(tracker.current[0])
        tracker.advance_level()
        assert len(tracker.current) == 2  # only the unmatched root split

    def test_floor_stops_recursion(self):
        tracker = make_tracker(64, start_block_size=64,
                               min_block_size=32,
                               continuation_min_block_size=16)
        # 64 -> 32,32 -> 16x4 -> stop (children would be 8 < floor 16).
        assert tracker.advance_level()
        assert tracker.advance_level()
        assert not tracker.advance_level()
        assert tracker.current == []

    def test_exhausted_status_set(self):
        tracker = make_tracker(16, start_block_size=64,
                               min_block_size=16,
                               continuation_min_block_size=16)
        (root,) = tracker.current
        assert not tracker.advance_level()
        assert root.status is BlockStatus.EXHAUSTED


class TestAdjacency:
    def test_continuation_eligibility(self):
        tracker = make_tracker(3072, start_block_size=1024)
        first, second, third = tracker.current
        tracker.record_match(second)
        assert tracker.right_adjacent_match(first)
        assert tracker.left_adjacent_match(third)
        assert tracker.continuation_eligible(first)
        assert tracker.continuation_eligible(third)

    def test_no_eligibility_without_matches(self):
        tracker = make_tracker(2048, start_block_size=1024)
        assert not any(
            tracker.continuation_eligible(block) for block in tracker.current
        )

    def test_eligibility_survives_splitting(self):
        tracker = make_tracker(2048, start_block_size=1024)
        first, second = tracker.current
        tracker.record_match(first)
        tracker.advance_level()
        left_child = tracker.current[0]
        assert left_child.start == 1024
        assert tracker.left_adjacent_match(left_child)


class TestLocalAnchor:
    def test_nearby_match_found(self):
        tracker = make_tracker(8192, start_block_size=1024,
                               local_neighborhood=2048)
        blocks = tracker.current
        tracker.record_match(blocks[0])  # [0, 1024)
        anchor = tracker.local_anchor(blocks[2])  # [2048, 3072)
        assert anchor == (0, 1024)

    def test_far_match_not_anchored(self):
        tracker = make_tracker(8192, start_block_size=1024,
                               local_neighborhood=512)
        blocks = tracker.current
        tracker.record_match(blocks[0])
        assert tracker.local_anchor(blocks[4]) is None

    def test_prefers_closest(self):
        tracker = make_tracker(8192, start_block_size=1024,
                               local_neighborhood=8192)
        blocks = tracker.current
        tracker.record_match(blocks[0])
        tracker.record_match(blocks[3])  # [3072, 4096)
        anchor = tracker.local_anchor(blocks[4])
        assert anchor == (3072, 1024)
