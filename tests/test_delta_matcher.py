"""Tests for the greedy reference matcher behind both delta coders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import Add, Copy, ReferenceMatcher, apply_instructions, compute_instructions


class TestReferenceMatcher:
    def test_bad_seed_length_rejected(self):
        with pytest.raises(ValueError):
            ReferenceMatcher(b"data", seed_length=0)

    def test_candidates_for_planted_seed(self):
        reference = b"A" * 50 + b"UNIQUESEEDBLOCK!" + b"B" * 50
        matcher = ReferenceMatcher(reference, seed_length=16)
        import repro.delta.matcher as m

        from repro.hashing.scan import window_hashes

        target_hash = int(
            window_hashes(b"UNIQUESEEDBLOCK!", 16, m._SEED_HASHER)[0]
        )
        assert 50 in matcher.candidates(target_hash)

    def test_empty_reference_has_no_candidates(self):
        matcher = ReferenceMatcher(b"", seed_length=16)
        assert matcher.candidates(12345) == []

    def test_mismatched_matcher_rejected(self):
        matcher = ReferenceMatcher(b"one reference here", seed_length=4)
        with pytest.raises(ValueError):
            compute_instructions(b"another reference!", b"target", matcher=matcher)


class TestComputeInstructions:
    def test_identical_files_single_copy(self):
        data = b"identical content that is long enough to match" * 4
        instructions = compute_instructions(data, data)
        assert instructions == [Copy(0, len(data))]

    def test_disjoint_files_all_literals(self):
        old = b"A" * 200
        new = b"B" * 200
        instructions = compute_instructions(old, new)
        assert all(isinstance(i, Add) for i in instructions)

    def test_insertion_produces_copy_add_copy(self):
        old = bytes(range(256)) * 4
        new = old[:500] + b"INSERTED-CONTENT-HERE" + old[500:]
        instructions = compute_instructions(old, new)
        assert apply_instructions(old, instructions) == new
        copies = [i for i in instructions if isinstance(i, Copy)]
        assert sum(c.length for c in copies) >= len(old) - 32

    def test_backward_extension_shrinks_literals(self):
        """A match is extended leftwards into pending literal bytes."""
        old = b"x" * 64 + b"0123456789abcdefghijklmnop" + b"y" * 64
        # New file starts cold (literals), then joins old content a few
        # bytes *before* a seed boundary would land.
        new = b"???" + b"6789abcdefghijklmnop" + b"y" * 64
        instructions = compute_instructions(old, new, seed_length=8)
        assert apply_instructions(old, instructions) == new
        literal_bytes = sum(
            len(i.data) for i in instructions if isinstance(i, Add)
        )
        assert literal_bytes <= 4

    def test_empty_target(self):
        assert compute_instructions(b"ref", b"") == []

    def test_empty_reference(self):
        instructions = compute_instructions(b"", b"new content")
        assert apply_instructions(b"", instructions) == b"new content"

    @given(st.binary(max_size=400), st.binary(max_size=400))
    @settings(max_examples=60)
    def test_roundtrip_arbitrary_pairs(self, reference, target):
        instructions = compute_instructions(reference, target, seed_length=8)
        assert apply_instructions(reference, instructions) == target

    def test_shared_matcher_consistent(self):
        reference = b"shared reference content " * 20
        matcher = ReferenceMatcher(reference)
        target = reference[10:200] + b"tail"
        with_shared = compute_instructions(reference, target, matcher=matcher)
        without = compute_instructions(reference, target)
        assert apply_instructions(reference, with_shared) == apply_instructions(
            reference, without
        )
