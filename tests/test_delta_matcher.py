"""Tests for the greedy reference matcher behind both delta coders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import Add, Copy, ReferenceMatcher, apply_instructions, compute_instructions


def _naive_prefix(a, b) -> int:
    limit = min(len(a), len(b))
    count = 0
    while count < limit and a[count] == b[count]:
        count += 1
    return count


def _naive_suffix(a, b, limit) -> int:
    limit = min(limit, len(a), len(b))
    count = 0
    while count < limit and a[len(a) - 1 - count] == b[len(b) - 1 - count]:
        count += 1
    return count


class TestCommonPrefixLength:
    """The chunked XOR scan must agree with the per-byte definition."""

    def _check(self, a: bytes, b: bytes) -> None:
        from repro.delta.matcher import _common_prefix_length

        assert _common_prefix_length(
            memoryview(a), memoryview(b)
        ) == _naive_prefix(a, b)

    def test_boundary_cases(self):
        self._check(b"", b"")
        self._check(b"", b"abc")
        self._check(b"a", b"a")
        self._check(b"a", b"b")
        self._check(b"same", b"same")
        self._check(b"same-prefix-X", b"same-prefix-Y")

    def test_mismatch_at_every_offset_near_chunk_edges(self):
        base = bytes(range(256)) * 2
        for at in (0, 1, 62, 63, 64, 65, 127, 128, 200, 511):
            mutated = bytearray(base)
            mutated[at] ^= 0xFF
            self._check(base, bytes(mutated))

    def test_long_identical_run_then_mismatch(self):
        a = b"\x7f" * 100_000 + b"A"
        b = b"\x7f" * 100_000 + b"B"
        self._check(a, b)

    @given(st.binary(max_size=300), st.binary(max_size=300))
    @settings(max_examples=80)
    def test_matches_naive_on_arbitrary_pairs(self, a, b):
        self._check(a, b)

    @given(st.binary(min_size=1, max_size=500), st.integers(0, 499))
    @settings(max_examples=80)
    def test_single_flip(self, data, position):
        position %= len(data)
        mutated = bytearray(data)
        mutated[position] ^= 0x01
        self._check(data, bytes(mutated))


class TestCommonSuffixLength:
    def _check(self, a: bytes, b: bytes, limit: int) -> None:
        from repro.delta.matcher import _common_suffix_length

        assert _common_suffix_length(
            memoryview(a), memoryview(b), limit
        ) == _naive_suffix(a, b, limit)

    def test_boundary_cases(self):
        self._check(b"", b"", 10)
        self._check(b"abc", b"", 10)
        self._check(b"xyz-tail", b"abc-tail", 100)
        self._check(b"tail", b"tail", 0)  # limit zero: no match allowed
        self._check(b"tail", b"tail", 2)

    def test_limit_caps_the_scan(self):
        from repro.delta.matcher import _common_suffix_length

        a = b"AAAA" + b"same" * 30
        b = b"BBBB" + b"same" * 30
        assert _common_suffix_length(memoryview(a), memoryview(b), 7) == 7

    def test_mismatch_near_chunk_edges(self):
        base = bytes(range(256))
        for at in (0, 1, 63, 64, 65, 191, 192, 255):
            mutated = bytearray(base)
            mutated[at] ^= 0xFF
            self._check(base, bytes(mutated), len(base))

    @given(
        st.binary(max_size=300), st.binary(max_size=300), st.integers(0, 300)
    )
    @settings(max_examples=80)
    def test_matches_naive_on_arbitrary_pairs(self, a, b, limit):
        self._check(a, b, limit)


class TestReferenceMatcher:
    def test_bad_seed_length_rejected(self):
        with pytest.raises(ValueError):
            ReferenceMatcher(b"data", seed_length=0)

    def test_candidates_for_planted_seed(self):
        reference = b"A" * 50 + b"UNIQUESEEDBLOCK!" + b"B" * 50
        matcher = ReferenceMatcher(reference, seed_length=16)
        import repro.delta.matcher as m

        from repro.hashing.scan import window_hashes

        target_hash = int(
            window_hashes(b"UNIQUESEEDBLOCK!", 16, m._SEED_HASHER)[0]
        )
        assert 50 in matcher.candidates(target_hash)

    def test_empty_reference_has_no_candidates(self):
        matcher = ReferenceMatcher(b"", seed_length=16)
        assert matcher.candidates(12345).size == 0

    def test_mismatched_matcher_rejected(self):
        matcher = ReferenceMatcher(b"one reference here", seed_length=4)
        with pytest.raises(ValueError):
            compute_instructions(b"another reference!", b"target", matcher=matcher)


class TestComputeInstructions:
    def test_identical_files_single_copy(self):
        data = b"identical content that is long enough to match" * 4
        instructions = compute_instructions(data, data)
        assert instructions == [Copy(0, len(data))]

    def test_disjoint_files_all_literals(self):
        old = b"A" * 200
        new = b"B" * 200
        instructions = compute_instructions(old, new)
        assert all(isinstance(i, Add) for i in instructions)

    def test_insertion_produces_copy_add_copy(self):
        old = bytes(range(256)) * 4
        new = old[:500] + b"INSERTED-CONTENT-HERE" + old[500:]
        instructions = compute_instructions(old, new)
        assert apply_instructions(old, instructions) == new
        copies = [i for i in instructions if isinstance(i, Copy)]
        assert sum(c.length for c in copies) >= len(old) - 32

    def test_backward_extension_shrinks_literals(self):
        """A match is extended leftwards into pending literal bytes."""
        old = b"x" * 64 + b"0123456789abcdefghijklmnop" + b"y" * 64
        # New file starts cold (literals), then joins old content a few
        # bytes *before* a seed boundary would land.
        new = b"???" + b"6789abcdefghijklmnop" + b"y" * 64
        instructions = compute_instructions(old, new, seed_length=8)
        assert apply_instructions(old, instructions) == new
        literal_bytes = sum(
            len(i.data) for i in instructions if isinstance(i, Add)
        )
        assert literal_bytes <= 4

    def test_empty_target(self):
        assert compute_instructions(b"ref", b"") == []

    def test_empty_reference(self):
        instructions = compute_instructions(b"", b"new content")
        assert apply_instructions(b"", instructions) == b"new content"

    @given(st.binary(max_size=400), st.binary(max_size=400))
    @settings(max_examples=60)
    def test_roundtrip_arbitrary_pairs(self, reference, target):
        instructions = compute_instructions(reference, target, seed_length=8)
        assert apply_instructions(reference, instructions) == target

    def test_shared_matcher_consistent(self):
        reference = b"shared reference content " * 20
        matcher = ReferenceMatcher(reference)
        target = reference[10:200] + b"tail"
        with_shared = compute_instructions(reference, target, matcher=matcher)
        without = compute_instructions(reference, target)
        assert apply_instructions(reference, with_shared) == apply_instructions(
            reference, without
        )
