"""Tests for the byte-oriented varints used in delta streams."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io import decode_uvarint, encode_uvarint, uvarint_size


class TestEncodeUvarint:
    def test_zero(self):
        assert encode_uvarint(0) == b"\x00"

    def test_one_byte_boundary(self):
        assert encode_uvarint(127) == b"\x7f"
        assert len(encode_uvarint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_continuation_bits(self):
        encoded = encode_uvarint(300)
        assert encoded[0] & 0x80  # continuation set
        assert not encoded[-1] & 0x80  # final byte clear


class TestDecodeUvarint:
    def test_with_offset(self):
        payload = b"\xff" + encode_uvarint(1000)
        value, end = decode_uvarint(payload, 1)
        assert value == 1000
        assert end == len(payload)

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80", 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"", 0)

    def test_overlong_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80" * 10 + b"\x01", 0)


class TestUvarintSize:
    def test_matches_encoding(self):
        for value in (0, 1, 127, 128, 16383, 16384, 2**32, 2**60):
            assert uvarint_size(value) == len(encode_uvarint(value))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            uvarint_size(-5)


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_roundtrip(value):
    encoded = encode_uvarint(value)
    decoded, end = decode_uvarint(encoded, 0)
    assert decoded == value
    assert end == len(encoded)
    assert uvarint_size(value) == len(encoded)
