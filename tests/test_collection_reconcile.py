"""Tests for Merkle-trie manifest reconciliation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import (
    Manifest,
    diff_manifests,
    reconcile_manifests,
    sync_collection,
)
from repro.bench import ZdeltaMethod
from repro.workloads import make_web_collection


def manifests_from(
    client_files: dict[str, bytes], server_files: dict[str, bytes]
) -> tuple[Manifest, Manifest]:
    return (
        Manifest.of_collection(client_files),
        Manifest.of_collection(server_files),
    )


def assert_same_diff(client: Manifest, server: Manifest) -> int:
    """Reconciliation must match the manifest diff; returns its cost."""
    expected = diff_manifests(client, server)
    diff, channel = reconcile_manifests(client, server)
    assert diff.changed == expected.changed
    assert diff.added == expected.added
    assert diff.removed == expected.removed
    assert sorted(diff.unchanged) == sorted(expected.unchanged)
    return channel.stats.total_bytes


class TestCorrectness:
    def test_identical_collections_one_digest(self):
        files = {f"f{i}": bytes([i]) for i in range(100)}
        client, server = manifests_from(files, files)
        cost = assert_same_diff(client, server)
        # Root digest + flag + tiny reply.
        assert cost < 16

    def test_empty_collections(self):
        client, server = manifests_from({}, {})
        assert_same_diff(client, server)

    def test_single_change(self):
        files = {f"f{i}": bytes([i]) for i in range(200)}
        changed = dict(files)
        changed["f7"] = b"different"
        client, server = manifests_from(files, changed)
        assert_same_diff(client, server)

    def test_additions_and_removals(self):
        client_files = {f"c{i}": b"x" for i in range(50)}
        server_files = {f"c{i}": b"x" for i in range(25)}  # half removed
        server_files.update({f"s{i}": b"y" for i in range(10)})  # added
        client, server = manifests_from(client_files, server_files)
        assert_same_diff(client, server)

    def test_disjoint_collections(self):
        client, server = manifests_from(
            {f"a{i}": b"1" for i in range(30)},
            {f"b{i}": b"2" for i in range(30)},
        )
        assert_same_diff(client, server)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=10), st.binary(max_size=8),
            max_size=40,
        ),
        st.dictionaries(
            st.text(min_size=1, max_size=10), st.binary(max_size=8),
            max_size=40,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_collections(self, client_files, server_files):
        client, server = manifests_from(client_files, server_files)
        assert_same_diff(client, server)

    def test_parameter_validation(self):
        client, server = manifests_from({}, {})
        with pytest.raises(ValueError):
            reconcile_manifests(client, server, digest_bytes=0)
        with pytest.raises(ValueError):
            reconcile_manifests(client, server, leaf_size=0)


class TestCost:
    def test_few_changes_beat_manifest(self):
        """The point of the technique: cost ~ changes, not collection size."""
        files = {f"file{i:05d}.html": (b"v1-%d" % i) for i in range(500)}
        changed = dict(files)
        changed["file00123.html"] = b"v2"
        client, server = manifests_from(files, changed)
        cost = assert_same_diff(client, server)
        assert cost < server.wire_bytes() / 10

    def test_many_changes_degrade_gracefully(self):
        collection = make_web_collection(page_count=120, days=(0, 7), seed=5)
        client, server = manifests_from(
            collection.snapshot(0), collection.snapshot(7)
        )
        cost = assert_same_diff(client, server)
        # Never catastrophically worse than the plain manifest.
        assert cost < 3 * server.wire_bytes()

    def test_cost_scales_with_changes_not_size(self):
        def cost_for(total: int, changes: int) -> int:
            files = {f"f{i:06d}": b"base" for i in range(total)}
            new_files = dict(files)
            for i in range(changes):
                new_files[f"f{i:06d}"] = b"new!"
            client, server = manifests_from(files, new_files)
            return assert_same_diff(client, server)

        small_collection = cost_for(200, 2)
        large_collection = cost_for(800, 2)
        # 4x the files should cost far less than 4x the bytes.
        assert large_collection < 2.5 * small_collection


class TestIntegration:
    def test_sync_collection_with_reconcile(self):
        collection = make_web_collection(page_count=60, days=(0, 1), seed=6)
        report = sync_collection(
            collection.snapshot(0),
            collection.snapshot(1),
            ZdeltaMethod(),
            change_detection="reconcile",
        )
        assert report.reconstructed == collection.snapshot(1)

    def test_reconcile_cheaper_when_collection_mostly_static(self):
        files = {f"f{i:05d}": bytes([i % 250]) * 50 for i in range(300)}
        server_files = dict(files)
        server_files["f00005"] = b"changed content"
        manifest_report = sync_collection(
            files, server_files, ZdeltaMethod(), change_detection="manifest"
        )
        reconcile_report = sync_collection(
            files, server_files, ZdeltaMethod(), change_detection="reconcile"
        )
        assert reconcile_report.reconstructed == server_files
        assert reconcile_report.total_bytes < manifest_report.total_bytes / 5

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            sync_collection({}, {}, ZdeltaMethod(), change_detection="bogus")
