"""Tests for the similarity metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import block_divergence, levenshtein


def brute_force_levenshtein(a: bytes, b: bytes) -> int:
    table = list(range(len(b) + 1))
    for i, byte_a in enumerate(a, 1):
        new_table = [i]
        for j, byte_b in enumerate(b, 1):
            new_table.append(
                min(
                    table[j] + 1,
                    new_table[j - 1] + 1,
                    table[j - 1] + (0 if byte_a == byte_b else 1),
                )
            )
        table = new_table
    return table[len(b)]


class TestLevenshtein:
    def test_known_values(self):
        assert levenshtein(b"kitten", b"sitting") == 3
        assert levenshtein(b"abc", b"abc") == 0
        assert levenshtein(b"", b"abc") == 3
        assert levenshtein(b"abc", b"") == 3
        assert levenshtein(b"", b"") == 0

    def test_symmetry(self):
        assert levenshtein(b"flaw", b"lawn") == levenshtein(b"lawn", b"flaw")

    @given(st.binary(max_size=40), st.binary(max_size=40))
    @settings(max_examples=60)
    def test_matches_brute_force(self, a, b):
        assert levenshtein(a, b) == brute_force_levenshtein(a, b)

    @given(st.binary(max_size=40), st.binary(max_size=40),
           st.integers(0, 12))
    @settings(max_examples=60)
    def test_banded_agrees_or_reports_overflow(self, a, b, budget):
        true_distance = brute_force_levenshtein(a, b)
        banded = levenshtein(a, b, max_distance=budget)
        if true_distance <= budget:
            assert banded == true_distance
        else:
            assert banded == budget + 1

    def test_band_much_faster_path_usable_on_long_inputs(self):
        a = b"x" * 20000
        b = b"x" * 19990 + b"y" * 10
        assert levenshtein(a, b, max_distance=32) == 10

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            levenshtein(b"a", b"b", max_distance=-1)


class TestBlockDivergence:
    def test_identical_is_zero(self):
        data = b"shared content " * 100
        assert block_divergence(data, data) == 0.0

    def test_disjoint_is_one(self):
        import random

        rng = random.Random(0)
        a = bytes(rng.randrange(256) for _ in range(5000))
        b = bytes(rng.randrange(256) for _ in range(5000))
        assert block_divergence(a, b) > 0.95

    def test_partial(self):
        import random

        rng = random.Random(1)
        a = bytes(rng.randrange(256) for _ in range(8000))
        b = a[:4096] + bytes(rng.randrange(256) for _ in range(4096))
        divergence = block_divergence(a, b, block_size=64)
        assert 0.3 < divergence < 0.7

    def test_alignment_insensitive(self):
        """An insertion shifts every block boundary; divergence must stay
        near zero because windows are compared at all offsets."""
        import random

        rng = random.Random(2)
        a = bytes(rng.randrange(256) for _ in range(8000))
        b = b"INSERT" + a
        assert block_divergence(a, b, block_size=64) < 0.05

    def test_empty_cases(self):
        assert block_divergence(b"abc", b"") == 0.0
        assert block_divergence(b"", b"some content here") == 1.0

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            block_divergence(b"a", b"b", block_size=0)
