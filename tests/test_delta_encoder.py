"""Tests for the zdelta-style coder."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import zdelta_decode, zdelta_encode, zdelta_size
from repro.exceptions import DeltaFormatError
from tests.conftest import make_version_pair


class TestRoundtrip:
    def test_similar_files(self):
        old, new = make_version_pair(seed=1)
        delta = zdelta_encode(old, new)
        assert zdelta_decode(old, delta) == new

    def test_empty_target(self):
        delta = zdelta_encode(b"reference", b"")
        assert zdelta_decode(b"reference", delta) == b""

    def test_empty_reference(self):
        delta = zdelta_encode(b"", b"fresh content")
        assert zdelta_decode(b"", delta) == b"fresh content"

    @given(st.binary(max_size=300), st.binary(max_size=300))
    @settings(max_examples=50)
    def test_arbitrary_pairs(self, reference, target):
        assert zdelta_decode(reference, zdelta_encode(reference, target)) == target


class TestCompression:
    def test_similar_files_much_smaller_than_target(self):
        old, new = make_version_pair(seed=2)
        assert zdelta_size(old, new) < len(new) // 10

    def test_identical_files_tiny_delta(self):
        data = b"exactly the same bytes " * 200
        assert zdelta_size(data, data) < 64

    def test_compressible_literals(self):
        """Unmatched content should still benefit from the zlib pass."""
        old = b"12345"
        new = b"the same sentence repeated " * 100
        assert zdelta_size(old, new) < len(new) // 4


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(DeltaFormatError):
            zdelta_decode(b"ref", b"\x00garbage")

    def test_empty_delta(self):
        with pytest.raises(DeltaFormatError):
            zdelta_decode(b"ref", b"")

    def test_truncated_stream(self):
        old, new = make_version_pair(seed=3, nbytes=2000)
        delta = zdelta_encode(old, new)
        with pytest.raises(DeltaFormatError):
            zdelta_decode(old, delta[: len(delta) // 2])

    def test_corrupt_body(self):
        old, new = make_version_pair(seed=4, nbytes=2000)
        delta = bytearray(zdelta_encode(old, new))
        delta[len(delta) // 2] ^= 0xFF
        with pytest.raises(DeltaFormatError):
            zdelta_decode(old, bytes(delta))
