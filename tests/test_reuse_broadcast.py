"""Tests for the dedup store, similarity index, and broadcast server."""

from __future__ import annotations

import random

import pytest

from repro.reuse import (
    BroadcastDeltaServer,
    DedupStore,
    DeltaMemoCache,
    SimilarityIndex,
)
from repro.workloads import make_fleet


def _random_bytes(seed: int, nbytes: int = 8_192) -> bytes:
    return random.Random(seed).randbytes(nbytes)


def _edited(data: bytes, seed: int = 1, edits: int = 4) -> bytes:
    rng = random.Random(seed)
    out = bytearray(data)
    for _ in range(edits):
        at = rng.randrange(len(out) - 100)
        out[at : at + 40] = rng.randbytes(60)
    return bytes(out)


class TestDedupStore:
    def test_put_dedups_identical_content(self):
        store = DedupStore()
        fp1, new1 = store.put(b"same bytes" * 100)
        fp2, new2 = store.put(b"same bytes" * 100)
        assert fp1 == fp2
        assert new1 is True and new2 is False
        assert store.dedup_hits == 1
        assert store.bytes_deduped == len(b"same bytes" * 100)
        assert len(store) == 1

    def test_ingest_maps_names_to_fingerprints(self):
        store = DedupStore()
        files = {"a": b"one" * 50, "b": b"two" * 50, "c": b"one" * 50}
        fingerprints = store.ingest(files)
        assert set(fingerprints) == {"a", "b", "c"}
        assert fingerprints["a"] == fingerprints["c"]
        assert len(store) == 2  # two distinct contents

    def test_get_roundtrip_and_missing(self):
        store = DedupStore()
        fingerprint, _ = store.put(b"payload")
        assert store.get(fingerprint) == b"payload"
        assert fingerprint in store
        with pytest.raises(KeyError):
            store.get(b"\x00" * 16)

    def test_disk_backed_persistence(self, tmp_path):
        first = DedupStore(tmp_path / "server")
        fingerprint, _ = first.put(b"durable blob" * 64)
        # A fresh store over the same directory indexes the blob lazily.
        second = DedupStore(tmp_path / "server")
        assert fingerprint in second
        assert second.get(fingerprint) == b"durable blob" * 64
        _fp, was_new = second.put(b"durable blob" * 64)
        assert was_new is False  # found on disk, not rewritten


class TestSimilarityIndex:
    def test_finds_similar_sibling(self):
        index = SimilarityIndex()
        base = _random_bytes(3)
        index.add("similar", _edited(base, seed=5))
        index.add("unrelated", _random_bytes(99))
        best = index.best_reference(data=base, threshold=0.5)
        assert best is not None
        name, resemblance = best
        assert name == "similar"
        assert resemblance > 0.5

    def test_below_threshold_returns_none(self):
        index = SimilarityIndex()
        index.add("unrelated", _random_bytes(42))
        assert index.best_reference(data=_random_bytes(43)) is None

    def test_exclude_and_discard(self):
        index = SimilarityIndex()
        base = _random_bytes(7)
        index.add("self", base)
        index.add("close", _edited(base, seed=2))
        best = index.best_reference(data=base, exclude=("self",))
        assert best is not None and best[0] == "close"
        index.discard("close")
        assert "close" not in index
        assert index.best_reference(data=base, exclude=("self",)) is None

    def test_ties_break_by_name(self):
        index = SimilarityIndex()
        data = _random_bytes(11)
        index.add("bbb", data)
        index.add("aaa", data)
        best = index.best_reference(data=data)
        assert best is not None and best[0] == "aaa"


class TestBroadcastServer:
    @pytest.fixture()
    def fleet(self):
        return make_fleet(clients=4, files=8, versions=3, seed=21,
                          mean_size=6_000)

    def _server(self, fleet, **kwargs):
        server = BroadcastDeltaServer(
            fleet.server, memo=DeltaMemoCache(), dedup=DedupStore(), **kwargs
        )
        for version in fleet.versions[:-1]:
            server.ingest_history(version)
        return server

    def test_updates_reconstruct_exactly(self, fleet):
        server = self._server(fleet)
        for client in fleet.clients:
            update = server.serve(client.files)
            assert update.reconstructed == fleet.server
        assert server.clients_served == len(fleet.clients)

    def test_decision_actions_cover_the_cases(self, fleet):
        server = self._server(fleet)
        client = fleet.clients[0]
        update = server.serve(client.files)
        actions = {d.action for d in update.decisions}
        assert "self-delta" in actions
        # The client is missing files, so added/missing files went out
        # as sibling deltas or full transfers.
        assert actions & {"sibling-delta", "full"}
        assert update.wire_bytes == sum(
            d.wire_bytes for d in update.decisions
        )

    def test_history_ingest_gives_dedup_hits(self, fleet):
        server = self._server(fleet)
        update = server.serve(fleet.clients[0].files)
        # The client's stale files are ingested past versions, so their
        # references come from the dedup store.
        assert update.dedup_hits > 0
        assert all(
            d.dedup_hit
            for d in update.decisions
            if d.action == "self-delta"
        )

    def test_second_client_at_same_staleness_hits_memo(self, fleet):
        server = self._server(fleet)
        same_state = dict(fleet.clients[0].files)
        first = server.serve(same_state)
        second = server.serve(same_state)
        assert second.delta_memo_hits > 0
        assert second.delta_memo_misses == 0
        # Byte-identity: wire accounting is exactly reproduced.
        assert second.wire_bytes == first.wire_bytes
        assert [d.wire_bytes for d in second.decisions] == [
            d.wire_bytes for d in first.decisions
        ]
        assert any(
            d.memo_hit for d in second.decisions if d.action == "self-delta"
        )

    def test_wire_bytes_deterministic_across_servers(self, fleet):
        first = self._server(fleet)
        second = self._server(fleet)
        for client in fleet.clients:
            assert (
                first.serve(client.files).wire_bytes
                == second.serve(client.files).wire_bytes
            )

    def test_sibling_refs_cheaper_than_full(self, fleet):
        with_siblings = self._server(fleet)
        without = self._server(fleet, resemblance_threshold=2.0)
        sibling_wire = sum(
            with_siblings.serve(c.files).wire_bytes for c in fleet.clients
        )
        full_wire = sum(
            without.serve(c.files).wire_bytes for c in fleet.clients
        )
        used = sum(
            with_siblings.serve(c.files).sibling_refs_used
            for c in fleet.clients
        )
        assert used > 0
        assert sibling_wire < full_wire

    def test_unchanged_files_cost_zero_bytes(self):
        files = {"a": b"stable content" * 200}
        server = BroadcastDeltaServer(
            files, memo=DeltaMemoCache(), dedup=DedupStore()
        )
        update = server.serve(dict(files))
        assert update.decisions[0].action == "unchanged"
        assert update.wire_bytes == 0

    def test_client_with_nothing_gets_full_or_sibling(self):
        base = _random_bytes(55)
        files = {"a": base, "b": _edited(base, seed=9)}
        server = BroadcastDeltaServer(
            files, memo=DeltaMemoCache(), dedup=DedupStore()
        )
        update = server.serve({})
        assert update.reconstructed == files
        assert all(d.action == "full" for d in update.decisions)
