"""Tests for the anti-entropy store scrubber and its CLI surface."""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.collection import (
    CollectionStore,
    Manifest,
    ScrubReport,
    StoreScrubber,
    save_manifest,
)
from repro.net.chaos import BitRotPlan
from repro.resilience import QUARANTINE_DIR


@pytest.fixture
def collection():
    rng = random.Random(31)
    return {
        f"d{i % 2}/f{i:02d}.bin": rng.randbytes(rng.randrange(1500, 6000))
        for i in range(10)
    }


@pytest.fixture
def store(tmp_path, collection):
    store = CollectionStore(tmp_path / "store")
    store.write_collection(collection)
    return store


@pytest.fixture
def manifest(collection):
    return Manifest.of_collection(collection)


class TestScrubDetection:
    def test_clean_store_scrubs_clean(self, store, manifest):
        report = StoreScrubber(store, manifest).scrub()
        assert report.completed and report.clean
        assert report.scanned == report.ok == 10
        assert report.bytes_read > 0
        assert report.quarantined == []

    def test_bit_rot_detected_and_quarantined(self, store, manifest):
        victims = BitRotPlan(seed=7, files_affected=2).apply(store.root)
        report = StoreScrubber(store, manifest).scrub()
        assert report.divergent == victims
        assert not report.clean
        assert len(report.quarantined) == 2
        for copy, name in zip(report.quarantined, victims):
            assert copy.parent.name == QUARANTINE_DIR
            # Copy mode: the rotten original stays as the delta base.
            assert store.path_for(name).is_file()
            assert copy.read_bytes() == store.read_file(name)

    def test_missing_file_detected(self, store, manifest):
        store.path_for("d0/f00.bin").unlink()
        report = StoreScrubber(store, manifest).scrub()
        assert report.missing == ["d0/f00.bin"]
        assert report.damaged == ["d0/f00.bin"]

    def test_no_quarantine_mode(self, store, manifest):
        BitRotPlan(seed=7).apply(store.root)
        report = StoreScrubber(store, manifest).scrub(quarantine=False)
        assert len(report.divergent) == 1
        assert report.quarantined == []
        assert not (store.root / QUARANTINE_DIR).exists()

    def test_validation(self, store, manifest):
        with pytest.raises(ValueError):
            StoreScrubber(store, manifest, rate_limit_bps=0)
        with pytest.raises(ValueError):
            StoreScrubber(store, manifest).scrub(max_entries=0)


class TestCursorResume:
    def test_bounded_slices_cover_the_pass_once(
        self, tmp_path, store, manifest
    ):
        cursor = tmp_path / "cursor"
        scrubber = StoreScrubber(store, manifest, cursor_path=cursor)
        slices = []
        while True:
            part = scrubber.scrub(max_entries=3)
            slices.append(part)
            if part.completed:
                break
        assert [s.scanned for s in slices] == [3, 3, 3, 1]
        assert sum(s.ok for s in slices) == 10
        # The completed pass resets the cursor for the next one.
        assert scrubber.read_cursor() is None
        assert not cursor.exists()

    def test_cursor_survives_process_restart(
        self, tmp_path, store, manifest
    ):
        cursor = tmp_path / "cursor"
        first = StoreScrubber(store, manifest, cursor_path=cursor)
        first.scrub(max_entries=4)
        assert cursor.is_file()
        # A brand-new scrubber (new process) picks up where it stopped.
        second = StoreScrubber(store, manifest, cursor_path=cursor)
        rest = second.scrub()
        assert rest.scanned == 6
        assert rest.completed

    def test_damage_behind_the_cursor_waits_for_next_pass(
        self, tmp_path, store, manifest
    ):
        cursor = tmp_path / "cursor"
        scrubber = StoreScrubber(store, manifest, cursor_path=cursor)
        scrubber.scrub(max_entries=5)
        BitRotPlan(seed=1).apply(store.root, names=["d0/f00.bin"])
        rest = scrubber.scrub()
        assert rest.divergent == []  # first entry is behind the cursor
        next_pass = scrubber.scrub()
        assert next_pass.divergent == ["d0/f00.bin"]

    def test_unrecognised_cursor_restarts(self, tmp_path, store, manifest):
        cursor = tmp_path / "cursor"
        cursor.write_text("some other format\n")
        scrubber = StoreScrubber(store, manifest, cursor_path=cursor)
        assert scrubber.read_cursor() is None
        assert scrubber.scrub().scanned == 10

    def test_scrub_all_merges_slices(self, tmp_path, store, manifest):
        BitRotPlan(seed=7, files_affected=2).apply(store.root)
        scrubber = StoreScrubber(
            store, manifest, cursor_path=tmp_path / "cursor"
        )
        merged = scrubber.scrub_all()
        assert merged.completed
        assert merged.scanned == 10
        assert len(merged.divergent) == 2


class TestRateLimit:
    def test_throttle_sleeps_to_honour_budget(self, store, manifest):
        # Simulated time: reads are instant, sleeping advances the clock.
        now = [0.0]
        sleeps: list[float] = []

        def sleep(seconds: float) -> None:
            now[0] += seconds
            sleeps.append(seconds)

        scrubber = StoreScrubber(
            store,
            manifest,
            rate_limit_bps=1000,
            sleep=sleep,
            clock=lambda: now[0],
        )
        report = scrubber.scrub()
        assert report.throttle_s == pytest.approx(sum(sleeps))
        # Every byte was paid for at the configured rate.
        assert sum(sleeps) == pytest.approx(report.bytes_read / 1000)

    def test_no_limit_never_sleeps(self, store, manifest):
        def forbidden(_):  # pragma: no cover - failure path
            raise AssertionError("scrub slept without a rate limit")

        report = StoreScrubber(store, manifest, sleep=forbidden).scrub()
        assert report.throttle_s == 0.0


class TestRepair:
    def test_rotted_store_converges(self, store, manifest, collection):
        BitRotPlan(seed=7, files_affected=3, flips_per_file=2).apply(
            store.root
        )
        store.path_for("d1/f03.bin").unlink()
        scrubber = StoreScrubber(store, manifest)
        report = scrubber.scrub()
        repair = scrubber.repair(collection, report=report)
        assert repair.files_failed == 0
        for name, data in collection.items():
            assert store.read_file(name) == data
        assert scrubber.scrub_all(quarantine=False).clean

    def test_repair_without_report_rescans(self, store, manifest, collection):
        BitRotPlan(seed=9).apply(store.root)
        scrubber = StoreScrubber(store, manifest)
        scrubber.repair(collection)
        assert scrubber.scrub_all(quarantine=False).clean

    def test_repair_refuses_unknown_entries(self, store, manifest):
        store.path_for("d0/f00.bin").unlink()
        scrubber = StoreScrubber(store, manifest)
        with pytest.raises(ValueError, match="d0/f00.bin"):
            scrubber.repair({}, report=scrubber.scrub())

    def test_clean_report_is_a_cheap_noop(self, store, manifest, collection):
        scrubber = StoreScrubber(store, manifest)
        repair = scrubber.repair(collection, report=scrubber.scrub())
        assert repair.files_changed == 0
        assert repair.changed_transfer_bytes == 0

    def test_damaged_property(self, tmp_path):
        report = ScrubReport(
            root=tmp_path, divergent=["b", "a"], missing=["c", "a"]
        )
        assert report.damaged == ["a", "b", "c"]


class TestScrubCli:
    @pytest.fixture
    def cli_store(self, tmp_path, collection):
        store = CollectionStore(tmp_path / "store")
        store.write_collection(collection)
        manifest_path = tmp_path / "manifest.txt"
        save_manifest(Manifest.of_collection(collection), manifest_path)
        source = tmp_path / "source"
        for name, data in collection.items():
            path = source / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(data)
        return store, manifest_path, source

    def test_clean_scrub_exits_zero(self, cli_store, capsys):
        store, manifest_path, _ = cli_store
        code = main(
            ["scrub", str(store.root), "--manifest", str(manifest_path)]
        )
        assert code == 0
        assert "10 ok" in capsys.readouterr().out

    def test_divergence_exits_nonzero_json(self, cli_store, capsys):
        store, manifest_path, _ = cli_store
        BitRotPlan(seed=7).apply(store.root)
        code = main(
            ["scrub", str(store.root), "--manifest", str(manifest_path),
             "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert len(payload["divergent"]) == 1

    def test_repair_restores_and_exits_zero(self, cli_store, capsys):
        store, manifest_path, source = cli_store
        BitRotPlan(seed=7, files_affected=2).apply(store.root)
        code = main(
            ["scrub", str(store.root), "--manifest", str(manifest_path),
             "--repair", "--source", str(source)]
        )
        assert code == 0
        assert "repaired" in capsys.readouterr().out

    def test_missing_manifest_is_usage_error(self, cli_store, capsys):
        store, _, _ = cli_store
        assert main(["scrub", str(store.root)]) == 2

    def test_soak_smoke(self, tmp_path, capsys):
        code = main(["scrub", "--soak", "--seeds", "1",
                     "--out", str(tmp_path / "soak.json")])
        assert code == 0
        payload = json.loads((tmp_path / "soak.json").read_text())
        assert payload["all_converged"] is True


class TestRecoverPurge:
    @pytest.fixture
    def quarantined_store(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "good.bin").write_bytes(b"fine")
        (root / "orphan.bin.repro.tmp").write_bytes(b"torn write")
        return root

    def test_without_flag_quarantine_is_kept(self, quarantined_store, capsys):
        assert main(["recover", str(quarantined_store)]) == 0
        out = capsys.readouterr().out
        assert "--purge" in out
        quarantine = quarantined_store / QUARANTINE_DIR
        assert quarantine.is_dir()
        assert list(quarantine.iterdir())

    def test_with_flag_quarantine_is_emptied(self, quarantined_store, capsys):
        assert main(["recover", str(quarantined_store), "--purge",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["purged"]) == 1
        assert not (quarantined_store / QUARANTINE_DIR).exists()
        # The non-quarantine content is untouched.
        assert (quarantined_store / "good.bin").read_bytes() == b"fine"

    def test_purge_on_clean_store_is_noop(self, tmp_path, capsys):
        root = tmp_path / "clean"
        root.mkdir()
        assert main(["recover", str(root), "--purge", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["purged"] == []
