"""Tests for the on-disk manifest store and its CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.collection import (
    Manifest,
    ManifestFormatError,
    load_manifest,
    save_manifest,
)


@pytest.fixture
def manifest():
    return Manifest.of_collection(
        {"a.txt": b"alpha", "dir/b.txt": b"beta", "c.bin": b"\x00\xff"}
    )


class TestRoundtrip:
    def test_save_load(self, manifest, tmp_path):
        path = save_manifest(manifest, tmp_path / "m.txt")
        assert load_manifest(path).entries == manifest.entries

    def test_empty_manifest(self, tmp_path):
        path = save_manifest(Manifest({}), tmp_path / "m.txt")
        assert load_manifest(path).entries == {}

    def test_format_is_sorted_text(self, manifest, tmp_path):
        path = save_manifest(manifest, tmp_path / "m.txt")
        lines = path.read_text().splitlines()
        assert lines[0] == "repro-manifest v1"
        names = [line.split(" ", 1)[1] for line in lines[1:]]
        assert names == sorted(names)

    def test_names_with_spaces_survive(self, tmp_path):
        manifest = Manifest.of_collection({"name with spaces.txt": b"x"})
        path = save_manifest(manifest, tmp_path / "m.txt")
        assert "name with spaces.txt" in load_manifest(path).entries


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestFormatError):
            load_manifest(tmp_path / "missing.txt")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("not a manifest\n")
        with pytest.raises(ManifestFormatError):
            load_manifest(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("repro-manifest v1\nnot-hex name\n")
        with pytest.raises(ManifestFormatError):
            load_manifest(path)

    def test_short_fingerprint(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("repro-manifest v1\nabcd file\n")
        with pytest.raises(ManifestFormatError):
            load_manifest(path)

    def test_duplicate_name(self, tmp_path):
        path = tmp_path / "m.txt"
        fp = "00" * 16
        path.write_text(f"repro-manifest v1\n{fp} f\n{fp} f\n")
        with pytest.raises(ManifestFormatError):
            load_manifest(path)

    def test_newline_in_name_rejected_on_save(self, tmp_path):
        manifest = Manifest({"bad\nname": b"\x00" * 16})
        with pytest.raises(ManifestFormatError):
            save_manifest(manifest, tmp_path / "m.txt")


class TestCli:
    @pytest.fixture
    def tree(self, tmp_path):
        root = tmp_path / "data"
        (root / "sub").mkdir(parents=True)
        (root / "one.txt").write_bytes(b"one")
        (root / "sub" / "two.txt").write_bytes(b"two")
        return root

    def test_create_then_clean_diff(self, tree, tmp_path, capsys):
        manifest_path = tmp_path / "snap.manifest"
        assert main(["manifest", "create", str(tree),
                     "-o", str(manifest_path)]) == 0
        assert main(["manifest", "diff", str(manifest_path), str(tree)]) == 0
        out = capsys.readouterr().out
        assert "0 changed, 0 added, 0 removed" in out

    def test_diff_detects_changes(self, tree, tmp_path, capsys):
        manifest_path = tmp_path / "snap.manifest"
        main(["manifest", "create", str(tree), "-o", str(manifest_path)])
        capsys.readouterr()
        (tree / "one.txt").write_bytes(b"one-changed")
        (tree / "three.txt").write_bytes(b"new file")
        (tree / "sub" / "two.txt").unlink()
        assert main(["manifest", "diff", str(manifest_path), str(tree)]) == 0
        out = capsys.readouterr().out
        assert "M one.txt" in out
        assert "A three.txt" in out
        assert "D sub/two.txt" in out

    def test_diff_json(self, tree, tmp_path, capsys):
        manifest_path = tmp_path / "snap.manifest"
        main(["manifest", "create", str(tree), "-o", str(manifest_path)])
        capsys.readouterr()
        (tree / "one.txt").write_bytes(b"edited")
        assert main(["manifest", "diff", str(manifest_path), str(tree),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["changed"] == ["one.txt"]
        assert payload["unchanged"] == 1
