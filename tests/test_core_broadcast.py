"""Tests for broadcast synchronization (§7: server broadcast capability)."""

from __future__ import annotations

import random

import pytest

from repro.core import ProtocolConfig
from repro.core.broadcast import synchronize_broadcast
from repro.workloads import EditProfile, TextGenerator, mutate


def make_fleet(
    client_count: int, nbytes: int = 30000, seed: int = 0
) -> tuple[dict[str, bytes], bytes]:
    """One current server file; each client holds a different stale copy."""
    generator = TextGenerator(seed)
    rng = random.Random(seed)
    current = generator.generate(nbytes, rng)
    clients = {}
    for i in range(client_count):
        clients[f"client{i:02d}"] = mutate(
            current,
            random.Random(seed * 1000 + i),
            EditProfile(edit_count=4 + i % 3, cluster_count=2,
                        min_size=8, max_size=100),
            content=generator.snippet,
        )
    return clients, current


class TestCorrectness:
    def test_every_client_reconstructs(self):
        clients, current = make_fleet(5, seed=1)
        report = synchronize_broadcast(clients, current)
        for name in clients:
            assert report.reconstructed[name] == current, name

    def test_empty_fleet(self):
        report = synchronize_broadcast({}, b"content")
        assert report.reconstructed == {}
        assert report.total_bytes() == 0

    def test_client_already_current(self):
        _clients, current = make_fleet(1, seed=2)
        report = synchronize_broadcast({"fresh": current}, current)
        assert report.reconstructed["fresh"] == current
        assert report.unicast_bytes("fresh") == 0

    def test_disjoint_client(self):
        rng = random.Random(3)
        stale = bytes(rng.randrange(256) for _ in range(20000))
        _clients, current = make_fleet(1, seed=3)
        report = synchronize_broadcast({"lost": stale}, current)
        assert report.reconstructed["lost"] == current

    def test_heterogeneous_client_sizes(self):
        _clients, current = make_fleet(1, seed=4)
        fleet = {
            "empty": b"",
            "tiny": current[:50],
            "half": current[: len(current) // 2],
            "superset": current + b"extra trailing bytes",
        }
        report = synchronize_broadcast(fleet, current)
        for name in fleet:
            assert report.reconstructed[name] == current, name

    def test_without_decomposable(self):
        clients, current = make_fleet(2, seed=5)
        config = ProtocolConfig(use_decomposable=False)
        report = synchronize_broadcast(clients, current, config)
        for name in clients:
            assert report.reconstructed[name] == current


class TestEconomics:
    def test_shared_stream_independent_of_fleet_size(self):
        clients_small, current = make_fleet(2, seed=6)
        clients_large, _ = make_fleet(8, seed=6)
        small = synchronize_broadcast(clients_small, current)
        large = synchronize_broadcast(clients_large, current)
        assert small.shared_bytes == large.shared_bytes

    def test_per_client_server_egress_falls_with_fleet_size(self):
        """The broadcast case: server egress per client = shared/k +
        that client's private s2c traffic; it must decrease in k."""
        _clients, current = make_fleet(1, seed=7)

        def egress_per_client(k: int) -> float:
            clients, _ = make_fleet(k, seed=7)
            report = synchronize_broadcast(clients, current)
            private_s2c = sum(
                stats.server_to_client_bytes
                for stats in report.per_client_stats.values()
            )
            return (report.shared_bytes + private_s2c) / k

        assert egress_per_client(6) < egress_per_client(2)

    def test_decomposable_halves_shared_stream(self):
        clients, current = make_fleet(1, seed=8)
        with_it = synchronize_broadcast(clients, current)
        without = synchronize_broadcast(
            clients, current, ProtocolConfig(use_decomposable=False)
        )
        assert with_it.shared_bytes < 0.75 * without.shared_bytes
