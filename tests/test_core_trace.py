"""Tests for per-round protocol tracing."""

from __future__ import annotations

from repro.core import ProtocolConfig, synchronize
from repro.core.blocks import HashKind
from repro.core.trace import summarize_trace
from tests.conftest import make_version_pair


def traced(seed: int = 800, **overrides):
    old, new = make_version_pair(seed=seed, nbytes=30000, edits=8)
    config = ProtocolConfig(collect_trace=True, **overrides)
    result = synchronize(old, new, config)
    assert result.reconstructed == new
    return result


class TestTraceCollection:
    def test_disabled_by_default(self):
        old, new = make_version_pair(seed=801, nbytes=5000)
        result = synchronize(old, new)
        assert result.trace == []

    def test_trace_present_when_enabled(self):
        result = traced()
        assert result.trace
        assert all(t.round_index >= 1 for t in result.trace)

    def test_block_lengths_halve_across_rounds(self):
        result = traced()
        by_round: dict[int, int] = {}
        for t in result.trace:
            by_round.setdefault(t.round_index, t.block_length)
        lengths = [by_round[r] for r in sorted(by_round)]
        for previous, current in zip(lengths, lengths[1:]):
            assert current <= previous

    def test_hash_kinds_recorded(self):
        result = traced()
        summary = summarize_trace(result.trace)
        assert summary["global_hashes"] > 0
        assert summary["continuation_hashes"] > 0
        # Decomposable suppression produces derived hashes below level 0.
        assert summary["derived_hashes"] > 0

    def test_bit_accounting_positive(self):
        result = traced()
        summary = summarize_trace(result.trace)
        assert summary["hash_bits"] > 0
        assert summary["verification_bits"] > 0

    def test_candidates_cover_accepted(self):
        result = traced()
        for t in result.trace:
            assert 0 <= t.accepted <= t.candidates
            assert 0 <= t.harvest_rate <= 1

    def test_no_derived_without_decomposable(self):
        result = traced(use_decomposable=False)
        summary = summarize_trace(result.trace)
        assert summary["derived_hashes"] == 0

    def test_describe_is_one_line(self):
        result = traced()
        line = result.trace[0].describe()
        assert "\n" not in line
        assert "round" in line

    def test_total_hashes_matches_counts(self):
        result = traced()
        for t in result.trace:
            assert t.total_hashes == sum(t.hash_counts.values())

    def test_trace_matches_stats_order_of_magnitude(self):
        """Trace bits must be a subset of the map phase accounting."""
        result = traced()
        summary = summarize_trace(result.trace)
        trace_bits = summary["hash_bits"] + summary["verification_bits"]
        assert trace_bits <= result.map_bytes * 8
