"""Exhaustive configuration-grid correctness: every sensible combination
of techniques must reconstruct exactly."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProtocolConfig, synchronize
from tests.conftest import make_version_pair


@st.composite
def protocol_configs(draw) -> ProtocolConfig:
    min_block = draw(st.sampled_from([16, 32, 64, 128, 256]))
    continuation = draw(
        st.sampled_from([None, 4, 8, 16])
    )
    if continuation is not None:
        continuation = min(continuation, min_block)
    return ProtocolConfig(
        min_block_size=min_block,
        continuation_min_block_size=continuation,
        continuation_first=draw(st.booleans()),
        use_decomposable=draw(st.booleans()),
        use_local_hashes=draw(st.booleans()),
        verification=draw(
            st.sampled_from(["trivial", "light", "group1", "group2", "group3"])
        ),
        delta_coder=draw(st.sampled_from(["zdelta", "vcdiff"])),
        global_hash_bits=draw(st.sampled_from([None, 12, 16, 24])),
        continuation_hash_bits=draw(st.sampled_from([2, 6, 10])),
        max_rounds=draw(st.sampled_from([None, 1, 3])),
        refine_boundaries=draw(st.booleans()),
        max_candidate_positions=draw(st.sampled_from([1, 4])),
    )


@given(config=protocol_configs(), seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_any_config_reconstructs_exactly(config, seed):
    old, new = make_version_pair(seed=seed, nbytes=4000, edits=4)
    result = synchronize(old, new, config)
    assert result.reconstructed == new


@given(config=protocol_configs())
@settings(max_examples=25, deadline=None)
def test_any_config_handles_pathological_inputs(config):
    cases = [
        (b"", b""),
        (b"", b"fresh"),
        (b"stale", b""),
        (b"\x00" * 3000, b"\x00" * 2999 + b"\x01"),
        (b"ab" * 1500, b"ba" * 1500),
    ]
    for old, new in cases:
        assert synchronize(old, new, config).reconstructed == new


@pytest.mark.parametrize("min_block", [16, 64, 256])
@pytest.mark.parametrize("verification", ["trivial", "group2"])
@pytest.mark.parametrize("refine", [False, True])
def test_grid_on_realistic_pair(min_block, verification, refine):
    old, new = make_version_pair(seed=5000, nbytes=15000, edits=6)
    config = ProtocolConfig(
        min_block_size=min_block,
        continuation_min_block_size=min(16, min_block),
        verification=verification,
        refine_boundaries=refine,
    )
    result = synchronize(old, new, config)
    assert result.reconstructed == new
    assert result.total_bytes < len(new)
