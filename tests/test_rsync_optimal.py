"""Tests for the idealised per-file-optimal rsync baseline."""

from __future__ import annotations

import pytest

from repro.rsync import rsync_optimal, rsync_sync
from tests.conftest import make_version_pair


class TestRsyncOptimal:
    def test_never_worse_than_any_searched_size(self):
        old, new = make_version_pair(seed=40)
        sizes = (256, 1024, 4096)
        best = rsync_optimal(old, new, block_sizes=sizes)
        for size in sizes:
            assert best.total_bytes <= rsync_sync(old, new, block_size=size).total_bytes

    def test_reports_chosen_block_size(self):
        old, new = make_version_pair(seed=41)
        sizes = (256, 2048)
        best = rsync_optimal(old, new, block_sizes=sizes)
        assert best.block_size in sizes

    def test_reconstruction_correct(self):
        old, new = make_version_pair(seed=42)
        assert rsync_optimal(old, new).reconstructed == new

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(ValueError):
            rsync_optimal(b"a", b"b", block_sizes=())

    def test_beats_default_on_lightly_edited_file(self):
        """With few edits the optimum is a large block size, beating the
        default — the gap the paper's Figures 6.1/6.2 show."""
        old, new = make_version_pair(seed=43, nbytes=60000, edits=3)
        best = rsync_optimal(old, new)
        default = rsync_sync(old, new)
        assert best.total_bytes <= default.total_bytes
