"""Tests for the benchmark method adapters."""

from __future__ import annotations

import pytest

from repro.bench import (
    FullTransferMethod,
    OursMethod,
    RsyncMethod,
    RsyncOptimalMethod,
    VcdiffMethod,
    ZdeltaMethod,
    standard_methods,
)
from repro.core import ProtocolConfig
from repro.syncmethod import MethodOutcome
from tests.conftest import make_version_pair


@pytest.fixture(scope="module")
def pair():
    return make_version_pair(seed=60, nbytes=20000, edits=8)


class TestAdapters:
    @pytest.mark.parametrize(
        "method_factory",
        [
            OursMethod,
            RsyncMethod,
            RsyncOptimalMethod,
            ZdeltaMethod,
            VcdiffMethod,
            FullTransferMethod,
        ],
    )
    def test_outcome_well_formed(self, pair, method_factory):
        old, new = pair
        outcome = method_factory().sync_file(old, new)
        assert outcome.correct
        assert outcome.total_bytes > 0
        assert (
            outcome.client_to_server + outcome.server_to_client
            == outcome.total_bytes
        )

    def test_ours_accepts_config(self, pair):
        old, new = pair
        method = OursMethod(ProtocolConfig(min_block_size=32), name="tuned")
        assert method.name == "tuned"
        assert method.sync_file(old, new).correct

    def test_rsync_name_reflects_block_size(self):
        assert RsyncMethod().name == "rsync"
        assert "1024" in RsyncMethod(block_size=1024).name

    def test_delta_methods_are_one_way(self, pair):
        old, new = pair
        for method in (ZdeltaMethod(), VcdiffMethod(), FullTransferMethod()):
            outcome = method.sync_file(old, new)
            assert outcome.client_to_server == 0

    def test_expected_ordering_on_text(self, pair):
        """zdelta <= ours < rsync default, full transfer worst."""
        old, new = pair
        sizes = {
            m.name: m.sync_file(old, new).total_bytes
            for m in (OursMethod(), RsyncMethod(), ZdeltaMethod(),
                      FullTransferMethod())
        }
        assert sizes["zdelta"] <= sizes["ours"]
        assert sizes["ours"] < sizes["rsync"]
        assert sizes["rsync"] < sizes["gzip-full"]


class TestStandardMethods:
    def test_lineup(self):
        names = [m.name for m in standard_methods()]
        assert names == ["ours", "rsync", "rsync-opt", "zdelta", "vcdiff",
                         "gzip-full"]


class TestMethodOutcome:
    def test_addition_merges(self):
        a = MethodOutcome(10, client_to_server=4, server_to_client=6,
                          breakdown={"x": 10})
        b = MethodOutcome(5, server_to_client=5, breakdown={"x": 2, "y": 3})
        merged = a + b
        assert merged.total_bytes == 15
        assert merged.breakdown == {"x": 12, "y": 3}
        assert merged.correct

    def test_addition_propagates_incorrect(self):
        bad = MethodOutcome(1, correct=False)
        assert not (MethodOutcome(1) + bad).correct


class TestNewAdapters:
    def test_multiround_adapter(self, pair):
        from repro.bench import MultiroundRsyncMethod

        old, new = pair
        outcome = MultiroundRsyncMethod().sync_file(old, new)
        assert outcome.correct
        assert outcome.total_bytes > 0

    def test_adaptive_adapter(self, pair):
        from repro.bench import AdaptiveMethod

        old, new = pair
        outcome = AdaptiveMethod().sync_file(old, new)
        assert outcome.correct
        assert "c2s/probe" in outcome.breakdown

    def test_lineage_ordering(self, pair):
        from repro.bench import MultiroundRsyncMethod, OursMethod, RsyncMethod

        old, new = pair
        rsync_bytes = RsyncMethod().sync_file(old, new).total_bytes
        multiround_bytes = MultiroundRsyncMethod().sync_file(old, new).total_bytes
        ours_bytes = OursMethod().sync_file(old, new).total_bytes
        assert ours_bytes < multiround_bytes < rsync_bytes
