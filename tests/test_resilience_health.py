"""Link-health estimation: evidence scoring, classification, the monitor.

The health layer is pure bookkeeping — deterministic, clockless — so it
is tested exhaustively at the unit level here; its integration with the
supervisor lives in test_resilience_adaptive.py.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ChannelClosedError,
    ChannelEmptyError,
    ChecksumMismatchError,
    DeltaFormatError,
    FrameCorruptionError,
    IntegrityError,
    ProtocolError,
    SyncStalledError,
)
from repro.net.faults import FaultPlan
from repro.resilience.health import (
    AttemptEvidence,
    FailureSignature,
    LinkHealthMonitor,
    TRANSIENT_SIGNATURES,
    classify_failure,
    fault_delta,
)


class TestClassifyFailure:
    @pytest.mark.parametrize(
        "error, signature",
        [
            (FrameCorruptionError("crc"), FailureSignature.CORRUPTION),
            (ChannelEmptyError("dropped"), FailureSignature.DROP),
            (ChannelClosedError("gone"), FailureSignature.DISCONNECT),
            (DeltaFormatError("bad opcode"), FailureSignature.DECODE),
            (IntegrityError("hash mismatch"), FailureSignature.DECODE),
            (ChecksumMismatchError("collision"), FailureSignature.COLLISION),
            (SyncStalledError("no progress"), FailureSignature.STALL),
            (ProtocolError("malformed"), FailureSignature.PROTOCOL),
            (RuntimeError("unknown"), FailureSignature.PROTOCOL),
        ],
    )
    def test_taxonomy(self, error, signature):
        assert classify_failure(error) == signature

    def test_subclass_order_matters(self):
        """ChannelEmptyError subclasses ChannelClosedError but must map
        to DROP, ChecksumMismatchError subclasses IntegrityError but must
        map to COLLISION, and SyncStalledError subclasses ProtocolError
        but must map to STALL — the dedicated branches win."""
        assert issubclass(ChannelEmptyError, ChannelClosedError)
        assert issubclass(ChecksumMismatchError, IntegrityError)
        assert issubclass(SyncStalledError, ProtocolError)
        assert classify_failure(ChannelEmptyError("x")) == FailureSignature.DROP
        assert (classify_failure(ChecksumMismatchError("x"))
                == FailureSignature.COLLISION)
        assert classify_failure(SyncStalledError("x")) == FailureSignature.STALL

    def test_transient_set(self):
        assert TRANSIENT_SIGNATURES == {
            FailureSignature.CORRUPTION,
            FailureSignature.DROP,
            FailureSignature.DISCONNECT,
            FailureSignature.COLLISION,
        }
        assert FailureSignature.DECODE not in TRANSIENT_SIGNATURES
        assert FailureSignature.STALL not in TRANSIENT_SIGNATURES


class TestAttemptEvidence:
    def test_clean_success_is_exactly_one(self):
        assert AttemptEvidence(ok=True).attempt_score() == 1.0

    def test_faulty_success_discounted_by_retransmission(self):
        evidence = AttemptEvidence(
            ok=True,
            corruption_events=2,
            retransmitted_bits=1000,
            payload_bits=3000,
        )
        assert evidence.attempt_score() == pytest.approx(0.75)

    def test_failure_with_salvage_scores_quarter(self):
        assert (
            AttemptEvidence(ok=False, rounds_salvaged=3).attempt_score()
            == 0.25
        )
        assert (
            AttemptEvidence(ok=False, rounds_completed=1).attempt_score()
            == 0.25
        )

    def test_total_loss_scores_zero(self):
        assert AttemptEvidence(ok=False).attempt_score() == 0.0

    def test_scores_bounded(self):
        worst = AttemptEvidence(
            ok=True, retransmitted_bits=10**9, payload_bits=0,
            drop_events=5,
        )
        assert 0.0 <= worst.attempt_score() <= 1.0


class TestLinkHealthMonitor:
    def test_pristine_monitor_scores_exactly_one(self):
        """The happy path relies on the untouched default being 1.0."""
        assert LinkHealthMonitor().score == 1.0

    def test_score_is_window_mean(self):
        monitor = LinkHealthMonitor(window=4)
        monitor.record(AttemptEvidence(ok=True))
        monitor.record(AttemptEvidence(ok=False))
        assert monitor.score == pytest.approx(0.5)

    def test_window_forgets_ancient_outage(self):
        monitor = LinkHealthMonitor(window=4)
        for _ in range(4):
            monitor.record(AttemptEvidence(ok=False))
        assert monitor.score == 0.0
        for _ in range(4):
            monitor.record(AttemptEvidence(ok=True))
        assert monitor.score == 1.0

    def test_clean_streak_resets_on_any_blemish(self):
        monitor = LinkHealthMonitor()
        monitor.record(AttemptEvidence(ok=True))
        monitor.record(AttemptEvidence(ok=True))
        assert monitor.clean_streak == 2
        # A success that needed fault absorption is not "clean".
        monitor.record(AttemptEvidence(ok=True, drop_events=1))
        assert monitor.clean_streak == 0

    def test_counters(self):
        monitor = LinkHealthMonitor()
        monitor.record(AttemptEvidence(ok=True))
        monitor.record(AttemptEvidence(ok=False))
        monitor.record(AttemptEvidence(ok=False))
        assert monitor.attempts_seen == 3
        assert monitor.failures_seen == 2

    def test_window_validation(self):
        with pytest.raises(ValueError):
            LinkHealthMonitor(window=0)


class TestFaultDelta:
    def test_none_plan_is_empty(self):
        delta = fault_delta(None, 0)
        assert delta.events == 0

    def test_counts_only_past_mark(self):
        from repro.net import Direction

        plan = FaultPlan.uniform(1.0, seed=3)
        channel = plan.channel()
        channel.send(Direction.CLIENT_TO_SERVER, b"x" * 50, "map")
        mark = len(plan.fault_log)
        assert mark >= 1
        channel.send(Direction.CLIENT_TO_SERVER, b"y" * 50, "map")
        delta = fault_delta(plan, mark)
        assert delta.events == len(plan.fault_log) - mark
        assert (
            delta.corruption + delta.drops + delta.disconnects
            == delta.events
        )
