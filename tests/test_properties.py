"""Cross-module property-based tests: the invariants that define the system."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProtocolConfig, synchronize
from repro.core.client import ClientSession
from repro.core.server import ServerSession
from repro.core.planning import plan_continuation, plan_global
from repro.hashing.strong import file_fingerprint
from repro.rsync import rsync_sync
from tests.conftest import make_version_pair


# A compact strategy for related file pairs: a base plus a mutation recipe.
@st.composite
def related_pair(draw):
    base = draw(st.binary(min_size=0, max_size=3000))
    operations = draw(
        st.lists(
            st.tuples(
                st.integers(0, max(len(base) - 1, 0)),
                st.sampled_from(("insert", "delete", "replace")),
                st.binary(min_size=1, max_size=40),
            ),
            max_size=6,
        )
    )
    new = bytearray(base)
    for position, operation, payload in sorted(operations, reverse=True):
        position = min(position, len(new))
        if operation == "insert":
            new[position:position] = payload
        elif operation == "delete":
            del new[position : position + len(payload)]
        else:
            new[position : position + len(payload)] = payload
    return base, bytes(new)


CONFIGS = [
    ProtocolConfig(),
    ProtocolConfig(verification="group3", min_block_size=32,
                   continuation_min_block_size=8),
    ProtocolConfig(use_decomposable=False, continuation_first=False),
]


@given(pair=related_pair(), config_index=st.integers(0, len(CONFIGS) - 1))
@settings(max_examples=40, deadline=None)
def test_synchronize_always_exact(pair, config_index):
    """THE invariant: reconstruction equals the server file, always."""
    old, new = pair
    result = synchronize(old, new, CONFIGS[config_index])
    assert result.reconstructed == new


@given(pair=related_pair())
@settings(max_examples=30, deadline=None)
def test_rsync_always_exact(pair):
    old, new = pair
    assert rsync_sync(old, new, block_size=128).reconstructed == new


@given(pair=related_pair())
@settings(max_examples=20, deadline=None)
def test_map_entries_are_genuine_matches(pair):
    """Every confirmed map entry must reference truly identical bytes
    (under default hash widths false accepts are essentially impossible
    at this scale, so any mismatch is a protocol bug)."""
    old, new = pair
    config = ProtocolConfig()
    server = ServerSession(new, config)
    server.set_client_length(len(old))
    client = ClientSession(old, config)
    client.process_handshake(file_fingerprint(new), len(new))
    result = synchronize(old, new, config)
    if result.used_fallback:
        return  # a collision slipped through; correctness held via fallback
    # Re-derive the map through a fresh protocol run's client.
    from repro.net import SimulatedChannel

    channel = SimulatedChannel()
    result = synchronize(old, new, config, channel)
    assert result.reconstructed == new


@given(st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_cost_never_absurd(seed):
    """Total cost stays within (compressed size + overhead) of the target:
    the protocol must never be dramatically worse than a full transfer."""
    import zlib

    old, new = make_version_pair(seed=seed, nbytes=4000, edits=4)
    result = synchronize(old, new)
    assert result.reconstructed == new
    full = len(zlib.compress(new, 9))
    assert result.total_bytes < full + 2000


@given(pair=related_pair())
@settings(max_examples=20, deadline=None)
def test_mirrored_plans_identical(pair):
    """Client and server derive bit-identical plans from shared state."""
    old, new = pair
    config = ProtocolConfig()
    server = ServerSession(new, config)
    server.set_client_length(len(old))
    client = ClientSession(old, config)
    client.process_handshake(file_fingerprint(new), len(new))
    assert client.tracker is not None
    for planner in (
        plan_continuation,
        lambda t: plan_global(t, 16),
    ):
        server_plan = planner(server.tracker)
        client_plan = planner(client.tracker)
        assert [
            (a.kind, a.width, a.block.start, a.block.length)
            for a in server_plan
        ] == [
            (a.kind, a.width, a.block.start, a.block.length)
            for a in client_plan
        ]


@given(pair=related_pair())
@settings(max_examples=20, deadline=None)
def test_stats_internally_consistent(pair):
    old, new = pair
    result = synchronize(old, new)
    stats = result.stats
    assert stats.total_bytes == (
        stats.client_to_server_bytes + stats.server_to_client_bytes
    )
    assert sum(stats.bytes_in_phase(p) for p in stats.phases()) == (
        stats.total_bytes
    )


@given(pair=related_pair())
@settings(max_examples=20, deadline=None)
def test_multiround_always_exact(pair):
    """The multiround baseline shares the exactness invariant."""
    from repro.multiround import MultiroundConfig, multiround_rsync_sync

    old, new = pair
    config = MultiroundConfig(start_block_size=256, min_block_size=32)
    assert multiround_rsync_sync(old, new, config).reconstructed == new


@given(pair=related_pair())
@settings(max_examples=15, deadline=None)
def test_batch_reconstruction_matches_single(pair):
    """Batched and single-file modes agree on the reconstruction."""
    from repro.core import synchronize_batch

    old, new = pair
    report = synchronize_batch({"f": old}, {"f": new})
    single = synchronize(old, new)
    assert report.reconstructed["f"] == single.reconstructed == new


@given(pair=related_pair())
@settings(max_examples=15, deadline=None)
def test_refinement_preserves_exactness(pair):
    old, new = pair
    config = ProtocolConfig(refine_boundaries=True)
    assert synchronize(old, new, config).reconstructed == new
