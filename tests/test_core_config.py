"""Tests for protocol configuration and auto-resolution rules."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.exceptions import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        config = ProtocolConfig()
        assert config.continuation_enabled

    def test_min_block_too_small(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(min_block_size=1)

    def test_start_below_min_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(start_block_size=32, min_block_size=64)

    def test_continuation_above_min_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(min_block_size=32, continuation_min_block_size=64)

    def test_unknown_strategy_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(verification="bogus")

    def test_bad_delta_coder(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(delta_coder="xdelta")

    def test_hash_bit_bounds(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(global_hash_bits=2)
        with pytest.raises(ConfigError):
            ProtocolConfig(continuation_hash_bits=0)


class TestResolution:
    def test_floor_follows_continuation(self):
        assert ProtocolConfig(continuation_min_block_size=8).floor_block_size == 8
        assert (
            ProtocolConfig(continuation_min_block_size=None).floor_block_size
            == ProtocolConfig().min_block_size
        )

    def test_explicit_start_respected(self):
        config = ProtocolConfig(start_block_size=1024)
        assert config.resolve_start_block_size(10_000_000) == 1024

    def test_auto_start_scales_with_file(self):
        config = ProtocolConfig()
        small = config.resolve_start_block_size(2_000)
        large = config.resolve_start_block_size(500_000)
        assert small < large
        assert large <= 32768

    def test_auto_start_tiny_file(self):
        config = ProtocolConfig(min_block_size=64)
        assert config.resolve_start_block_size(100) == 64

    def test_auto_global_bits_tracks_log_n(self):
        config = ProtocolConfig()
        assert config.resolve_global_hash_bits(1 << 20) == 23
        assert config.resolve_global_hash_bits(1 << 10) == 13
        assert config.resolve_global_hash_bits(0) >= 8

    def test_explicit_global_bits_respected(self):
        config = ProtocolConfig(global_hash_bits=17)
        assert config.resolve_global_hash_bits(12345678) == 17

    def test_strategy_object(self):
        assert ProtocolConfig(verification="group3").strategy().name == "group3"

    def test_with_overrides_revalidates(self):
        config = ProtocolConfig()
        assert config.with_overrides(min_block_size=32).min_block_size == 32
        with pytest.raises(ConfigError):
            config.with_overrides(min_block_size=1)

    def test_frozen(self):
        with pytest.raises(Exception):
            ProtocolConfig().min_block_size = 8  # type: ignore[misc]
