"""Tests for the classic rolling checksums."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import AdlerRolling, KarpRabinRolling


class TestAdlerRolling:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            AdlerRolling(b"")

    def test_of_matches_constructor(self):
        data = b"the quick brown fox"
        assert AdlerRolling.of(data) == AdlerRolling(data).value

    def test_components_pack_into_value(self):
        hasher = AdlerRolling(b"abcd")
        a, b = hasher.components
        assert hasher.value == a | (b << 16)

    def test_single_roll(self):
        data = b"abcdef"
        hasher = AdlerRolling(data[0:4])
        hasher.roll(data[0], data[4])
        assert hasher.value == AdlerRolling.of(data[1:5])

    def test_known_small_values(self):
        # Window "ab": a = 97 + 98, b = 2*97 + 1*98.
        hasher = AdlerRolling(b"ab")
        assert hasher.components == (195, 292)

    @given(st.binary(min_size=9, max_size=200))
    def test_rolling_equals_direct_everywhere(self, data):
        window = 8
        hasher = AdlerRolling(data[:window])
        for i in range(1, len(data) - window + 1):
            hasher.roll(data[i - 1], data[i + window - 1])
            assert hasher.value == AdlerRolling.of(data[i : i + window])


class TestKarpRabinRolling:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            KarpRabinRolling(b"")

    def test_bad_modulus_rejected(self):
        with pytest.raises(ValueError):
            KarpRabinRolling(b"ab", modulus=1)

    def test_distinct_for_permuted_strings(self):
        # Unlike the plain Adler sum, Karp-Rabin is position sensitive.
        assert KarpRabinRolling.of(b"abcd") != KarpRabinRolling.of(b"dcba")

    def test_single_byte_window(self):
        assert KarpRabinRolling.of(b"a") == ord("a")

    @given(st.binary(min_size=6, max_size=120))
    def test_rolling_equals_direct_everywhere(self, data):
        window = 5
        hasher = KarpRabinRolling(data[:window])
        for i in range(1, len(data) - window + 1):
            hasher.roll(data[i - 1], data[i + window - 1])
            assert hasher.value == KarpRabinRolling.of(data[i : i + window])

    def test_small_modulus_collides_predictably(self):
        # h mod 7 with radix 1 is just the byte sum mod 7.
        value = KarpRabinRolling.of(b"\x03\x04", radix=1, modulus=7)
        assert value == 0
