"""Tests for client/server session internals and endpoint mirroring."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.core.client import ClientSession
from repro.core.planning import plan_continuation, plan_global
from repro.core.server import ServerSession
from repro.exceptions import ProtocolError
from repro.hashing.strong import file_fingerprint
from tests.conftest import make_version_pair


CONFIG = ProtocolConfig(start_block_size=1024, min_block_size=64,
                        global_hash_bits=16)


class TestServerSession:
    def test_fingerprint(self):
        server = ServerSession(b"content", CONFIG)
        assert server.fingerprint() == file_fingerprint(b"content")

    def test_emit_hashes_bit_exact(self):
        old, new = make_version_pair(seed=50, nbytes=5000)
        server = ServerSession(new, CONFIG)
        plan = plan_global(server.tracker, 16)
        payload = server.emit_hashes(plan)
        expected_bits = sum(a.transmitted_bits for a in plan)
        assert len(payload) == (expected_bits + 7) // 8

    def test_negative_client_length_rejected(self):
        with pytest.raises(ProtocolError):
            ServerSession(b"x", CONFIG).set_client_length(-1)

    def test_reference_is_target_ordered(self):
        server = ServerSession(b"ABCDEFGH", ProtocolConfig(
            start_block_size=2, min_block_size=2,
            continuation_min_block_size=2))
        blocks = server.tracker.current
        server.tracker.record_match(blocks[2])  # "EF"
        server.tracker.record_match(blocks[0])  # "AB"
        assert server.reference() == b"ABEF"

    def test_emit_delta_reconstructable_via_client_reference(self):
        from repro.delta import zdelta_decode

        old, new = make_version_pair(seed=51, nbytes=4000)
        server = ServerSession(new, CONFIG)
        # With no confirmed matches the reference is empty: the delta must
        # still decode to the full file.
        delta = server.emit_delta()
        assert zdelta_decode(b"", delta) == new


class TestClientSession:
    def test_handshake_detects_unchanged(self):
        data = b"same bytes everywhere"
        client = ClientSession(data, CONFIG)
        assert client.process_handshake(file_fingerprint(data), len(data))

    def test_handshake_detects_changed(self):
        client = ClientSession(b"old", CONFIG)
        assert not client.process_handshake(file_fingerprint(b"new"), 3)

    def test_methods_require_handshake(self):
        client = ClientSession(b"data", CONFIG)
        with pytest.raises(ProtocolError):
            client.record_accepted([])
        with pytest.raises(ProtocolError):
            client.apply_delta(b"")

    def test_expected_positions_from_map(self):
        old, new = make_version_pair(seed=52, nbytes=5000)
        client = ClientSession(old, CONFIG)
        client.process_handshake(file_fingerprint(new), len(new))
        tracker = client.tracker
        assert tracker is not None
        blocks = tracker.current
        from repro.core.client import Candidate

        # Pretend block[1] matched at source position 123.
        client.record_accepted([Candidate(blocks[1], 123)])
        # Left neighbor of block[2] now ends at source 123 + len.
        positions = client._expected_positions(blocks[2])
        assert 123 + blocks[1].length in positions


class TestEndpointMirroring:
    def test_plans_identical_across_endpoints(self):
        old, new = make_version_pair(seed=53, nbytes=8000)
        server = ServerSession(new, CONFIG)
        server.set_client_length(len(old))
        client = ClientSession(old, CONFIG)
        client.process_handshake(file_fingerprint(new), len(new))
        client_tracker = client.tracker
        assert client_tracker is not None

        for planner in (plan_continuation, lambda t: plan_global(t, 16)):
            server_plan = planner(server.tracker)
            client_plan = planner(client_tracker)
            assert len(server_plan) == len(client_plan)
            for ours, theirs in zip(server_plan, client_plan):
                assert ours.kind == theirs.kind
                assert ours.width == theirs.width
                assert ours.block.start == theirs.block.start
                assert ours.block.length == theirs.block.length


class TestIndexShortCircuit:
    def test_oversized_block_length_yields_empty_index(self):
        client = ClientSession(b"tiny", CONFIG)
        index = client._index(100)
        assert index.position_count == 0
        assert index.lookup(0, 8) == []
        assert index.lookup_in_range(0, 8, 0, 100) == []

    def test_oversized_index_never_scans_the_data(self, monkeypatch):
        import repro.hashing.scan as scan_module

        client = ClientSession(b"some client data", CONFIG)

        def _boom(*args, **kwargs):
            raise AssertionError("oversized index touched the data scan")

        monkeypatch.setattr(scan_module, "prefix_sums", _boom)
        monkeypatch.setattr(scan_module, "window_hashes_from_sums", _boom)
        index = client._index(len(b"some client data") + 1)
        assert index.position_count == 0

    def test_oversized_index_is_memoised_not_cached_globally(self):
        from repro.parallel import HashIndexCache

        cache = HashIndexCache()
        client = ClientSession(b"abc", ProtocolConfig(), cache=cache)
        lookups_before = cache.stats.lookups
        first = client._index(50)
        second = client._index(50)
        assert first is second
        # Only the session-local memo was used: no cache slot burned.
        assert cache.stats.lookups == lookups_before


class TestSessionCacheReuse:
    def test_second_session_on_same_data_hits_cache(self):
        from repro.parallel import HashIndexCache

        cache = HashIndexCache()
        data = b"identical client bytes" * 100
        ClientSession(data, CONFIG, cache=cache)
        assert cache.stats.hits == 0
        ClientSession(data, CONFIG, cache=cache)
        assert cache.stats.hits == 1  # prefix sums reused

    def test_different_seed_never_shares_entries(self):
        from repro.parallel import HashIndexCache

        cache = HashIndexCache()
        data = b"identical client bytes" * 100
        ClientSession(data, CONFIG, cache=cache)
        ClientSession(data, CONFIG.with_overrides(hash_seed=99), cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
