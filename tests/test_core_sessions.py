"""Tests for client/server session internals and endpoint mirroring."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.core.client import ClientSession
from repro.core.planning import plan_continuation, plan_global
from repro.core.server import ServerSession
from repro.exceptions import ProtocolError
from repro.hashing.strong import file_fingerprint
from tests.conftest import make_version_pair


CONFIG = ProtocolConfig(start_block_size=1024, min_block_size=64,
                        global_hash_bits=16)


class TestServerSession:
    def test_fingerprint(self):
        server = ServerSession(b"content", CONFIG)
        assert server.fingerprint() == file_fingerprint(b"content")

    def test_emit_hashes_bit_exact(self):
        old, new = make_version_pair(seed=50, nbytes=5000)
        server = ServerSession(new, CONFIG)
        plan = plan_global(server.tracker, 16)
        payload = server.emit_hashes(plan)
        expected_bits = sum(a.transmitted_bits for a in plan)
        assert len(payload) == (expected_bits + 7) // 8

    def test_negative_client_length_rejected(self):
        with pytest.raises(ProtocolError):
            ServerSession(b"x", CONFIG).set_client_length(-1)

    def test_reference_is_target_ordered(self):
        server = ServerSession(b"ABCDEFGH", ProtocolConfig(
            start_block_size=2, min_block_size=2,
            continuation_min_block_size=2))
        blocks = server.tracker.current
        server.tracker.record_match(blocks[2])  # "EF"
        server.tracker.record_match(blocks[0])  # "AB"
        assert server.reference() == b"ABEF"

    def test_emit_delta_reconstructable_via_client_reference(self):
        from repro.delta import zdelta_decode

        old, new = make_version_pair(seed=51, nbytes=4000)
        server = ServerSession(new, CONFIG)
        # With no confirmed matches the reference is empty: the delta must
        # still decode to the full file.
        delta = server.emit_delta()
        assert zdelta_decode(b"", delta) == new


class TestClientSession:
    def test_handshake_detects_unchanged(self):
        data = b"same bytes everywhere"
        client = ClientSession(data, CONFIG)
        assert client.process_handshake(file_fingerprint(data), len(data))

    def test_handshake_detects_changed(self):
        client = ClientSession(b"old", CONFIG)
        assert not client.process_handshake(file_fingerprint(b"new"), 3)

    def test_methods_require_handshake(self):
        client = ClientSession(b"data", CONFIG)
        with pytest.raises(ProtocolError):
            client.record_accepted([])
        with pytest.raises(ProtocolError):
            client.apply_delta(b"")

    def test_expected_positions_from_map(self):
        old, new = make_version_pair(seed=52, nbytes=5000)
        client = ClientSession(old, CONFIG)
        client.process_handshake(file_fingerprint(new), len(new))
        tracker = client.tracker
        assert tracker is not None
        blocks = tracker.current
        from repro.core.client import Candidate

        # Pretend block[1] matched at source position 123.
        client.record_accepted([Candidate(blocks[1], 123)])
        # Left neighbor of block[2] now ends at source 123 + len.
        positions = client._expected_positions(blocks[2])
        assert 123 + blocks[1].length in positions


class TestEndpointMirroring:
    def test_plans_identical_across_endpoints(self):
        old, new = make_version_pair(seed=53, nbytes=8000)
        server = ServerSession(new, CONFIG)
        server.set_client_length(len(old))
        client = ClientSession(old, CONFIG)
        client.process_handshake(file_fingerprint(new), len(new))
        client_tracker = client.tracker
        assert client_tracker is not None

        for planner in (plan_continuation, lambda t: plan_global(t, 16)):
            server_plan = planner(server.tracker)
            client_plan = planner(client_tracker)
            assert len(server_plan) == len(client_plan)
            for ours, theirs in zip(server_plan, client_plan):
                assert ours.kind == theirs.kind
                assert ours.width == theirs.width
                assert ours.block.start == theirs.block.start
                assert ours.block.length == theirs.block.length
