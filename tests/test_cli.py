"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from tests.conftest import make_version_pair


@pytest.fixture
def file_pair(tmp_path):
    old, new = make_version_pair(seed=70, nbytes=8000)
    old_path = tmp_path / "old.txt"
    new_path = tmp_path / "new.txt"
    old_path.write_bytes(old)
    new_path.write_bytes(new)
    return old_path, new_path


@pytest.fixture
def dir_pair(tmp_path):
    old_dir = tmp_path / "old"
    new_dir = tmp_path / "new"
    (old_dir / "sub").mkdir(parents=True)
    (new_dir / "sub").mkdir(parents=True)
    old_a, new_a = make_version_pair(seed=71, nbytes=3000)
    (old_dir / "a.txt").write_bytes(old_a)
    (new_dir / "a.txt").write_bytes(new_a)
    (old_dir / "sub" / "same.txt").write_bytes(b"unchanged")
    (new_dir / "sub" / "same.txt").write_bytes(b"unchanged")
    (new_dir / "added.txt").write_bytes(b"brand new file")
    return old_dir, new_dir


class TestSyncCommand:
    def test_file_pair(self, file_pair, capsys):
        old_path, new_path = file_pair
        assert main(["sync", str(old_path), str(new_path)]) == 0
        out = capsys.readouterr().out
        assert "bytes on wire" in out
        assert "1 changed" in out

    def test_directory_pair(self, dir_pair, capsys):
        old_dir, new_dir = dir_pair
        assert main(["sync", str(old_dir), str(new_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 changed, 1 unchanged" in out

    def test_json_output(self, file_pair, capsys):
        old_path, new_path = file_pair
        assert main(["sync", str(old_path), str(new_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "ours"
        assert payload["total_bytes"] > 0
        assert payload["files_changed"] == 1

    @pytest.mark.parametrize("method", ["rsync", "rsync-opt", "zdelta",
                                        "vcdiff", "full"])
    def test_alternative_methods(self, file_pair, capsys, method):
        old_path, new_path = file_pair
        assert main(["sync", str(old_path), str(new_path),
                     "--method", method]) == 0
        assert "bytes on wire" in capsys.readouterr().out

    def test_tuning_flags(self, file_pair, capsys):
        old_path, new_path = file_pair
        assert main([
            "sync", str(old_path), str(new_path),
            "--min-block", "32", "--continuation-min", "8",
            "--verification", "group3",
        ]) == 0

    def test_missing_path_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        existing = tmp_path / "real"
        existing.write_bytes(b"x")
        assert main(["sync", str(missing), str(existing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_reuse_counters_in_json(self, dir_pair, capsys):
        old_dir, new_dir = dir_pair
        assert main(["sync", str(old_dir), str(new_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for key in ("dedup_hits", "delta_memo_hits", "delta_memo_misses",
                    "sibling_refs_used", "bytes_saved_vs_self_ref"):
            assert key in payload
        # Clean default run: the reuse layer stays inert.
        assert payload["dedup_hits"] == 0
        assert payload["sibling_refs_used"] == 0

    def test_sibling_refs_flag_detects_rename(self, tmp_path, capsys):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        content = bytes(range(256)) * 40
        (old_dir / "original.bin").write_bytes(content)
        (new_dir / "original.bin").write_bytes(content)
        (new_dir / "renamed.bin").write_bytes(content)
        assert main([
            "sync", str(old_dir), str(new_dir), "--json", "--sibling-refs",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dedup_hits"] == 1
        assert payload["added_bytes"] == 0

    def test_delta_memo_flag_accepted(self, file_pair, capsys):
        old_path, new_path = file_pair
        assert main([
            "sync", str(old_path), str(new_path), "--delta-memo",
            "--resemblance-threshold", "0.7",
        ]) == 0
        assert "reuse" in capsys.readouterr().out

    def test_no_delta_memo_flag(self, file_pair, capsys):
        old_path, new_path = file_pair
        assert main([
            "sync", str(old_path), str(new_path), "--no-delta-memo",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["delta_memo_hits"] == 0
        assert payload["delta_memo_misses"] == 0


class TestBatchedSync:
    def test_batched_directory(self, dir_pair, capsys):
        old_dir, new_dir = dir_pair
        assert main(["sync", str(old_dir), str(new_dir), "--batched"]) == 0
        assert "ours-batched" in capsys.readouterr().out

    def test_batched_json(self, dir_pair, capsys):
        old_dir, new_dir = dir_pair
        assert main(["sync", str(old_dir), str(new_dir), "--batched",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "ours-batched"

    def test_batched_requires_ours(self, dir_pair, capsys):
        old_dir, new_dir = dir_pair
        assert main(["sync", str(old_dir), str(new_dir), "--batched",
                     "--method", "rsync"]) == 2
        assert "requires" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_output(self, file_pair, capsys):
        old_path, new_path = file_pair
        assert main(["trace", str(old_path), str(new_path)]) == 0
        out = capsys.readouterr().out
        assert "round" in out
        assert "coverage" in out

    def test_trace_with_tuning(self, file_pair, capsys):
        old_path, new_path = file_pair
        assert main(["trace", str(old_path), str(new_path),
                     "--min-block", "32"]) == 0


class TestBenchCommand:
    def test_gcc_table(self, capsys):
        assert main(["bench", "--workload", "gcc", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for name in ("ours", "rsync", "zdelta"):
            assert name in out

    def test_web_table(self, capsys):
        assert main(["bench", "--workload", "web", "--scale", "0.1"]) == 0
        assert "ours" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_rejected(self, file_pair):
        old_path, new_path = file_pair
        with pytest.raises(SystemExit):
            main(["sync", str(old_path), str(new_path), "--method", "nope"])


class TestAdaptiveFlags:
    def test_adaptive_sync_text_output(self, dir_pair, capsys):
        old_dir, new_dir = dir_pair
        assert main([
            "sync", str(old_dir), str(new_dir),
            "--adaptive-retry", "--breaker-threshold", "3",
            "--deadline", "3600",
        ]) == 0
        out = capsys.readouterr().out
        assert "link health" in out
        assert "1.00 score" in out  # clean link: the untouched default

    def test_adaptive_json_counters(self, file_pair, capsys):
        old_path, new_path = file_pair
        assert main([
            "sync", str(old_path), str(new_path),
            "--json", "--adaptive-retry",
        ]) == 0
        run = json.loads(capsys.readouterr().out)
        assert run["health_score"] == 1.0
        assert run["breaker_opens"] == 0
        assert run["deadline_salvages"] == 0
        assert run["adaptive_backoff_s"] == 0.0

    def test_clean_run_output_identical_with_and_without_layer(
        self, dir_pair, capsys
    ):
        old_dir, new_dir = dir_pair
        assert main(["sync", str(old_dir), str(new_dir), "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main([
            "sync", str(old_dir), str(new_dir), "--json",
            "--adaptive-retry", "--breaker-threshold", "3",
            "--deadline", "3600", "--run-deadline", "100000",
        ]) == 0
        adaptive = json.loads(capsys.readouterr().out)
        # workers differ by design (a run budget forces serial); timing
        # and the process-global hash caches are volatile between runs.
        volatile = ("workers", "cpu_seconds", "cache_hits", "cache_misses",
                    "ref_cache_hits", "ref_cache_misses",
                    "delta_memo_hits", "delta_memo_misses")
        for key in volatile:
            plain.pop(key)
            adaptive.pop(key)
        assert adaptive == plain


class TestChaosCommand:
    def test_soak_matrix(self, capsys):
        assert main([
            "chaos", "--shapes", "bursty", "--seeds", "1",
            "--profile", "short",
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos soak [short]" in out
        assert "bursty" in out

    def test_json_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "soak.json"
        assert main([
            "chaos", "--shapes", "degrading", "--seeds", "2",
            "--json", "--out", str(artifact),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_cells_consistent"] is True
        assert json.loads(artifact.read_text()) == payload

    def test_unknown_shape_rejected(self, capsys):
        assert main(["chaos", "--shapes", "lumpy"]) == 2
        assert "unknown shape" in capsys.readouterr().err
