"""Tests for batched (roundtrip-sharing) synchronization."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig, synchronize, synchronize_batch
from repro.net import SimulatedChannel
from repro.workloads import gcc_like, make_web_collection
from tests.conftest import make_version_pair


@pytest.fixture(scope="module")
def batch_pair():
    tree = gcc_like(scale=0.08, seed=6)
    names = sorted(set(tree.old) & set(tree.new))
    return (
        {n: tree.old[n] for n in names},
        {n: tree.new[n] for n in names},
    )


class TestCorrectness:
    def test_every_file_reconstructed(self, batch_pair):
        old_side, new_side = batch_pair
        report = synchronize_batch(old_side, new_side)
        assert report.reconstructed == new_side

    def test_unchanged_files_listed(self, batch_pair):
        old_side, new_side = batch_pair
        report = synchronize_batch(old_side, new_side)
        expected = {n for n in old_side if old_side[n] == new_side[n]}
        assert set(report.unchanged_files) == expected

    def test_empty_batch(self):
        report = synchronize_batch({}, {})
        assert report.reconstructed == {}
        assert report.rounds == 0

    def test_single_file_matches_protocol(self):
        old, new = make_version_pair(seed=600, nbytes=12000)
        report = synchronize_batch({"f": old}, {"f": new})
        assert report.reconstructed["f"] == new

    def test_names_only_on_one_side_ignored(self):
        old, new = make_version_pair(seed=601, nbytes=4000)
        report = synchronize_batch(
            {"common": old, "client-only": b"x"},
            {"common": new, "server-only": b"y"},
        )
        assert set(report.reconstructed) == {"common"}

    @pytest.mark.parametrize(
        "overrides",
        [
            {"verification": "trivial"},
            {"verification": "group3"},
            {"continuation_first": False},
            {"continuation_min_block_size": None},
            {"max_rounds": 2},
        ],
    )
    def test_variants(self, batch_pair, overrides):
        old_side, new_side = batch_pair
        report = synchronize_batch(
            old_side, new_side, ProtocolConfig(**overrides)
        )
        assert report.reconstructed == new_side


class TestAmortization:
    def test_roundtrips_shared_not_summed(self, batch_pair):
        """The whole point: batch roundtrips ~ per-round, not per-file."""
        old_side, new_side = batch_pair
        report = synchronize_batch(old_side, new_side)

        per_file_roundtrips = 0
        for name in old_side:
            channel = SimulatedChannel()
            result = synchronize(old_side[name], new_side[name],
                                 channel=channel)
            assert result.reconstructed == new_side[name]
            per_file_roundtrips += channel.stats.roundtrips
        assert report.roundtrips < per_file_roundtrips / 3

    def test_bytes_comparable_to_per_file(self, batch_pair):
        old_side, new_side = batch_pair
        report = synchronize_batch(old_side, new_side)
        per_file_total = 0
        for name in old_side:
            result = synchronize(old_side[name], new_side[name])
            per_file_total += result.total_bytes
        # Sharing byte boundaries can only help; no more than 5% apart.
        assert report.total_bytes <= per_file_total * 1.05

    def test_roundtrips_grow_with_rounds_not_files(self):
        small = make_web_collection(page_count=6, days=(0, 1), seed=9)
        large = make_web_collection(page_count=18, days=(0, 1), seed=9)
        report_small = synchronize_batch(
            small.snapshot(0), small.snapshot(1)
        )
        report_large = synchronize_batch(
            large.snapshot(0), large.snapshot(1)
        )
        assert report_large.reconstructed == large.snapshot(1)
        # Tripling the file count must not triple the roundtrips.
        assert report_large.roundtrips < 2 * max(report_small.roundtrips, 1)


class TestFallback:
    def test_corrupted_delta_falls_back_per_file(self, monkeypatch):
        from repro.core import server as server_module

        old_a, new_a = make_version_pair(seed=602, nbytes=6000)
        old_b, new_b = make_version_pair(seed=603, nbytes=6000)
        original = server_module.ServerSession.emit_delta
        victims = {new_a}

        def sabotage(self):
            delta = original(self)
            if self.data in victims and len(delta) > 4:
                corrupted = bytearray(delta)
                corrupted[len(corrupted) // 2] ^= 0xFF
                return bytes(corrupted)
            return delta

        monkeypatch.setattr(server_module.ServerSession, "emit_delta", sabotage)
        report = synchronize_batch(
            {"a": old_a, "b": old_b}, {"a": new_a, "b": new_b}
        )
        assert report.reconstructed == {"a": new_a, "b": new_b}
        assert report.fallback_files == ["a"]


class TestBatchWithRefinement:
    def test_refinement_composes_with_batching(self, batch_pair):
        from repro.core import ProtocolConfig, synchronize_batch

        old_side, new_side = batch_pair
        config = ProtocolConfig(
            min_block_size=128,
            continuation_min_block_size=None,
            refine_boundaries=True,
        )
        report = synchronize_batch(old_side, new_side, config)
        assert report.reconstructed == new_side
