"""Tests for benchmark table/figure rendering and the runner."""

from __future__ import annotations

from repro.bench import (
    OursMethod,
    ZdeltaMethod,
    format_kb,
    render_grouped_bars,
    render_table,
    run_method_on_collection,
)
from repro.workloads import gcc_like


class TestFormatKb:
    def test_kilobytes(self):
        assert format_kb(2048) == "2.0"
        assert format_kb(1536) == "1.5"

    def test_thousands_separator(self):
        assert format_kb(10_000_000) == "9,765.6"


class TestRenderTable:
    def test_alignment_and_header(self):
        table = render_table(
            ["method", "KB"], [["ours", "12.5"], ["rsync", "30.1"]],
            title="Table X",
        )
        lines = table.splitlines()
        assert lines[0] == "Table X"
        assert "method" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_column_widths_fit_data(self):
        table = render_table(["m"], [["a-very-long-method-name"]])
        header, rule, row = table.splitlines()
        assert len(rule) >= len("a-very-long-method-name")


class TestRenderBars:
    def test_contains_all_groups_and_series(self):
        chart = render_grouped_bars(
            ["g1", "g2"],
            {"ours": [1.0, 2.0], "rsync": [3.0, 4.0]},
        )
        for token in ("g1:", "g2:", "ours", "rsync", "4.0"):
            assert token in chart

    def test_bar_length_proportional(self):
        chart = render_grouped_bars(["g"], {"a": [10.0], "b": [5.0]}, width=40)
        lines = [l for l in chart.splitlines() if "|" in l]
        bar_a = lines[0].split("|")[1].count("#")
        bar_b = lines[1].split("|")[1].count("#")
        assert bar_a == 2 * bar_b

    def test_zero_values_no_crash(self):
        chart = render_grouped_bars(["g"], {"a": [0.0]})
        assert "0.0" in chart


class TestRunner:
    def test_run_produces_consistent_row(self):
        tree = gcc_like(scale=0.05, seed=4)
        run = run_method_on_collection(ZdeltaMethod(), tree.old, tree.new)
        assert run.method == "zdelta"
        assert run.total_bytes == (
            run.manifest_bytes + run.changed_bytes + run.added_bytes
        )
        assert run.total_kb * 1024 == run.total_bytes
        assert run.elapsed_seconds >= 0

    def test_breakdown_merged_across_files(self):
        tree = gcc_like(scale=0.05, seed=4)
        run = run_method_on_collection(OursMethod(), tree.old, tree.new)
        assert any(key.endswith("/map") for key in run.breakdown)
