"""Tests for sub-phase hash planning (the mirrored pure functions)."""

from __future__ import annotations

from repro.core import ProtocolConfig
from repro.core.blocks import BlockTracker, HashKind
from repro.core.planning import (
    apply_known_hashes,
    plan_continuation,
    plan_global,
    plan_mixed,
)


def tracker_with(config: ProtocolConfig, length: int = 4096) -> BlockTracker:
    return BlockTracker(length, config)


BASE = ProtocolConfig(
    start_block_size=1024,
    min_block_size=64,
    continuation_min_block_size=16,
    global_hash_bits=16,
)


class TestPlanContinuation:
    def test_empty_without_matches(self):
        tracker = tracker_with(BASE)
        assert plan_continuation(tracker) == []

    def test_adjacent_blocks_selected(self):
        tracker = tracker_with(BASE)
        tracker.record_match(tracker.current[1])
        plan = plan_continuation(tracker)
        starts = {a.block.start for a in plan}
        assert starts == {0, 2048}
        assert all(a.kind is HashKind.CONTINUATION for a in plan)
        assert all(a.width == BASE.continuation_hash_bits for a in plan)

    def test_disabled_when_config_off(self):
        config = BASE.with_overrides(continuation_min_block_size=None)
        tracker = tracker_with(config)
        tracker.record_match(tracker.current[1])
        assert plan_continuation(tracker) == []

    def test_blocks_below_floor_not_planned(self):
        tracker = tracker_with(BASE, length=64)
        tracker.record_match(tracker.current[0])
        # Nothing active remains, so nothing can be planned.
        assert plan_continuation(tracker) == []


class TestPlanGlobal:
    def test_top_level_all_global(self):
        tracker = tracker_with(BASE)
        plan = plan_global(tracker, 16)
        assert len(plan) == 4
        assert all(a.kind is HashKind.GLOBAL for a in plan)
        assert sum(a.transmitted_bits for a in plan) == 4 * 16

    def test_derived_suppression_after_split(self):
        tracker = tracker_with(BASE)
        plan = plan_global(tracker, 16)
        apply_known_hashes(plan)
        tracker.advance_level()
        child_plan = plan_global(tracker, 16)
        kinds = [a.kind for a in child_plan]
        assert kinds == [
            HashKind.GLOBAL,
            HashKind.DERIVED,
        ] * 4
        # Derived hashes cost nothing on the wire.
        assert sum(a.transmitted_bits for a in child_plan) == 4 * 16

    def test_no_suppression_without_decomposable(self):
        config = BASE.with_overrides(use_decomposable=False)
        tracker = tracker_with(config)
        plan = plan_global(tracker, 16)
        apply_known_hashes(plan)
        tracker.advance_level()
        child_plan = plan_global(tracker, 16)
        assert all(a.kind is HashKind.GLOBAL for a in child_plan)

    def test_no_suppression_without_parent_value(self):
        """If the parent was never hashed (e.g. continuation-only), the
        right child cannot be derived."""
        tracker = tracker_with(BASE)
        tracker.advance_level()  # split without sending any hashes
        plan = plan_global(tracker, 16)
        assert all(a.kind is HashKind.GLOBAL for a in plan)

    def test_skip_sibling_of_confirmed(self):
        tracker = tracker_with(BASE)
        apply_known_hashes(plan_global(tracker, 16))
        tracker.advance_level()
        left, right = tracker.current[0], tracker.current[1]
        tracker.record_match(left)
        plan = plan_global(tracker, 16)
        assert id(right) not in {id(a.block) for a in plan}

    def test_skip_failed_continuation(self):
        tracker = tracker_with(BASE)
        block = tracker.current[0]
        block.continuation_failed = True
        plan = plan_global(tracker, 16)
        assert id(block) not in {id(a.block) for a in plan}

    def test_no_skip_rules_when_single_phase(self):
        config = BASE.with_overrides(continuation_first=False)
        tracker = tracker_with(config)
        block = tracker.current[0]
        block.continuation_failed = True
        plan = plan_global(tracker, 16)
        assert id(block) in {id(a.block) for a in plan}

    def test_small_blocks_skipped_without_local(self):
        tracker = tracker_with(BASE, length=64)  # single 64-byte root
        tracker.advance_level()  # 32-byte children < min_block 64
        assert plan_global(tracker, 16) == []

    def test_local_hash_for_anchored_small_blocks(self):
        config = BASE.with_overrides(use_local_hashes=True, local_hash_bits=10)
        tracker = tracker_with(config, length=128)
        first, = tracker.current[:1]
        tracker.advance_level()  # two 64-byte blocks... still >= min
        tracker.record_match(tracker.current[0])
        tracker.advance_level()  # 32-byte children of right block
        plan = plan_global(tracker, 16)
        assert plan, "anchored small blocks should get local hashes"
        assert all(a.kind is HashKind.LOCAL for a in plan)
        assert all(a.width == 10 for a in plan)


class TestPlanMixed:
    def test_mixed_covers_all_eligible(self):
        config = BASE.with_overrides(continuation_first=False)
        tracker = tracker_with(config)
        tracker.record_match(tracker.current[1])
        plan = plan_mixed(tracker, 16)
        kinds = {a.block.start: a.kind for a in plan}
        assert kinds[0] is HashKind.CONTINUATION
        assert kinds[2048] is HashKind.CONTINUATION
        assert kinds[3072] is HashKind.GLOBAL

    def test_sorted_by_offset(self):
        config = BASE.with_overrides(continuation_first=False)
        tracker = tracker_with(config)
        plan = plan_mixed(tracker, 16)
        starts = [a.block.start for a in plan]
        assert starts == sorted(starts)


class TestApplyKnownHashes:
    def test_records_width_for_global_and_derived(self):
        tracker = tracker_with(BASE)
        plan = plan_global(tracker, 16)
        apply_known_hashes(plan)
        assert all(a.block.known_width == 16 for a in plan)

    def test_continuation_not_recorded(self):
        tracker = tracker_with(BASE)
        tracker.record_match(tracker.current[1])
        plan = plan_continuation(tracker)
        apply_known_hashes(plan)
        assert all(a.block.known_width == 0 for a in plan)
