"""Unit tests of the shared-memory arena and its segment pool."""

from __future__ import annotations

import glob

import pytest

from repro.parallel import FileTask
from repro.parallel.arena import (
    MIN_SEGMENT_BYTES,
    ArenaError,
    ArenaPool,
    CollectionArena,
    Span,
    SpanTask,
    _reset_availability_probe,
    _round_capacity,
    arena_available,
)


def _leaked_segments() -> list[str]:
    return glob.glob("/dev/shm/repro-arena-*")


pytestmark = pytest.mark.skipif(
    not arena_available(), reason="POSIX shared memory unavailable"
)


class TestCapacityRounding:
    def test_minimum_slab(self):
        assert _round_capacity(0) == MIN_SEGMENT_BYTES
        assert _round_capacity(1) == MIN_SEGMENT_BYTES
        assert _round_capacity(MIN_SEGMENT_BYTES) == MIN_SEGMENT_BYTES

    def test_power_of_two_growth(self):
        assert _round_capacity(MIN_SEGMENT_BYTES + 1) == 2 * MIN_SEGMENT_BYTES
        value = _round_capacity(3 * MIN_SEGMENT_BYTES)
        assert value == 4 * MIN_SEGMENT_BYTES
        assert value & (value - 1) == 0


class TestPackAndView:
    def test_roundtrip_byte_equality(self):
        tasks = [
            FileTask("a", b"old-a" * 100, b"new-a" * 90),
            FileTask("b", b"", b"only-new"),
            FileTask("c", b"only-old", b""),
        ]
        arena = CollectionArena.create(sum(t.total_bytes for t in tasks))
        try:
            span_tasks = arena.pack(tasks)
            assert [st.name for st in span_tasks] == ["a", "b", "c"]
            for task, span_task in zip(tasks, span_tasks):
                assert arena.read(span_task.old) == task.old
                assert arena.read(span_task.new) == task.new
                assert span_task.total_bytes == task.total_bytes
        finally:
            arena.destroy()

    def test_spans_are_contiguous_and_disjoint(self):
        tasks = [FileTask(f"f{i}", b"x" * 10, b"y" * 20) for i in range(5)]
        arena = CollectionArena.create(1)
        try:
            span_tasks = arena.pack(tasks)
            cursor = 0
            for span_task in span_tasks:
                assert span_task.old == Span(cursor, cursor + 10)
                cursor += 10
                assert span_task.new == Span(cursor, cursor + 20)
                cursor += 20
            assert arena.used_bytes == cursor
        finally:
            arena.destroy()

    def test_empty_payloads_produce_empty_spans(self):
        arena = CollectionArena.create(1)
        try:
            [span_task] = arena.pack([FileTask("empty", b"", b"")])
            assert span_task.old.length == 0
            assert span_task.new.length == 0
            assert arena.read(span_task.old) == b""
            assert arena.read(span_task.new) == b""
        finally:
            arena.destroy()

    def test_overflow_raises_arena_error(self):
        arena = CollectionArena.create(1)  # rounds up to 1 MiB
        try:
            huge = b"x" * (arena.capacity + 1)
            with pytest.raises(ArenaError, match="overflow"):
                arena.pack([FileTask("big", huge, b"")])
        finally:
            arena.destroy()

    def test_reset_allows_repacking(self):
        arena = CollectionArena.create(1)
        try:
            arena.pack([FileTask("first", b"aaaa", b"bbbb")])
            [span_task] = arena.pack([FileTask("second", b"cccc", b"dddd")])
            assert span_task.old == Span(0, 4)
            assert arena.read(span_task.new) == b"dddd"
        finally:
            arena.destroy()

    def test_attach_sees_parent_bytes(self):
        arena = CollectionArena.create(1)
        try:
            [span_task] = arena.pack([FileTask("x", b"OLD", b"NEW")])
            attached = CollectionArena.attach(arena.name)
            try:
                assert not attached.owner
                assert attached.read(span_task.old) == b"OLD"
                assert attached.read(span_task.new) == b"NEW"
            finally:
                attached.close()
        finally:
            arena.destroy()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(ArenaError):
            CollectionArena.attach("repro-arena-0-does-not-exist")


class TestLifecycle:
    def test_destroy_removes_segment_and_is_idempotent(self):
        arena = CollectionArena.create(1)
        path = f"/dev/shm/{arena.name}"
        assert glob.glob(path)
        arena.destroy()
        arena.destroy()  # second call must be a no-op
        assert not glob.glob(path)

    def test_non_owner_unlink_is_a_no_op(self):
        arena = CollectionArena.create(1)
        try:
            attached = CollectionArena.attach(arena.name)
            attached.unlink()
            attached.close()
            assert glob.glob(f"/dev/shm/{arena.name}")
        finally:
            arena.destroy()


class TestArenaPool:
    def test_release_then_acquire_reuses_the_segment(self):
        pool = ArenaPool()
        first = pool.acquire(1024)
        name = first.name
        pool.release(first)
        assert len(pool) == 1
        second = pool.acquire(1024)
        try:
            assert second.name == name
            assert pool.reused == 1
            assert second.used_bytes == 0  # reset on reuse
        finally:
            pool.release(second)
            pool.drain()

    def test_larger_request_creates_a_new_segment(self):
        pool = ArenaPool()
        small = pool.acquire(1024)
        pool.release(small)
        big = pool.acquire(small.capacity * 4)
        try:
            assert big.name != small.name
            assert pool.created == 2
            assert pool.reused == 0
        finally:
            pool.release(big)
            pool.drain()

    def test_retention_cap_destroys_excess_segments(self):
        pool = ArenaPool(max_retained=1)
        first = pool.acquire(1024)
        second = pool.acquire(1024)
        second_path = f"/dev/shm/{second.name}"
        pool.release(first)
        pool.release(second)  # beyond the cap: destroyed immediately
        assert len(pool) == 1
        assert not glob.glob(second_path)
        pool.drain()

    def test_drain_unlinks_everything(self):
        pool = ArenaPool(max_retained=4)
        arenas = [pool.acquire(1024) for _ in range(3)]
        paths = [f"/dev/shm/{arena.name}" for arena in arenas]
        for arena in arenas:
            pool.release(arena)
        pool.drain()
        assert len(pool) == 0
        for path in paths:
            assert not glob.glob(path)

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            ArenaPool(max_retained=-1)


class TestAvailabilityProbe:
    def test_probe_is_cached_and_resettable(self):
        _reset_availability_probe()
        assert arena_available() is True
        # Cached: a second call must not re-probe (same answer, and no
        # new segment may appear even momentarily — check by count).
        before = _leaked_segments()
        assert arena_available() is True
        assert _leaked_segments() == before
        _reset_availability_probe()
        assert arena_available() is True

    def test_probe_leaves_no_segment_behind(self):
        before = _leaked_segments()
        _reset_availability_probe()
        arena_available()
        assert _leaked_segments() == before
