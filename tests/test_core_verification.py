"""Tests for the verification pool machinery."""

from __future__ import annotations

import pytest

from repro.core.verification import VerificationPools, batch_wire_bits, make_units
from repro.grouptesting import BatchMode, BatchScope, BatchSpec, make_strategy


IND8 = BatchSpec(BatchMode.INDIVIDUAL, bits=8)
GRP = BatchSpec(BatchMode.GROUP, bits=16, group_size=3, scope=BatchScope.SURVIVORS)
SALVAGE = BatchSpec(
    BatchMode.INDIVIDUAL, bits=12, scope=BatchScope.FAILED_GROUP_MEMBERS
)


class TestMakeUnits:
    def test_individual_singletons(self):
        assert make_units([1, 2, 3], IND8) == [[1], [2], [3]]

    def test_group_chunking_with_remainder(self):
        assert make_units([1, 2, 3, 4, 5], GRP) == [[1, 2, 3], [4, 5]]

    def test_empty(self):
        assert make_units([], GRP) == []

    def test_wire_bits(self):
        units = make_units([1, 2, 3, 4, 5], GRP)
        assert batch_wire_bits(units, GRP) == 32


class TestPools:
    def test_individual_batch_filters(self):
        pools: VerificationPools[int] = VerificationPools(main=[1, 2, 3])
        units = make_units(pools.select(IND8), IND8)
        pools.apply(IND8, units, [True, False, True])
        assert pools.main == [1, 3]
        assert pools.salvage == []  # individual failures are final

    def test_group_failures_go_to_salvage(self):
        pools: VerificationPools[int] = VerificationPools(main=list(range(6)))
        units = make_units(pools.select(GRP), GRP)
        pools.apply(GRP, units, [True, False])
        assert pools.main == [0, 1, 2]
        assert pools.salvage == [3, 4, 5]

    def test_salvage_batch_accepts_immediately(self):
        pools: VerificationPools[int] = VerificationPools(
            main=[], salvage=[7, 8, 9]
        )
        selection = pools.select(SALVAGE)
        assert selection == [7, 8, 9]
        assert pools.salvage == []  # consumed
        units = make_units(selection, SALVAGE)
        pools.apply(SALVAGE, units, [True, False, True])
        assert pools.accepted == [7, 9]

    def test_finish_accepts_survivors_rejects_salvage(self):
        pools: VerificationPools[int] = VerificationPools(
            main=[1, 2], salvage=[3]
        )
        assert pools.finish() == [1, 2]
        assert pools.salvage == []

    def test_bitmap_length_mismatch_rejected(self):
        pools: VerificationPools[int] = VerificationPools(main=[1])
        with pytest.raises(ValueError):
            pools.apply(IND8, [[1]], [True, False])

    def test_full_group3_flow(self):
        """Simulate group3 semantics end to end with scripted bitmaps."""
        strategy = make_strategy("group3")
        pools: VerificationPools[str] = VerificationPools(
            main=[f"c{i}" for i in range(10)]
        )
        # Batch 1 (individual, all pass except c4).
        b1 = strategy.batches[0]
        units = make_units(pools.select(b1), b1)
        pools.apply(b1, units, [i != 4 for i in range(10)])
        assert len(pools.main) == 9
        # Batch 2 (groups of 8): first group fails, second passes.
        b2 = strategy.batches[1]
        units = make_units(pools.select(b2), b2)
        assert [len(u) for u in units] == [8, 1]
        pools.apply(b2, units, [False, True])
        assert len(pools.main) == 1
        assert len(pools.salvage) == 8
        # Batch 3 (salvage): recover half.
        b3 = strategy.batches[2]
        units = make_units(pools.select(b3), b3)
        pools.apply(b3, units, [i % 2 == 0 for i in range(8)])
        accepted = pools.finish()
        assert len(accepted) == 1 + 4
