"""Tests for collection manifests and diffing."""

from __future__ import annotations

from repro.collection import Manifest, diff_manifests


class TestManifest:
    def test_of_collection(self):
        manifest = Manifest.of_collection({"a": b"1", "b": b"2"})
        assert len(manifest) == 2
        assert len(manifest.entries["a"]) == 16

    def test_wire_bytes(self):
        manifest = Manifest.of_collection({"abc": b"x"})
        assert manifest.wire_bytes() == 3 + 1 + 16

    def test_empty(self):
        manifest = Manifest.of_collection({})
        assert manifest.wire_bytes() == 0


class TestDiff:
    def test_classification(self):
        client = Manifest.of_collection(
            {"same": b"1", "edited": b"old", "gone": b"x"}
        )
        server = Manifest.of_collection(
            {"same": b"1", "edited": b"new", "fresh": b"y"}
        )
        diff = diff_manifests(client, server)
        assert diff.unchanged == ["same"]
        assert diff.changed == ["edited"]
        assert diff.added == ["fresh"]
        assert diff.removed == ["gone"]

    def test_identical_collections(self):
        files = {"a": b"1", "b": b"2"}
        manifest = Manifest.of_collection(files)
        diff = diff_manifests(manifest, manifest)
        assert diff.changed == [] and diff.added == [] and diff.removed == []
        assert diff.unchanged == ["a", "b"]

    def test_disjoint_collections(self):
        diff = diff_manifests(
            Manifest.of_collection({"a": b"1"}),
            Manifest.of_collection({"b": b"2"}),
        )
        assert diff.added == ["b"]
        assert diff.removed == ["a"]

    def test_lists_sorted(self):
        client = Manifest.of_collection({})
        server = Manifest.of_collection({"z": b"1", "a": b"2", "m": b"3"})
        assert diff_manifests(client, server).added == ["a", "m", "z"]
