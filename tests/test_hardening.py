"""Miscellaneous hardening: edge cases across module boundaries."""

from __future__ import annotations

import random

import pytest

from repro.core import ProtocolConfig, synchronize
from repro.io import BitReader, BitWriter
from repro.net import Direction, SimulatedChannel


class TestChannelBitsValidation:
    def test_bits_must_match_payload(self):
        channel = SimulatedChannel()
        with pytest.raises(ValueError):
            channel.send(Direction.CLIENT_TO_SERVER, b"ab", "map", bits=3)
        with pytest.raises(ValueError):
            channel.send(Direction.CLIENT_TO_SERVER, b"ab", "map", bits=17)

    def test_bits_boundary_values(self):
        channel = SimulatedChannel()
        channel.send(Direction.CLIENT_TO_SERVER, b"ab", "map", bits=9)
        channel.send(Direction.CLIENT_TO_SERVER, b"ab", "map", bits=16)
        channel.send(Direction.CLIENT_TO_SERVER, b"", "map", bits=0)
        assert channel.stats.bytes_in_phase("map") == 4  # ceil(25/8)

    def test_empty_payload_nonzero_bits_rejected(self):
        channel = SimulatedChannel()
        with pytest.raises(ValueError):
            channel.send(Direction.CLIENT_TO_SERVER, b"", "map", bits=1)


class TestBitstreamInterleaving:
    def test_mixed_field_widths(self):
        writer = BitWriter()
        writer.write(1, 1)
        writer.write_uvarint(1_000_000)
        writer.write_bytes(b"xy")
        writer.write(0x3FF, 10)
        reader = BitReader(writer.getvalue())
        assert reader.read(1) == 1
        assert reader.read_uvarint() == 1_000_000
        assert reader.read_bytes(2) == b"xy"
        assert reader.read(10) == 0x3FF

    def test_wide_values(self):
        writer = BitWriter()
        writer.write((1 << 32) - 1, 32)
        writer.write(1, 1)
        reader = BitReader(writer.getvalue())
        assert reader.read(32) == (1 << 32) - 1
        assert reader.read(1) == 1


class TestExtremeSizes:
    def test_one_megabyte_file(self):
        """A single larger file end to end (exercises numpy paths at a
        size where uint64 prefix sums matter)."""
        rng = random.Random(6)
        import sys

        sys.path.insert(0, "benchmarks")
        from tests_data import make_pair

        old, new = make_pair(seed=6, nbytes=600_000, edits=25)
        result = synchronize(old, new)
        assert result.reconstructed == new
        assert result.total_bytes < len(new) // 10

    def test_new_file_much_larger_than_old(self):
        old = b"tiny seed content"
        new = old * 3000
        result = synchronize(old, new)
        assert result.reconstructed == new
        # Massive internal redundancy: the delta coder must crush it.
        assert result.total_bytes < len(new) // 20

    def test_old_file_much_larger_than_new(self):
        rng = random.Random(7)
        old = bytes(rng.randrange(256) for _ in range(200_000))
        new = old[98_765:99_765]
        result = synchronize(old, new)
        assert result.reconstructed == new
        assert result.total_bytes < 2_000


class TestConfigInteractionCorners:
    def test_start_equals_min_single_round(self):
        import sys

        sys.path.insert(0, "tests")
        from conftest import make_version_pair

        old, new = make_version_pair(seed=71, nbytes=9000)
        config = ProtocolConfig(
            start_block_size=64,
            min_block_size=64,
            continuation_min_block_size=None,
        )
        result = synchronize(old, new, config)
        assert result.reconstructed == new
        assert result.rounds == 1

    def test_floor_equals_two(self):
        from tests.conftest import make_version_pair

        old, new = make_version_pair(seed=72, nbytes=3000)
        config = ProtocolConfig(
            min_block_size=2,
            continuation_min_block_size=2,
            start_block_size=64,
        )
        assert synchronize(old, new, config).reconstructed == new

    def test_max_candidate_positions_extremes(self):
        from tests.conftest import make_version_pair

        old, new = make_version_pair(seed=73, nbytes=6000)
        for cap in (1, 64):
            config = ProtocolConfig(max_candidate_positions=cap)
            assert synchronize(old, new, config).reconstructed == new


class TestStatsInvariantsUnderAllPhases:
    def test_phases_cover_every_feature(self):
        from tests.conftest import make_version_pair

        old, new = make_version_pair(seed=74, nbytes=30000, edits=10)
        config = ProtocolConfig(refine_boundaries=True, collect_trace=True)
        channel = SimulatedChannel()
        result = synchronize(old, new, config, channel)
        assert result.reconstructed == new
        phases = set(result.stats.phases())
        assert {"handshake", "map", "delta", "fallback"} <= phases
        total = sum(
            result.stats.bytes_in_phase(phase) for phase in phases
        )
        assert total == result.total_bytes
