"""Tests for the continuation harvest-rate bookkeeping (paper §6.2)."""

from __future__ import annotations

from repro.core import ProtocolConfig, synchronize
from tests.conftest import make_version_pair


class TestHarvestRate:
    def test_high_harvest_rate_on_similar_files(self):
        """"blocks that qualify for continuation hashes have a fairly
        high harvest rate" — on lightly edited files most continuation
        candidates are genuine extensions."""
        old, new = make_version_pair(seed=700, nbytes=60000, edits=8)
        result = synchronize(old, new)
        assert result.reconstructed == new
        assert result.continuation_candidates > 0
        assert result.continuation_harvest_rate > 0.8

    def test_no_continuation_no_candidates(self):
        old, new = make_version_pair(seed=701, nbytes=20000)
        result = synchronize(
            old, new, ProtocolConfig(continuation_min_block_size=None)
        )
        assert result.continuation_candidates == 0
        assert result.continuation_harvest_rate == 1.0

    def test_accepted_never_exceeds_candidates(self):
        for seed in range(702, 712):
            old, new = make_version_pair(seed=seed, nbytes=10000, edits=6)
            result = synchronize(old, new)
            assert (
                0
                <= result.continuation_accepted
                <= result.continuation_candidates
            )

    def test_weak_hashes_lower_harvest_rate(self):
        """1-bit continuation hashes lie half the time, so harvest drops —
        the searching-with-liars regime."""
        old, new = make_version_pair(seed=713, nbytes=60000, edits=8)
        strong = synchronize(
            old, new, ProtocolConfig(continuation_hash_bits=10)
        )
        weak = synchronize(
            old, new, ProtocolConfig(continuation_hash_bits=1)
        )
        assert weak.reconstructed == strong.reconstructed == new
        assert weak.continuation_harvest_rate <= (
            strong.continuation_harvest_rate
        )
