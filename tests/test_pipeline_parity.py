"""Pipelined round scheduler: parity, mux framing, crash interchange.

The pipelined scheduler's whole contract is "same bytes, fewer
roundtrips": per-file outcomes, wire transcripts and round checkpoints
must be bit-identical to the sequential path — across protocol engines,
across executor substrates, and across a crash that switches scheduler
between the two runs.  Only the shared link's roundtrip count and the
modelled wall clock may change.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.methods import MultiroundRsyncMethod, OursMethod, RsyncMethod
from repro.collection import CollectionScheduler, RecordingChannel
from repro.collection.sync import sync_collection
from repro.exceptions import FrameCorruptionError
from repro.net import LinkModel
from repro.net.frame import (
    MuxSubframe,
    decode_mux_batch,
    encode_mux_batch,
    mux_overhead_bytes,
)
from repro.parallel import arena_available
from tests.conftest import make_version_pair

SRC = Path(__file__).resolve().parent.parent / "src"

LINK = LinkModel(latency_s=0.150)


def make_collection(count=6, nbytes=9000, edits=6, seed=900):
    old_side, new_side = {}, {}
    for index in range(count):
        old, new = make_version_pair(
            seed=seed + index, nbytes=nbytes, edits=edits
        )
        old_side[f"f{index:02d}.bin"] = old
        new_side[f"f{index:02d}.bin"] = new
    return old_side, new_side


# ----------------------------------------------------------------------
# Mux sub-frame format
# ----------------------------------------------------------------------
class TestMuxFrame:
    def subframes(self):
        return [
            MuxSubframe(0, 3, 0, 8 * 5, b"hello"),
            # Bit-packed payload: 12 bits in 2 bytes (4 padding bits).
            MuxSubframe(7, 1, 0, 12, b"\xab\xc0"),
            MuxSubframe(130, 0, 2, 0, b""),
        ]

    def test_roundtrip(self):
        subframes = self.subframes()
        batch = encode_mux_batch(subframes)
        assert decode_mux_batch(batch) == subframes
        overhead = mux_overhead_bytes(batch, subframes)
        assert overhead == len(batch) - 7
        assert overhead > 0

    def test_empty_batch(self):
        assert decode_mux_batch(encode_mux_batch([])) == []

    def test_truncation_raises(self):
        batch = encode_mux_batch(self.subframes())
        for cut in (1, len(batch) // 2, len(batch) - 1):
            with pytest.raises(FrameCorruptionError):
                decode_mux_batch(batch[:cut])

    def test_trailing_bytes_raise(self):
        batch = encode_mux_batch(self.subframes())
        with pytest.raises(FrameCorruptionError):
            decode_mux_batch(batch + b"\x00")

    def test_encode_rejects_inconsistent_bit_length(self):
        with pytest.raises(ValueError):
            encode_mux_batch([MuxSubframe(0, 0, 0, 9, b"x")])
        with pytest.raises(ValueError):
            encode_mux_batch([MuxSubframe(0, 0, 0, 24, b"xy")])


# ----------------------------------------------------------------------
# LinkModel.transfer_seconds (vectorized/accumulating variant)
# ----------------------------------------------------------------------
class TestTransferSeconds:
    def test_scalar_matches_directional(self):
        link = LinkModel(bandwidth_bps=2e6, latency_s=0.1, uplink_bps=5e5)
        assert link.transfer_seconds(1000, 4000, 7) == pytest.approx(
            link.transfer_time_directional(1000, 4000, 7)
        )

    def test_vector_accumulates(self):
        link = LinkModel(bandwidth_bps=1e6, latency_s=0.05)
        ups, downs, trips = [100, 200, 300], [50, 0, 950], [2, 5, 0]
        expected = sum(
            link.transfer_time_directional(u, d, t)
            for u, d, t in zip(ups, downs, trips)
        )
        assert link.transfer_seconds(ups, downs, trips) == pytest.approx(
            expected
        )

    def test_negative_counters_rejected(self):
        link = LinkModel()
        with pytest.raises(ValueError, match="client_to_server_bytes"):
            link.transfer_seconds([-1], [0], [0])
        with pytest.raises(ValueError, match="server_to_client_bytes"):
            link.transfer_seconds(0, -5, 0)
        with pytest.raises(ValueError, match="roundtrips"):
            link.transfer_seconds([1, 2], [3, 4], [1, -1])


# ----------------------------------------------------------------------
# Pipelined vs sequential parity
# ----------------------------------------------------------------------
class TestPipelineParity:
    @pytest.mark.parametrize(
        "method_factory", [OursMethod, MultiroundRsyncMethod]
    )
    def test_outcomes_match_sequential(self, method_factory):
        old_side, new_side = make_collection()
        sequential = sync_collection(
            old_side, new_side, method_factory(), link=LINK
        )
        pipelined = sync_collection(
            old_side, new_side, method_factory(), link=LINK,
            pipeline=True, window=4,
        )
        assert pipelined.pipelined and not sequential.pipelined
        assert pipelined.reconstructed == new_side
        # Byte accounting is identical per file...
        assert pipelined.per_file == sequential.per_file
        # ...and only the shared link's latency accounting collapses.
        assert pipelined.roundtrips_on_wire < sequential.roundtrips_on_wire
        assert pipelined.link_wall_clock_s < sequential.link_wall_clock_s
        assert pipelined.waves > 0
        assert pipelined.mux_overhead_bytes > 0

    @pytest.mark.parametrize(
        "method_factory", [OursMethod, MultiroundRsyncMethod]
    )
    def test_transcripts_bit_identical_modulo_interleaving(
        self, method_factory
    ):
        """Each file's pipelined wire transcript equals its sequential one."""
        old_side, new_side = make_collection(count=4)
        scheduler = CollectionScheduler(method_factory(), window=3, link=LINK)
        run = scheduler.run(
            [(name, old_side[name], new_side[name]) for name in old_side]
        )
        for name in old_side:
            channel = RecordingChannel(LINK)
            session = method_factory().open_session(
                old_side[name], new_side[name]
            )
            session.start(channel)
            while not session.done:
                session.step_round(channel)
            session.finish(channel)
            assert run.transcripts[name] == channel.transcript, name

    def test_cross_engine_parity(self, monkeypatch):
        """Scalar and vectorized engines put identical bytes through the
        pipelined scheduler — wire figures included."""
        old_side, new_side = make_collection(count=4)
        reports = {}
        for engine in ("scalar", "vectorized"):
            monkeypatch.setenv("REPRO_PROTOCOL_ENGINE", engine)
            reports[engine] = sync_collection(
                old_side, new_side, OursMethod(), link=LINK,
                pipeline=True, window=4,
            )
        scalar, vectorized = reports["scalar"], reports["vectorized"]
        assert scalar.per_file == vectorized.per_file
        assert scalar.roundtrips_on_wire == vectorized.roundtrips_on_wire
        assert scalar.link_wall_clock_s == vectorized.link_wall_clock_s
        assert scalar.waves == vectorized.waves
        assert scalar.mux_overhead_bytes == vectorized.mux_overhead_bytes

    def test_cross_executor_parity(self):
        """Serial, pickle-pool and arena-pool sequential runs all agree
        with the pipelined outcomes — the scheduler changes scheduling,
        never bytes."""
        old_side, new_side = make_collection(count=4)
        pipelined = sync_collection(
            old_side, new_side, OursMethod(), link=LINK,
            pipeline=True, window=4,
        )
        variants = [
            dict(workers=1),
            dict(workers=2, use_arena=False),
        ]
        if arena_available():
            variants.append(dict(workers=2, use_arena=True))
        for kwargs in variants:
            sequential = sync_collection(
                old_side, new_side, OursMethod(), link=LINK, **kwargs
            )
            assert sequential.per_file == pipelined.per_file, kwargs

    def test_checkpointed_outcomes_match_sequential(self, tmp_path):
        """Journalling under the scheduler mirrors the supervisor's
        accounting on a clean run."""
        old_side, new_side = make_collection(count=3)
        sequential = sync_collection(
            old_side, new_side, OursMethod(), link=LINK,
            checkpoint_dir=tmp_path / "seq",
        )
        pipelined = sync_collection(
            old_side, new_side, OursMethod(), link=LINK,
            checkpoint_dir=tmp_path / "pipe", pipeline=True, window=3,
        )
        assert pipelined.per_file == sequential.per_file
        assert pipelined.checkpoint_bytes_written > 0
        # Both runs committed every journal away.
        assert sorted((tmp_path / "seq").glob("*.ckpt")) == []
        assert sorted((tmp_path / "pipe").glob("*.ckpt")) == []

    def test_window_one_still_correct(self):
        old_side, new_side = make_collection(count=3)
        report = sync_collection(
            old_side, new_side, OursMethod(), link=LINK,
            pipeline=True, window=1,
        )
        assert report.reconstructed == new_side

    def test_validation(self):
        old_side, new_side = make_collection(count=2)
        with pytest.raises(ValueError, match="does not support pipelined"):
            sync_collection(
                old_side, new_side, RsyncMethod(), pipeline=True
            )
        with pytest.raises(ValueError, match="window"):
            sync_collection(
                old_side, new_side, OursMethod(), pipeline=True, window=0
            )
        from repro.net.faults import FaultPlan

        with pytest.raises(ValueError, match="incompatible"):
            sync_collection(
                old_side, new_side, OursMethod(), pipeline=True,
                fault_plan=FaultPlan.uniform(0.01),
            )
        with pytest.raises(ValueError, match="incompatible"):
            sync_collection(
                old_side, new_side, OursMethod(), pipeline=True,
                deadline_s=5.0,
            )
        with pytest.raises(ValueError, match="on_error"):
            sync_collection(
                old_side, new_side, OursMethod(), pipeline=True,
                on_error="skip",
            )


# ----------------------------------------------------------------------
# Crash mid-wave, resume under the other scheduler
# ----------------------------------------------------------------------
def run_cli(*args, crash_env=None):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_CRASH")}
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if crash_env:
        env.update(crash_env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *map(str, args)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


@pytest.fixture
def crash_pair(tmp_path):
    old_dir = tmp_path / "old"
    new_dir = tmp_path / "new"
    old_dir.mkdir()
    new_dir.mkdir()
    new_side = {}
    for index, seed in enumerate([941, 942, 943]):
        old, new = make_version_pair(seed=seed, nbytes=15000, edits=8)
        (old_dir / f"f{index}.bin").write_bytes(old)
        (new_dir / f"f{index}.bin").write_bytes(new)
        new_side[f"f{index}.bin"] = new
    return old_dir, new_dir, new_side


class TestCrashSchedulerInterchange:
    """Checkpoints are scheduler-agnostic: a run crashed mid-wave under
    one scheduler resumes under the other."""

    @pytest.mark.parametrize(
        "crash_flags,resume_flags",
        [
            pytest.param(["--pipeline", "--window", "3"], [],
                         id="pipelined-crash-sequential-resume"),
            pytest.param([], ["--pipeline", "--window", "3"],
                         id="sequential-crash-pipelined-resume"),
        ],
    )
    def test_crash_resume_across_schedulers(self, tmp_path, crash_pair,
                                            crash_flags, resume_flags):
        old_dir, new_dir, new_side = crash_pair
        ckpt = tmp_path / "ckpt"
        out = tmp_path / "out"

        proc = run_cli(
            "sync", old_dir, new_dir,
            "--checkpoint-dir", ckpt, "--output", out, *crash_flags,
            crash_env={"REPRO_CRASH_AFTER_CHECKPOINTS": "4"},
        )
        assert proc.returncode == -signal.SIGKILL, (
            f"expected SIGKILL, got rc={proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
        assert sorted(ckpt.glob("*.ckpt")), "crashed run left no journal"

        proc = run_cli(
            "sync", old_dir, new_dir,
            "--checkpoint-dir", ckpt, "--output", out,
            "--resume", "--json", *resume_flags,
        )
        assert proc.returncode == 0, proc.stderr
        run = json.loads(proc.stdout)
        assert run["rounds_salvaged"] >= 1
        assert run["resume_handshake_bits"] > 0
        assert run["pipelined"] == bool(resume_flags)
        for name, data in new_side.items():
            assert (out / name).read_bytes() == data
        assert sorted(ckpt.glob("*.ckpt")) == []
