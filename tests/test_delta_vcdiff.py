"""Tests for the simplified VCDIFF-style coder."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import vcdiff_decode, vcdiff_encode, vcdiff_size, zdelta_size
from repro.exceptions import DeltaFormatError
from tests.conftest import make_version_pair


class TestRoundtrip:
    def test_similar_files(self):
        old, new = make_version_pair(seed=11)
        assert vcdiff_decode(old, vcdiff_encode(old, new)) == new

    def test_empty_cases(self):
        assert vcdiff_decode(b"", vcdiff_encode(b"", b"")) == b""
        assert vcdiff_decode(b"r", vcdiff_encode(b"r", b"")) == b""
        assert vcdiff_decode(b"", vcdiff_encode(b"", b"abc")) == b"abc"

    @given(st.binary(max_size=300), st.binary(max_size=300))
    @settings(max_examples=50)
    def test_arbitrary_pairs(self, reference, target):
        assert vcdiff_decode(reference, vcdiff_encode(reference, target)) == target

    def test_self_relative_addressing_negative_distance(self):
        """Copies from *after* the current output position must survive
        the zig-zag address encoding."""
        reference = b"tail-content-material" * 10
        target = reference[150:] + reference[:150]
        assert vcdiff_decode(reference, vcdiff_encode(reference, target)) == target


class TestComparativeQuality:
    def test_weaker_than_zdelta_on_text(self):
        """On redundant text the split-stream coder should win (as zdelta
        beats vcdiff in the paper's tables)."""
        old, new = make_version_pair(seed=12, nbytes=60000, edits=40)
        assert zdelta_size(old, new) <= vcdiff_size(old, new) * 1.25

    def test_still_much_smaller_than_target(self):
        old, new = make_version_pair(seed=13)
        assert vcdiff_size(old, new) < len(new) // 10


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(DeltaFormatError):
            vcdiff_decode(b"ref", b"\x00junk")

    def test_empty_delta(self):
        with pytest.raises(DeltaFormatError):
            vcdiff_decode(b"ref", b"")

    def test_corrupt_body(self):
        old, new = make_version_pair(seed=14, nbytes=2000)
        delta = bytearray(vcdiff_encode(old, new))
        delta[-1] ^= 0x5A
        with pytest.raises(DeltaFormatError):
            vcdiff_decode(old, bytes(delta))
