"""Tests for the parallel sync executor and the hash-index cache."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.hashing import DecomposableAdler, HashIndex, PrefixHasher
from repro.parallel import (
    FileTask,
    HashIndexCache,
    SyncExecutor,
    default_cache,
    reset_default_cache,
)
from repro.syncmethod import MethodOutcome, SyncMethod


class _CountingMethod(SyncMethod):
    """Deterministic toy method: total_bytes = len(new)."""

    name = "counting"

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        return MethodOutcome(
            total_bytes=len(new),
            server_to_client=len(new),
            breakdown={"s2c/full": len(new)},
        )


class _UnpicklableMethod(SyncMethod):
    name = "unpicklable"

    def __init__(self) -> None:
        self._closure = lambda: None  # defeats pickling

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        return MethodOutcome(total_bytes=len(new))


def _tasks(count: int) -> list[FileTask]:
    return [
        FileTask(f"f{i:03d}", b"old" * i, bytes([i % 251]) * (10 + i))
        for i in range(count)
    ]


class TestSyncExecutor:
    def test_serial_preserves_order(self):
        batch = SyncExecutor(workers=1).run(_CountingMethod(), _tasks(9))
        assert [r.name for r in batch.files] == [f"f{i:03d}" for i in range(9)]
        assert batch.workers_used == 1

    def test_parallel_matches_serial(self):
        tasks = _tasks(13)
        serial = SyncExecutor(workers=1).run(_CountingMethod(), tasks)
        parallel = SyncExecutor(workers=2, chunk_size=3).run(
            _CountingMethod(), tasks
        )
        assert [r.name for r in parallel.files] == [r.name for r in serial.files]
        assert [r.outcome.total_bytes for r in parallel.files] == [
            r.outcome.total_bytes for r in serial.files
        ]
        assert parallel.workers_used == 2

    def test_single_task_stays_serial(self):
        batch = SyncExecutor(workers=4).run(_CountingMethod(), _tasks(1))
        assert batch.workers_used == 1

    def test_unpicklable_method_falls_back_to_serial(self):
        batch = SyncExecutor(workers=2).run(_UnpicklableMethod(), _tasks(5))
        assert batch.workers_used == 1
        assert [r.name for r in batch.files] == [f"f{i:03d}" for i in range(5)]

    def test_empty_task_list(self):
        batch = SyncExecutor(workers=2).run(_CountingMethod(), [])
        assert batch.files == []
        assert batch.cpu_seconds == 0.0

    def test_workers_none_uses_cpu_count(self):
        assert SyncExecutor(workers=None).workers == (os.cpu_count() or 1)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            SyncExecutor(workers=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            SyncExecutor(workers=2, chunk_size=0)

    def test_per_file_timing_recorded(self):
        batch = SyncExecutor(workers=1).run(_CountingMethod(), _tasks(3))
        assert all(r.elapsed_seconds >= 0.0 for r in batch.files)
        assert all(r.cpu_seconds >= 0.0 for r in batch.files)


HASHER = DecomposableAdler(seed=5)


class TestHashIndexCache:
    def test_prefix_sums_hit_on_same_content(self):
        cache = HashIndexCache()
        data = b"the same bytes" * 50
        first = cache.prefix_sums(data, HASHER)
        second = cache.prefix_sums(bytes(data), HASHER)  # distinct object
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_content_misses(self):
        cache = HashIndexCache()
        cache.prefix_sums(b"aaaa", HASHER)
        cache.prefix_sums(b"bbbb", HASHER)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_distinct_hashers_do_not_alias(self):
        cache = HashIndexCache()
        data = b"shared content" * 20
        first = cache.prefix_sums(data, DecomposableAdler(seed=1))
        second = cache.prefix_sums(data, DecomposableAdler(seed=2))
        assert first is not second
        assert cache.stats.misses == 2

    def test_hash_index_matches_direct_build(self):
        cache = HashIndexCache()
        data = b"abcdefgh" * 64
        cached = cache.hash_index(data, 16, HASHER)
        direct = HashIndex(data, 16, HASHER)
        assert cached.position_count == direct.position_count
        for position in range(0, cached.position_count, 37):
            assert cached.full_hash_at(position) == direct.full_hash_at(position)
        value = direct.packed_hash_at(5, 12)
        assert cached.lookup(value, 12) == direct.lookup(value, 12)

    def test_hash_index_reuses_prefix_sums(self):
        cache = HashIndexCache()
        data = b"xyz" * 300
        cache.prefix_sums(data, HASHER)
        assert cache.stats.misses == 1
        cache.hash_index(data, 8, HASHER)
        # index miss, but its prefix-sum dependency is a hit
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        cache = HashIndexCache(max_entries=2)
        cache.prefix_sums(b"one", HASHER)
        cache.prefix_sums(b"two", HASHER)
        cache.prefix_sums(b"three", HASHER)  # evicts "one"
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.prefix_sums(b"one", HASHER)  # rebuilt: a miss
        assert cache.stats.misses == 4

    def test_clear_and_reset(self):
        cache = HashIndexCache()
        cache.prefix_sums(b"data", HASHER)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1  # counters survive clear()
        cache.reset_stats()
        assert cache.stats.lookups == 0

    def test_snapshot_keys_stable(self):
        stats = HashIndexCache().stats
        assert list(stats.snapshot()) == [
            "evicted_bytes",
            "evictions",
            "hits",
            "misses",
        ]

    def test_default_cache_is_replaceable(self):
        original = default_cache()
        try:
            replacement = reset_default_cache(max_entries=4)
            assert default_cache() is replacement
            assert replacement.max_entries == 4
        finally:
            # restore a fresh default-sized cache for other tests
            reset_default_cache()
        assert default_cache() is not original


class TestPrefixSumSharing:
    def test_prefix_hasher_accepts_cached_sums(self):
        from repro.hashing import prefix_sums

        data = b"shared buffer" * 40
        sums = prefix_sums(data, HASHER)
        shared = PrefixHasher(data, HASHER, sums=sums)
        fresh = PrefixHasher(data, HASHER)
        for start, length in ((0, 8), (17, 64), (len(data) - 5, 5)):
            assert shared.block_pair(start, length) == fresh.block_pair(
                start, length
            )

    def test_mismatched_sums_rejected(self):
        from repro.hashing import prefix_sums

        sums = prefix_sums(b"short", HASHER)
        with pytest.raises(ValueError):
            PrefixHasher(b"rather longer data", HASHER, sums=sums)

    def test_window_hashes_from_sums_identical(self):
        from repro.hashing import prefix_sums, window_hashes, window_hashes_from_sums

        data = bytes(range(256)) * 8
        sums = prefix_sums(data, HASHER)
        for length in (1, 7, 64, 512):
            np.testing.assert_array_equal(
                window_hashes_from_sums(sums, length),
                window_hashes(data, length, HASHER),
            )
