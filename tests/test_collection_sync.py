"""Tests for whole-collection synchronization."""

from __future__ import annotations

import pytest

from repro.bench import OursMethod, RsyncMethod, ZdeltaMethod
from repro.collection import sync_collection
from repro.exceptions import IntegrityError
from repro.syncmethod import MethodOutcome, SyncMethod
from repro.workloads import gcc_like


@pytest.fixture(scope="module")
def tree():
    return gcc_like(scale=0.08, seed=2)


class TestSyncCollection:
    def test_reconstruction_matches_server(self, tree):
        report = sync_collection(tree.old, tree.new, OursMethod())
        assert report.reconstructed == tree.new

    def test_unchanged_files_cost_only_manifest(self, tree):
        unchanged = {n: tree.old[n] for n in tree.common_names()
                     if tree.old[n] == tree.new[n]}
        report = sync_collection(unchanged, unchanged, OursMethod())
        assert report.changed_transfer_bytes == 0
        assert report.total_bytes == report.manifest_bytes

    def test_added_files_sent_compressed(self, tree):
        added = set(tree.new) - set(tree.old)
        report = sync_collection(tree.old, tree.new, RsyncMethod())
        if added:
            assert report.added_bytes > 0
            raw = sum(len(tree.new[n]) for n in added)
            assert report.added_bytes < raw  # compression helped

    def test_summary_totals(self, tree):
        report = sync_collection(tree.old, tree.new, ZdeltaMethod())
        summary = report.summary()
        assert summary["total"] == (
            summary["manifest"] + summary["changed"] + summary["added"]
        )

    def test_per_file_outcomes_only_for_changed(self, tree):
        report = sync_collection(tree.old, tree.new, OursMethod())
        assert set(report.per_file) == set(report.diff.changed)

    def test_counts(self, tree):
        report = sync_collection(tree.old, tree.new, OursMethod())
        assert report.files_changed == len(report.diff.changed)
        assert report.files_unchanged == len(report.diff.unchanged)
        assert report.files_changed + report.files_unchanged + len(
            report.diff.added
        ) == len(tree.new)


class TestBatchedCollectionSync:
    def test_reconstruction(self, tree):
        from repro.collection import sync_collection_batched

        report = sync_collection_batched(tree.old, tree.new)
        assert report.reconstructed == tree.new
        assert report.method == "ours-batched"

    def test_totals_consistent(self, tree):
        from repro.collection import sync_collection_batched

        report = sync_collection_batched(tree.old, tree.new)
        summary = report.summary()
        assert summary["total"] == (
            summary["manifest"] + summary["changed"] + summary["added"]
        )

    def test_comparable_bytes_to_per_file_mode(self, tree):
        from repro.collection import sync_collection_batched

        batched = sync_collection_batched(tree.old, tree.new)
        per_file = sync_collection(tree.old, tree.new, OursMethod())
        assert batched.total_bytes <= per_file.total_bytes * 1.05

    def test_config_respected(self, tree):
        from repro.collection import sync_collection_batched
        from repro.core import ProtocolConfig

        report = sync_collection_batched(
            tree.old, tree.new, ProtocolConfig(max_rounds=2)
        )
        assert report.reconstructed == tree.new


class _BrokenMethod(SyncMethod):
    name = "broken"

    def sync_file(self, old: bytes, new: bytes) -> MethodOutcome:
        return MethodOutcome(total_bytes=1, correct=False)


class TestVerification:
    def test_incorrect_method_raises(self, tree):
        with pytest.raises(IntegrityError):
            sync_collection(tree.old, tree.new, _BrokenMethod())

    def test_verify_false_skips_check(self, tree):
        report = sync_collection(tree.old, tree.new, _BrokenMethod(), verify=False)
        assert report.total_bytes >= report.manifest_bytes
