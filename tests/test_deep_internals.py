"""Deep internal tests: the machinery behind batch mode, multiround
tokens, reconciliation parameters, and refinement bookkeeping."""

from __future__ import annotations

import random

import pytest

from repro.collection import Manifest, diff_manifests, reconcile_manifests
from repro.core import ProtocolConfig
from repro.core.batch import _FileState
from tests.conftest import make_version_pair


class TestReconcileParameters:
    def _pair(self, changes: int):
        files = {f"f{i:04d}": b"base-%d" % i for i in range(300)}
        new_files = dict(files)
        for i in range(changes):
            new_files[f"f{i:04d}"] = b"edit-%d" % i
        return (
            Manifest.of_collection(files),
            Manifest.of_collection(new_files),
        )

    @pytest.mark.parametrize("digest_bytes", [1, 4, 8, 16])
    def test_any_digest_width_correct(self, digest_bytes):
        """Narrow digests collide (extra recursion / false-clean risk is
        bounded by re-checking entries at the leaves) — the *diff* must
        still be exact for every width because leaf entries are compared
        verbatim."""
        client, server = self._pair(changes=7)
        expected = diff_manifests(client, server)
        diff, _channel = reconcile_manifests(
            client, server, digest_bytes=digest_bytes
        )
        assert diff.changed == expected.changed

    @pytest.mark.parametrize("leaf_size", [1, 2, 16, 64])
    def test_any_leaf_size_correct(self, leaf_size):
        client, server = self._pair(changes=7)
        expected = diff_manifests(client, server)
        diff, _channel = reconcile_manifests(
            client, server, leaf_size=leaf_size
        )
        assert diff.changed == expected.changed

    def test_bigger_leaves_fewer_roundtrips(self):
        client, server = self._pair(changes=7)
        _diff, shallow = reconcile_manifests(client, server, leaf_size=64)
        _diff, deep = reconcile_manifests(client, server, leaf_size=1)
        assert shallow.stats.roundtrips <= deep.stats.roundtrips


class TestMultiroundTokens:
    def test_overlapping_pins_skipped(self):
        """Two pinned blocks claiming overlapping server regions must not
        double-emit bytes."""
        from repro.multiround import MultiroundConfig, multiround_rsync_sync

        # Periodic content guarantees overlapping match opportunities.
        old = b"abcdefgh" * 2000
        new = b"abcdefgh" * 1900 + b"hgfedcba" * 100
        result = multiround_rsync_sync(
            old, new, MultiroundConfig(start_block_size=512, min_block_size=64)
        )
        assert result.reconstructed == new

    def test_all_literal_when_nothing_pins(self):
        from repro.multiround import multiround_rsync_sync

        rng = random.Random(0)
        old = bytes(rng.randrange(256) for _ in range(5000))
        new = bytes(rng.randrange(256) for _ in range(5000))
        result = multiround_rsync_sync(old, new)
        assert result.reconstructed == new
        # Incompressible literal payload dominates.
        assert result.total_bytes > len(new) * 0.95


class TestBatchInternals:
    def test_file_state_defaults(self):
        from repro.core.client import ClientSession
        from repro.core.server import ServerSession

        state = _FileState(
            name="f",
            client=ClientSession(b"old", ProtocolConfig()),
            server=ServerSession(b"new", ProtocolConfig()),
        )
        assert not state.unchanged
        assert state.reconstructed is None

    def test_batch_handles_mixed_sizes(self):
        from repro.core import synchronize_batch

        pairs = {}
        servers = {}
        for index, nbytes in enumerate((100, 5_000, 60_000)):
            old, new = make_version_pair(seed=960 + index, nbytes=nbytes)
            pairs[f"f{index}"] = old
            servers[f"f{index}"] = new
        # One empty and one identical file mixed in.
        pairs["empty"] = b""
        servers["empty"] = b"now it has content"
        pairs["same"] = b"frozen"
        servers["same"] = b"frozen"
        report = synchronize_batch(pairs, servers)
        assert report.reconstructed == servers
        assert "same" in report.unchanged_files


class TestRefinementBookkeeping:
    def test_refined_regions_join_the_map(self):
        from repro.core import synchronize
        from repro.net import SimulatedChannel

        old, new = make_version_pair(seed=970, nbytes=50000, edits=8)
        coarse = ProtocolConfig(
            min_block_size=256, continuation_min_block_size=None
        )
        refined = coarse.with_overrides(refine_boundaries=True)
        channel = SimulatedChannel()
        base_result = synchronize(old, new, coarse)
        refined_result = synchronize(old, new, refined, channel)
        assert refined_result.reconstructed == new
        assert refined_result.known_fraction >= base_result.known_fraction
        # The refined map entries appear as extra matched regions.
        assert refined_result.matched_blocks >= base_result.matched_blocks
