"""Tests for strong verification hashes and fingerprints."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import StrongHasher, file_fingerprint, group_digest, strong_digest


class TestStrongDigest:
    def test_truncation_lengths(self):
        for nbytes in (1, 2, 8, 16):
            assert len(strong_digest(b"data", nbytes=nbytes)) == nbytes

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            strong_digest(b"x", nbytes=0)
        with pytest.raises(ValueError):
            strong_digest(b"x", nbytes=17)

    def test_salt_changes_digest(self):
        assert strong_digest(b"data", salt=b"a") != strong_digest(b"data", salt=b"b")

    def test_prefix_property(self):
        assert strong_digest(b"data", 4) == strong_digest(b"data", 16)[:4]


class TestGroupDigest:
    def test_sensitive_to_every_member(self):
        d1 = strong_digest(b"one")
        d2 = strong_digest(b"two")
        d3 = strong_digest(b"three")
        assert group_digest([d1, d2]) != group_digest([d1, d3])
        assert group_digest([d1, d2]) != group_digest([d2, d1])

    def test_empty_group_is_valid(self):
        assert len(group_digest([])) == 16

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            group_digest([], nbytes=0)


class TestFileFingerprint:
    def test_is_16_bytes(self):
        assert len(file_fingerprint(b"")) == 16

    def test_detects_any_change(self):
        assert file_fingerprint(b"abc") != file_fingerprint(b"abd")


class TestStrongHasher:
    def test_bits_width_range(self):
        hasher = StrongHasher()
        for width in (1, 7, 13, 64, 128):
            assert 0 <= hasher.bits(b"payload", width) < (1 << width)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            StrongHasher().bits(b"x", 0)
        with pytest.raises(ValueError):
            StrongHasher().group_bits([b"x"], 129)

    def test_salted_hashers_differ(self):
        assert StrongHasher(b"s1").bits(b"x", 32) != StrongHasher(b"s2").bits(b"x", 32)

    def test_group_bits_equal_iff_members_equal(self):
        hasher = StrongHasher(b"salt")
        assert hasher.group_bits([b"a", b"b"], 40) == hasher.group_bits(
            [b"a", b"b"], 40
        )
        assert hasher.group_bits([b"a", b"b"], 40) != hasher.group_bits(
            [b"a", b"c"], 40
        )

    @given(st.binary(max_size=100), st.integers(1, 64))
    def test_bits_deterministic(self, data, width):
        hasher = StrongHasher(b"fixed")
        assert hasher.bits(data, width) == hasher.bits(data, width)

    def test_bits_distribution_rough(self):
        """Top bit should be set about half the time."""
        hasher = StrongHasher()
        ones = sum(hasher.bits(i.to_bytes(2, "big"), 1) for i in range(400))
        assert 120 < ones < 280


class TestStrongHashProperties:
    """Hypothesis property pins for the digests the repair rounds rely on.

    The group-digest descent (DESIGN §15) assumes exactly these
    invariants: a fresh salt re-randomises every digest, group digests
    commit to member *order*, and truncation stays a pure prefix at both
    extremes of the allowed range.
    """

    @given(st.binary(max_size=256),
           st.binary(max_size=24), st.binary(max_size=24))
    def test_salt_sensitivity(self, data, salt_a, salt_b):
        digests_equal = (
            strong_digest(data, salt=salt_a) == strong_digest(data, salt=salt_b)
        )
        assert digests_equal == (salt_a == salt_b)

    @given(st.lists(st.binary(min_size=1, max_size=16),
                    min_size=2, max_size=8, unique=True),
           st.randoms(use_true_random=False))
    def test_group_digest_member_order_sensitivity(self, members, rnd):
        shuffled = list(members)
        rnd.shuffle(shuffled)
        groups_equal = group_digest(members) == group_digest(shuffled)
        assert groups_equal == (members == shuffled)

    @given(st.binary(max_size=256), st.binary(max_size=16))
    def test_truncation_edges(self, data, salt):
        full = strong_digest(data, nbytes=16, salt=salt)
        single = strong_digest(data, nbytes=1, salt=salt)
        assert len(full) == 16 and len(single) == 1
        assert single == full[:1]

    @given(st.lists(st.binary(min_size=16, max_size=16),
                    min_size=0, max_size=6))
    def test_group_digest_truncation_edges(self, members):
        full = group_digest(members, nbytes=16)
        assert group_digest(members, nbytes=1) == full[:1]
        assert len(full) == 16
