"""Tests for the vectorised window scans, prefix hasher, and hash index."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import DecomposableAdler, HashIndex, PrefixHasher, window_hashes
from repro.hashing.scan import pack_to_width

HASHER = DecomposableAdler(seed=5)


class TestWindowHashes:
    def test_empty_for_short_data(self):
        assert window_hashes(b"ab", 5, HASHER).size == 0

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            window_hashes(b"abc", 0, HASHER)

    def test_count(self):
        assert window_hashes(b"abcdef", 3, HASHER).size == 4

    @given(st.binary(min_size=1, max_size=400), st.integers(1, 48))
    @settings(max_examples=60)
    def test_matches_direct_hash(self, data, length):
        hashes = window_hashes(data, length, HASHER)
        expected_count = max(0, len(data) - length + 1)
        assert hashes.size == expected_count
        for i in range(0, expected_count, max(1, expected_count // 7)):
            pair = HASHER.hash_block(data[i : i + length])
            assert int(hashes[i]) == pair.a | (pair.b << 16)

    def test_uint64_wraparound_consistency(self):
        """Large inputs exercise the modular wraparound path."""
        rng = random.Random(9)
        data = bytes(rng.randrange(256) for _ in range(100_000))
        hashes = window_hashes(data, 64, HASHER)
        for i in (0, 50_000, len(data) - 64):
            pair = HASHER.hash_block(data[i : i + 64])
            assert int(hashes[i]) == pair.a | (pair.b << 16)


class TestPackToWidth:
    @given(st.binary(min_size=16, max_size=64), st.integers(1, 32))
    @settings(max_examples=40)
    def test_matches_scalar_pack(self, data, width):
        hashes = window_hashes(data, 8, HASHER)
        packed = pack_to_width(hashes, width)
        for i in range(hashes.size):
            assert int(packed[i]) == DecomposableAdler.truncate(
                int(hashes[i]), 32, width
            )


class TestPrefixHasher:
    def test_matches_hash_block(self):
        rng = random.Random(2)
        data = bytes(rng.randrange(256) for _ in range(5000))
        prefix = PrefixHasher(data, HASHER)
        for start, length in ((0, 1), (17, 100), (4000, 1000), (4999, 1)):
            assert prefix.block_pair(start, length) == HASHER.hash_block(
                data[start : start + length]
            )

    def test_bounds_checked(self):
        prefix = PrefixHasher(b"abcdef", HASHER)
        with pytest.raises(ValueError):
            prefix.block_pair(4, 10)
        with pytest.raises(ValueError):
            prefix.block_pair(-1, 2)
        with pytest.raises(ValueError):
            prefix.block_pair(0, 0)

    def test_packed_matches_pack(self):
        data = b"some longer test data for the prefix hasher"
        prefix = PrefixHasher(data, HASHER)
        assert prefix.packed(5, 10, 13) == DecomposableAdler.pack(
            HASHER.hash_block(data[5:15]), 13
        )


class TestHashIndex:
    def test_lookup_finds_planted_window(self):
        rng = random.Random(4)
        data = bytes(rng.randrange(256) for _ in range(4000))
        index = HashIndex(data, 32, HASHER)
        value = index.packed_hash_at(1234, 20)
        assert 1234 in index.lookup(value, 20)

    def test_lookup_respects_cap(self):
        data = b"\x00" * 1000  # every window identical
        index = HashIndex(data, 16, HASHER)
        value = index.packed_hash_at(0, 12)
        assert len(index.lookup(value, 12, max_results=5)) == 5

    def test_lookup_on_empty_index(self):
        index = HashIndex(b"ab", 16, HASHER)
        assert index.lookup(0, 12) == []
        assert index.position_count == 0

    def test_lookup_in_range(self):
        data = b"prefix " + b"NEEDLEBLOCKDATA!" + b" middle " + b"NEEDLEBLOCKDATA!" + b" end"
        index = HashIndex(data, 16, HASHER)
        first = data.index(b"NEEDLEBLOCKDATA!")
        second = data.index(b"NEEDLEBLOCKDATA!", first + 1)
        value = index.packed_hash_at(first, 16)
        everywhere = index.lookup(value, 16)
        assert first in everywhere and second in everywhere
        only_second = index.lookup_in_range(value, 16, second - 3, second + 3)
        assert only_second == [second]

    def test_lookup_in_range_clamps_bounds(self):
        data = bytes(range(256)) * 4
        index = HashIndex(data, 8, HASHER)
        value = index.packed_hash_at(0, 10)
        assert 0 in index.lookup_in_range(value, 10, -100, 10_000)

    def test_full_hash_at(self):
        data = b"window hashing test data"
        index = HashIndex(data, 8, HASHER)
        pair = HASHER.hash_block(data[3:11])
        assert index.full_hash_at(3) == pair.a | (pair.b << 16)

    def test_distinct_widths_cached_independently(self):
        data = bytes(range(200))
        index = HashIndex(data, 16, HASHER)
        v8 = index.packed_hash_at(10, 8)
        v24 = index.packed_hash_at(10, 24)
        assert 10 in index.lookup(v8, 8)
        assert 10 in index.lookup(v24, 24)


class TestLookupTypesAndEquivalence:
    """lookup/lookup_in_range return plain ints, and the width-index
    shortcut in lookup_in_range is equivalent to the packed-slice scan."""

    def test_lookup_returns_python_ints(self):
        data = bytes(range(256)) * 4
        index = HashIndex(data, 16, HASHER)
        value = index.packed_hash_at(40, 14)
        positions = index.lookup(value, 14)
        assert positions and all(type(p) is int for p in positions)

    def test_lookup_in_range_returns_python_ints(self):
        data = bytes(range(256)) * 4
        index = HashIndex(data, 16, HASHER)
        value = index.packed_hash_at(40, 14)
        # No width index built for width 15 yet: slice-scan branch.
        fresh = HashIndex(data, 16, HASHER)
        positions = fresh.lookup_in_range(value, 14, 0, 10_000)
        assert all(type(p) is int for p in positions)

    @given(st.integers(0, 6))
    @settings(max_examples=20, deadline=None)
    def test_range_lookup_same_with_and_without_width_index(self, seed):
        rng = random.Random(seed)
        data = bytes(rng.randrange(8) for _ in range(1500))  # many collisions
        width = 10
        queries = []
        probe = HashIndex(data, 12, HASHER)
        for _ in range(12):
            position = rng.randrange(probe.position_count)
            lo = rng.randrange(probe.position_count)
            hi = lo + rng.randrange(1, 400)
            queries.append((probe.packed_hash_at(position, width), lo, hi))

        cold = HashIndex(data, 12, HASHER)  # never builds a width index
        warm = HashIndex(data, 12, HASHER)
        warm.lookup(queries[0][0], width)  # force the width index to exist
        assert width in warm._by_width and width not in cold._by_width
        for value, lo, hi in queries:
            assert warm.lookup_in_range(value, width, lo, hi) == (
                cold.lookup_in_range(value, width, lo, hi)
            )

    def test_range_lookup_cap_applies_on_both_branches(self):
        data = b"\x00" * 1200  # every window identical
        width = 10
        cold = HashIndex(data, 16, HASHER)
        warm = HashIndex(data, 16, HASHER)
        value = warm.packed_hash_at(0, width)
        warm.lookup(value, width)
        for index in (cold, warm):
            positions = index.lookup_in_range(
                value, width, 100, 900, max_results=5
            )
            assert positions == list(range(100, 105))
