"""The rsync algorithm of Tridgell & MacKerras — the paper's main baseline.

The client splits its outdated file into fixed-size blocks and sends, for
each block, a 4-byte rolling checksum plus a truncated strong hash.  The
server slides a window over the current file, matching against the received
signatures at *every* offset, and replies with a compressed stream of
literals and block references from which the client reconstructs the
current file.

:func:`rsync_sync` runs the whole exchange over a
:class:`~repro.net.SimulatedChannel`; :func:`rsync_optimal` additionally
searches for the per-file best block size (the idealised baseline the paper
plots alongside the default block size).
"""

from repro.rsync.inplace import InPlaceResult, apply_tokens_in_place
from repro.rsync.optimal import DEFAULT_SEARCH_BLOCK_SIZES, rsync_optimal
from repro.rsync.protocol import DEFAULT_BLOCK_SIZE, RsyncResult, rsync_sync
from repro.rsync.signature import BlockSignature, compute_signatures
from repro.rsync.matcher import Literal, Reference, Token, match_tokens

__all__ = [
    "BlockSignature",
    "InPlaceResult",
    "apply_tokens_in_place",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_SEARCH_BLOCK_SIZES",
    "Literal",
    "Reference",
    "RsyncResult",
    "Token",
    "compute_signatures",
    "match_tokens",
    "rsync_optimal",
    "rsync_sync",
]
