"""End-to-end rsync exchange over the simulated channel.

Wire layout:

* client → server, phase ``"signatures"``: varint block size, varint block
  count, then ``4 + strong_bytes`` bytes per block;
* server → client, phase ``"delta"``: zlib-compressed literal/reference
  token stream (rsync compresses this stream "using an algorithm similar
  to gzip"), preceded by the 16-byte whole-file checksum used to detect
  the unlikely double-checksum failure;
* on checksum failure the client first requests a *surgical repair*
  (phase ``"repair"``): a group-digest descent under a fresh salt
  localizes the divergent blocks and re-fetches only those
  (:mod:`repro.core.repair`);
* only if repair cannot converge does the server fall back to sending
  the whole file (compressed) — recovery traffic charged to
  ``retransmitted_bits`` like every other recovery path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.core.repair import (
    DEFAULT_REPAIR_FANOUT,
    PHASE_REPAIR,
    repair_exchange,
)
from repro.exceptions import DeltaFormatError
from repro.hashing.strong import file_fingerprint
from repro.io.varint import decode_uvarint, encode_uvarint
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction, TransferStats
from repro.rsync.matcher import Literal, Reference, Token, apply_tokens, match_tokens
from repro.rsync.signature import (
    DEFAULT_STRONG_BYTES,
    ROLLING_BYTES,
    compute_signatures,
)

#: rsync's default block size (the tool's historical default is around
#: 700 bytes; the paper benchmarks "rsync with default block size").
DEFAULT_BLOCK_SIZE = 700

_TOKEN_LITERAL = 0x00
_TOKEN_REFERENCE = 0x01


@dataclass
class RsyncResult:
    """Outcome of one rsync run.

    ``collisions_detected`` counts whole-file fingerprint rejections (0
    or 1 per run); ``repaired`` means the surgical repair rounds fixed
    the divergence in place, with ``repair_rounds`` descent roundtrips
    costing ``repair_bytes`` on the wire.  ``used_fallback`` still means
    a full compressed transfer happened (repair declined or failed).
    """

    reconstructed: bytes
    stats: TransferStats
    block_size: int
    used_fallback: bool
    collisions_detected: int = 0
    repaired: bool = False
    repair_rounds: int = 0
    repair_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.stats.total_bytes


def encode_tokens(tokens: list[Token]) -> bytes:
    """Serialise and compress the server's token stream."""
    raw = bytearray()
    for token in tokens:
        if isinstance(token, Reference):
            raw.append(_TOKEN_REFERENCE)
            raw += encode_uvarint(token.index)
        else:
            raw.append(_TOKEN_LITERAL)
            raw += encode_uvarint(len(token.data))
            raw += token.data
    return zlib.compress(bytes(raw), 9)


def decode_tokens(payload: bytes) -> list[Token]:
    """Inverse of :func:`encode_tokens`."""
    try:
        raw = zlib.decompress(payload)
    except zlib.error as error:
        raise DeltaFormatError(f"token stream corrupt: {error}") from error
    tokens: list[Token] = []
    position = 0
    while position < len(raw):
        kind = raw[position]
        position += 1
        if kind == _TOKEN_REFERENCE:
            index, position = decode_uvarint(raw, position)
            tokens.append(Reference(index))
        elif kind == _TOKEN_LITERAL:
            length, position = decode_uvarint(raw, position)
            data = raw[position : position + length]
            if len(data) != length:
                raise DeltaFormatError("literal token truncated")
            position += length
            tokens.append(Literal(bytes(data)))
        else:
            raise DeltaFormatError(f"unknown token kind {kind:#x}")
    return tokens


def _parse_signatures(payload: bytes) -> list:
    """Parse the client's signature message back into signature objects."""
    from repro.rsync.signature import BlockSignature

    block_size, position = decode_uvarint(payload, 0)
    strong_bytes, position = decode_uvarint(payload, position)
    file_length, position = decode_uvarint(payload, position)
    signatures = []
    index = 0
    remaining = file_length
    entry_size = ROLLING_BYTES + strong_bytes
    while position < len(payload):
        if position + entry_size > len(payload):
            raise DeltaFormatError("signature message truncated")
        rolling = int.from_bytes(payload[position : position + ROLLING_BYTES], "big")
        position += ROLLING_BYTES
        strong = payload[position : position + strong_bytes]
        position += strong_bytes
        signatures.append(
            BlockSignature(
                index=index,
                length=min(block_size, remaining),
                rolling=rolling,
                strong=strong,
            )
        )
        remaining -= min(block_size, remaining)
        index += 1
    return signatures


def rsync_sync(
    old_data: bytes,
    new_data: bytes,
    block_size: int = DEFAULT_BLOCK_SIZE,
    strong_bytes: int = DEFAULT_STRONG_BYTES,
    channel: SimulatedChannel | None = None,
    salt: bytes = b"",
    repair: bool = True,
    repair_fanout: int = DEFAULT_REPAIR_FANOUT,
) -> RsyncResult:
    """Synchronise the client's ``old_data`` to the server's ``new_data``.

    Returns the reconstructed file (always equal to ``new_data``: the
    whole-file checksum catches the rare double-collision, answered by a
    surgical repair round or — when ``repair`` is off or cannot converge
    — the full-transfer fallback) along with exact transfer accounting.
    """
    if channel is None:
        channel = SimulatedChannel()

    # Client: sign blocks and send the signatures.
    signatures = compute_signatures(
        old_data, block_size, strong_bytes=strong_bytes, salt=salt
    )
    signature_payload = bytearray()
    signature_payload += encode_uvarint(block_size)
    signature_payload += encode_uvarint(strong_bytes)
    signature_payload += encode_uvarint(len(old_data))
    for signature in signatures:
        signature_payload += signature.rolling.to_bytes(ROLLING_BYTES, "big")
        signature_payload += signature.strong
    channel.send(
        Direction.CLIENT_TO_SERVER, bytes(signature_payload), phase="signatures"
    )

    # Server: parse signatures from the wire, match, and send the delta.
    received_signatures = _parse_signatures(
        channel.receive(Direction.CLIENT_TO_SERVER)
    )
    tokens = match_tokens(new_data, received_signatures, strong_bytes, salt=salt)
    delta_payload = file_fingerprint(new_data) + encode_tokens(tokens)
    channel.send(Direction.SERVER_TO_CLIENT, delta_payload, phase="delta")
    received = channel.receive(Direction.SERVER_TO_CLIENT)

    # Client: reconstruct and check.
    expected_fingerprint = received[:16]
    reconstructed = apply_tokens(
        old_data, decode_tokens(received[16:]), block_size
    )
    used_fallback = False
    collisions_detected = 0
    repaired = False
    repair_rounds = 0
    repair_bytes = 0
    if file_fingerprint(reconstructed) != expected_fingerprint:
        collisions_detected = 1
        # A truncated-hash collision preserves lengths; anything else
        # (decode damage, truncation) is not surgically repairable.
        if repair and new_data and len(reconstructed) == len(new_data):
            channel.send(Direction.CLIENT_TO_SERVER, b"\x02", phase=PHASE_REPAIR)
            channel.receive(Direction.CLIENT_TO_SERVER)
            outcome = repair_exchange(
                channel,
                reconstructed,
                new_data,
                expected_fingerprint,
                leaf_size=block_size,
                fanout=repair_fanout,
            )
            repair_rounds = outcome.rounds
            repair_bytes = channel.stats.bytes_in_phase(PHASE_REPAIR)
            if outcome.converged:
                reconstructed = outcome.data
                repaired = True
        if not repaired:
            # Fallback: one NACK byte, then the whole file compressed.
            used_fallback = True
            channel.send(Direction.CLIENT_TO_SERVER, b"\x01", phase="fallback")
            channel.receive(Direction.CLIENT_TO_SERVER)
            full_payload = zlib.compress(new_data, 9)
            channel.send(Direction.SERVER_TO_CLIENT, full_payload, phase="fallback")
            reconstructed = zlib.decompress(channel.receive(Direction.SERVER_TO_CLIENT))
            # The NACK plus the whole compressed file — and any repair
            # descent that failed to converge — is recovery traffic, not
            # first-try payload.
            channel.stats.reclassify_phase_as_retransmission("fallback")
            channel.stats.reclassify_phase_as_retransmission(PHASE_REPAIR)
    return RsyncResult(
        reconstructed=reconstructed,
        stats=channel.stats,
        block_size=block_size,
        used_fallback=used_fallback,
        collisions_detected=collisions_detected,
        repaired=repaired,
        repair_rounds=repair_rounds,
        repair_bytes=repair_bytes,
    )
