"""Idealised rsync: per-file optimal block size.

The paper plots "rsync with an optimally chosen block size for each
individual file" as the strongest version of the baseline.  The optimum is
found by actually running the exchange at each candidate block size and
keeping the cheapest — an oracle no real deployment has, which is the
point of the comparison.
"""

from __future__ import annotations

from repro.net.channel import SimulatedChannel
from repro.rsync.protocol import RsyncResult, rsync_sync
from repro.rsync.signature import DEFAULT_STRONG_BYTES

DEFAULT_SEARCH_BLOCK_SIZES: tuple[int, ...] = (
    128,
    256,
    512,
    1024,
    2048,
    4096,
    8192,
)


def rsync_optimal(
    old_data: bytes,
    new_data: bytes,
    block_sizes: tuple[int, ...] = DEFAULT_SEARCH_BLOCK_SIZES,
    strong_bytes: int = DEFAULT_STRONG_BYTES,
    salt: bytes = b"",
) -> RsyncResult:
    """Run rsync at every candidate block size and return the cheapest."""
    if not block_sizes:
        raise ValueError("block_sizes must be non-empty")
    best: RsyncResult | None = None
    for block_size in block_sizes:
        result = rsync_sync(
            old_data,
            new_data,
            block_size=block_size,
            strong_bytes=strong_bytes,
            channel=SimulatedChannel(),
            salt=salt,
        )
        if best is None or result.total_bytes < best.total_bytes:
            best = result
    assert best is not None
    return best
