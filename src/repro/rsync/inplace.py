"""In-place reconstruction for mobile and wireless devices.

Rasch & Burns ("In-place rsync", USENIX 2003 — reference [40] of the
paper) showed how a space-constrained client can apply the rsync delta
*inside the old file's buffer* instead of writing a second copy.  The
catch: a block copy may read a region that an earlier write already
clobbered.  The fix is to order the operations so every copy reads
before anything overwrites its source, and to break dependency *cycles*
by downgrading a copy to a literal (those bytes must then travel over
the wire, which is the technique's bandwidth cost).

:func:`apply_tokens_in_place` performs the reordering and reports how
many extra literal bytes the cycle-breaking required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rsync.matcher import Literal, Reference, Token


@dataclass
class InPlaceResult:
    """Outcome of an in-place reconstruction."""

    data: bytes
    converted_literal_bytes: int  # extra bytes a real client would fetch
    operations: int


@dataclass
class _Operation:
    out_start: int
    out_end: int
    src_start: int | None  # None for literal writes
    src_end: int | None
    payload: bytes | None  # literal bytes (original or converted)
    token_index: int

    @property
    def is_copy(self) -> bool:
        return self.src_start is not None


def _layout(
    old_data: bytes, tokens: list[Token], block_size: int
) -> list[_Operation]:
    """Assign output ranges to tokens and resolve copy source ranges."""
    operations = []
    cursor = 0
    for index, token in enumerate(tokens):
        if isinstance(token, Reference):
            src_start = token.index * block_size
            src_end = min(src_start + block_size, len(old_data))
            length = src_end - src_start
            operations.append(
                _Operation(
                    out_start=cursor,
                    out_end=cursor + length,
                    src_start=src_start,
                    src_end=src_end,
                    payload=None,
                    token_index=index,
                )
            )
            cursor += length
        else:
            operations.append(
                _Operation(
                    out_start=cursor,
                    out_end=cursor + len(token.data),
                    src_start=None,
                    src_end=None,
                    payload=token.data,
                    token_index=index,
                )
            )
            cursor += len(token.data)
    return operations


def _overlaps(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
    return a_start < b_end and b_start < a_end


def _build_read_before_write_edges(
    operations: list[_Operation],
) -> tuple[dict[int, set[int]], list[int]]:
    """Edges ``reader -> writer``: the reader must execute first.

    Self-overlap is excluded (handled by memmove-style copying).
    Returns (successors, in_degree).
    """
    successors: dict[int, set[int]] = {i: set() for i in range(len(operations))}
    in_degree = [0] * len(operations)
    # Sweep: writers sorted by out_start; readers query by src interval.
    writer_order = sorted(
        range(len(operations)), key=lambda i: operations[i].out_start
    )
    writer_starts = [operations[i].out_start for i in writer_order]
    import bisect

    for reader_id, reader in enumerate(operations):
        if not reader.is_copy:
            continue
        assert reader.src_start is not None and reader.src_end is not None
        # Any writer whose out range intersects [src_start, src_end).
        position = bisect.bisect_left(writer_starts, reader.src_end)
        for writer_pos in range(position - 1, -1, -1):
            writer_id = writer_order[writer_pos]
            writer = operations[writer_id]
            if writer.out_end <= reader.src_start:
                # Writers are sorted by start, but earlier writers can
                # still reach into the window; stop once even the widest
                # possible writer cannot overlap.  Out ranges are disjoint
                # (each output byte written once), so we can stop at the
                # first non-overlapping writer.
                break
            if writer_id == reader_id:
                continue
            if _overlaps(
                writer.out_start, writer.out_end,
                reader.src_start, reader.src_end,
            ):
                if writer_id not in successors[reader_id]:
                    successors[reader_id].add(writer_id)
                    in_degree[writer_id] += 1
    return successors, in_degree


def apply_tokens_in_place(
    old_data: bytes,
    tokens: list[Token],
    block_size: int,
    new_data_for_conversion: bytes | None = None,
) -> InPlaceResult:
    """Reconstruct the new file inside a single buffer.

    ``new_data_for_conversion`` supplies the bytes for copies that must be
    downgraded to literals (in a real deployment the client would request
    them from the server); it defaults to replaying the token stream,
    which is always available to the caller in tests.
    """
    operations = _layout(old_data, tokens, block_size)
    new_length = operations[-1].out_end if operations else 0

    if new_data_for_conversion is None:
        # Reference reconstruction used only to source converted literals.
        from repro.rsync.matcher import apply_tokens

        new_data_for_conversion = apply_tokens(old_data, tokens, block_size)

    successors, in_degree = _build_read_before_write_edges(operations)

    # Kahn's algorithm with cycle breaking: a stuck state means every
    # remaining operation waits on a reader inside a cycle; downgrading
    # one copy to a literal removes its read constraint.
    import heapq

    ready = [i for i, degree in enumerate(in_degree) if degree == 0]
    heapq.heapify(ready)
    done = [False] * len(operations)
    order: list[int] = []
    converted = 0
    remaining = set(range(len(operations)))

    while remaining:
        while ready:
            op_id = heapq.heappop(ready)
            if done[op_id]:
                continue
            done[op_id] = True
            remaining.discard(op_id)
            order.append(op_id)
            for successor in successors[op_id]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0 and not done[successor]:
                    heapq.heappush(ready, successor)
        if not remaining:
            break
        # Cycle: convert the copy with the smallest output range to a
        # literal (cheapest extra transfer) and release its constraints.
        candidates = [i for i in remaining if operations[i].is_copy]
        victim_id = min(
            candidates,
            key=lambda i: (operations[i].out_end - operations[i].out_start, i),
        )
        victim = operations[victim_id]
        victim.payload = new_data_for_conversion[
            victim.out_start : victim.out_end
        ]
        converted += victim.out_end - victim.out_start
        victim.src_start = None
        victim.src_end = None
        for successor in successors[victim_id]:
            in_degree[successor] -= 1
            if in_degree[successor] == 0 and not done[successor]:
                heapq.heappush(ready, successor)
        successors[victim_id] = set()
        if in_degree[victim_id] == 0:
            heapq.heappush(ready, victim_id)
        else:
            # Still blocked as a *writer*; it will be released normally.
            pass

    # Execute: one buffer, memmove semantics per operation.
    buffer = bytearray(max(len(old_data), new_length))
    buffer[: len(old_data)] = old_data
    for op_id in order:
        operation = operations[op_id]
        if operation.is_copy:
            assert operation.src_start is not None
            chunk = bytes(buffer[operation.src_start : operation.src_end])
            buffer[operation.out_start : operation.out_end] = chunk
        else:
            assert operation.payload is not None
            buffer[operation.out_start : operation.out_end] = operation.payload
    return InPlaceResult(
        data=bytes(buffer[:new_length]),
        converted_literal_bytes=converted,
        operations=len(operations),
    )
