"""Server-side rsync matching: slide a window over the current file.

The server compares the received rolling checksums against every offset of
``F_new`` (numpy precomputes the rolling checksum of all windows; the
Python loop only decides matches and emits tokens).  A rolling hit is
confirmed with the truncated strong hash before a block reference is
emitted — exactly rsync's two-level scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import next_occupied_table, window_hashes
from repro.hashing.strong import strong_digest
from repro.rsync.signature import BlockSignature

#: Identity-table hasher: window_hashes() then yields rsync's plain Adler
#: checksum, packed ``a | (b << 16)`` like :class:`AdlerRolling`.
_PLAIN_ADLER = DecomposableAdler.identity()


@dataclass(frozen=True)
class Literal:
    """A run of raw bytes in the server's delta stream."""

    data: bytes


@dataclass(frozen=True)
class Reference:
    """A reference to one of the client's signed blocks."""

    index: int


Token = Union[Literal, Reference]


def _rolling_table(
    signatures: list[BlockSignature],
) -> dict[int, dict[int, list[BlockSignature]]]:
    """Nested lookup: block length -> rolling checksum -> signatures."""
    table: dict[int, dict[int, list[BlockSignature]]] = {}
    for signature in signatures:
        table.setdefault(signature.length, {}).setdefault(
            signature.rolling, []
        ).append(signature)
    return table


def match_tokens(
    new_data: bytes,
    signatures: list[BlockSignature],
    strong_bytes: int,
    salt: bytes = b"",
) -> list[Token]:
    """Produce the literal/reference token stream encoding ``new_data``.

    Greedy left-to-right scan: at each offset try to match a signed block
    (longest block length first); on a confirmed match, jump past it.
    """
    if not signatures:
        return [Literal(new_data)] if new_data else []

    by_length = _rolling_table(signatures)
    # Precompute rolling checksums of every window, once per block length
    # (at most two lengths: the full block size and the short tail), then
    # reduce each to the positions whose checksum appears in the signature
    # set so the scan can jump between potential hits instead of advancing
    # byte by byte.
    n = len(new_data)
    rolling_at: dict[int, np.ndarray] = {}
    possible_hit = np.zeros(n, dtype=bool)
    for length, rolling_map in by_length.items():
        windows = window_hashes(new_data, length, _PLAIN_ADLER)
        rolling_at[length] = windows
        wanted = np.fromiter(
            rolling_map.keys(), dtype=np.uint32, count=len(rolling_map)
        )
        possible_hit[: windows.size] |= np.isin(windows, wanted)
    # Jump table instead of a binary search per loop iteration: the next
    # offset whose rolling checksum can possibly match is an O(1) lookup.
    jump = next_occupied_table(possible_hit)
    lengths = sorted(by_length, reverse=True)

    tokens: list[Token] = []
    literals = bytearray()
    position = 0

    def flush() -> None:
        if literals:
            tokens.append(Literal(bytes(literals)))
            literals.clear()

    while position < n:
        next_hit = int(jump[position])
        if next_hit == n:
            literals += new_data[position:]
            break
        if next_hit > position:
            literals += new_data[position:next_hit]
            position = next_hit

        matched = None
        for length in lengths:
            windows = rolling_at[length]
            if position >= windows.size:
                continue
            candidates = by_length[length].get(int(windows[position]))
            if not candidates:
                continue
            window = new_data[position : position + length]
            window_strong = strong_digest(window, nbytes=strong_bytes, salt=salt)
            for signature in candidates:
                if signature.strong == window_strong:
                    matched = signature
                    break
            if matched is not None:
                break
        if matched is None:
            literals.append(new_data[position])
            position += 1
        else:
            flush()
            tokens.append(Reference(matched.index))
            position += matched.length
    flush()
    return tokens


def apply_tokens(
    old_data: bytes, tokens: list[Token], block_size: int
) -> bytes:
    """Client-side reconstruction from the token stream."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Reference):
            start = token.index * block_size
            out += old_data[start : start + block_size]
        else:
            out += token.data
    return bytes(out)
