"""Client-side block signatures for the rsync algorithm."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashing.rolling import AdlerRolling
from repro.hashing.strong import strong_digest

#: rsync transmits the 4-byte rolling checksum plus 2 bytes of the strong
#: hash per block ("only two bytes of the MD4 hash are used since this
#: provides sufficient power").
DEFAULT_STRONG_BYTES = 2
ROLLING_BYTES = 4


@dataclass(frozen=True)
class BlockSignature:
    """Signature of one client block."""

    index: int
    length: int
    rolling: int
    strong: bytes


def compute_signatures(
    data: bytes,
    block_size: int,
    strong_bytes: int = DEFAULT_STRONG_BYTES,
    salt: bytes = b"",
) -> list[BlockSignature]:
    """Split ``data`` into blocks of ``block_size`` and sign each one.

    The final block may be shorter; rsync signs it too so a common file
    tail can still be matched.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    signatures = []
    for index, start in enumerate(range(0, len(data), block_size)):
        block = data[start : start + block_size]
        signatures.append(
            BlockSignature(
                index=index,
                length=len(block),
                rolling=AdlerRolling.of(block),
                strong=strong_digest(block, nbytes=strong_bytes, salt=salt),
            )
        )
    return signatures


def signature_wire_bytes(
    signatures: list[BlockSignature], strong_bytes: int = DEFAULT_STRONG_BYTES
) -> int:
    """Bytes the client sends for its signatures (excluding tiny header)."""
    return len(signatures) * (ROLLING_BYTES + strong_bytes)
