"""Monte Carlo simulation of verification strategies.

Cross-validates the closed-form model in
:mod:`repro.grouptesting.analysis` and lets the ablation benchmarks
explore strategies the model does not cover (adaptive group sizes, the
Dorfman rule applied online, ...).  Candidates are Bernoulli
true-or-false; a ``b``-bit hash of a false candidate passes with
probability ``2**-b``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.grouptesting.strategies import (
    BatchMode,
    BatchScope,
    VerificationStrategy,
)


@dataclass
class SimulationOutcome:
    """Aggregate results over all simulation trials."""

    trials: int
    mean_bits: float
    mean_true_accepted: float
    mean_false_accepted: float

    def bits_per_true_match(self) -> float:
        if self.mean_true_accepted == 0:
            return float("inf")
        return self.mean_bits / self.mean_true_accepted


def simulate_strategy(
    strategy: VerificationStrategy,
    candidates: int,
    false_rate: float,
    trials: int = 200,
    seed: int = 0,
) -> SimulationOutcome:
    """Run ``trials`` independent verification exchanges."""
    if candidates < 0:
        raise ValueError("candidates must be non-negative")
    if not 0.0 <= false_rate <= 1.0:
        raise ValueError("false_rate must be in [0, 1]")
    rng = random.Random(seed)
    total_bits = 0
    total_true = 0
    total_false = 0

    for _ in range(trials):
        truth = [rng.random() >= false_rate for _ in range(candidates)]
        main = list(range(candidates))
        salvage: list[int] = []
        accepted: list[int] = []
        for batch in strategy.batches:
            if batch.scope is BatchScope.FAILED_GROUP_MEMBERS:
                selection, salvage = salvage, []
            else:
                selection = main
            if not selection:
                continue
            if batch.mode is BatchMode.INDIVIDUAL:
                units = [[i] for i in selection]
            else:
                units = [
                    selection[i : i + batch.group_size]
                    for i in range(0, len(selection), batch.group_size)
                ]
            total_bits += len(units) * batch.bits
            passed_items: list[int] = []
            failed_items: list[int] = []
            collide = 2.0 ** (-batch.bits)
            for unit in units:
                ok = all(
                    truth[i] or rng.random() < collide for i in unit
                )
                (passed_items if ok else failed_items).extend(unit)
            if batch.scope is BatchScope.FAILED_GROUP_MEMBERS:
                accepted.extend(passed_items)
            else:
                if batch.mode is BatchMode.GROUP:
                    salvage.extend(failed_items)
                main = passed_items
        accepted.extend(main)
        total_true += sum(1 for i in accepted if truth[i])
        total_false += sum(1 for i in accepted if not truth[i])

    return SimulationOutcome(
        trials=trials,
        mean_bits=total_bits / trials,
        mean_true_accepted=total_true / trials,
        mean_false_accepted=total_false / trials,
    )
