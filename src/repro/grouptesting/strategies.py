"""Verification strategies described as sequences of hash batches.

A strategy is a list of :class:`BatchSpec`.  Each batch sends one hash
per *unit* (a single candidate or a group of candidates) from client to
server; the server replies with one confirmation bit per unit.  Batches are
applied to:

* ``ALL`` — every still-undecided candidate;
* ``SURVIVORS`` — candidates that passed every previous batch;
* ``FAILED_GROUP_MEMBERS`` — members of groups that failed the previous
  batch (the paper's "salvage" idea).

A candidate is *accepted* once it has passed the final batch that covers
it; failing any individual batch rejects it; candidates in a failed group
are rejected unless a later salvage batch covers them.

The concrete strategies mirror the five settings of Figure 6.4:

``trivial``
    one batch of 16-bit per-candidate hashes (rsync-strength, 1 roundtrip);
``light``
    one batch of 12-bit per-candidate hashes ("slightly smarter");
``group1``
    one batch of 20-bit hashes over groups of 4 (1 roundtrip);
``group2``
    8-bit individual filter, then 16-bit groups of 8 (2 roundtrips);
``group3``
    6-bit individual filter, 16-bit groups of 8, then 12-bit individual
    salvage of failed groups (3 roundtrips).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import ConfigError


class BatchMode(Enum):
    """Whether a batch hashes candidates individually or in groups."""

    INDIVIDUAL = "individual"
    GROUP = "group"


class BatchScope(Enum):
    """Which candidates a batch covers."""

    ALL = "all"
    SURVIVORS = "survivors"
    FAILED_GROUP_MEMBERS = "failed_group_members"


@dataclass(frozen=True)
class BatchSpec:
    """One verification batch: mode, hash width, group size, scope."""

    mode: BatchMode
    bits: int
    group_size: int = 1
    scope: BatchScope = BatchScope.ALL

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 64:
            raise ConfigError(f"batch bits must be in [1, 64], got {self.bits}")
        if self.mode is BatchMode.GROUP and self.group_size < 2:
            raise ConfigError(
                f"group batches need group_size >= 2, got {self.group_size}"
            )
        if self.mode is BatchMode.INDIVIDUAL and self.group_size != 1:
            raise ConfigError("individual batches must have group_size == 1")


@dataclass(frozen=True)
class VerificationStrategy:
    """A named sequence of verification batches."""

    name: str
    batches: tuple[BatchSpec, ...]

    def __post_init__(self) -> None:
        if not self.batches:
            raise ConfigError("a strategy needs at least one batch")
        if self.batches[0].scope is not BatchScope.ALL:
            raise ConfigError("the first batch must cover ALL candidates")
        for batch in self.batches[1:]:
            if batch.scope is BatchScope.ALL:
                raise ConfigError("only the first batch may cover ALL")

    @property
    def roundtrips(self) -> int:
        """Client→server verification batches (one roundtrip each)."""
        return len(self.batches)

    @property
    def total_individual_bits(self) -> int:
        """Sum of per-candidate bits over individual ALL/SURVIVORS batches."""
        return sum(
            batch.bits
            for batch in self.batches
            if batch.mode is BatchMode.INDIVIDUAL
            and batch.scope is not BatchScope.FAILED_GROUP_MEMBERS
        )


_STRATEGIES: dict[str, VerificationStrategy] = {
    "trivial": VerificationStrategy(
        "trivial", (BatchSpec(BatchMode.INDIVIDUAL, bits=16),)
    ),
    "light": VerificationStrategy(
        "light", (BatchSpec(BatchMode.INDIVIDUAL, bits=12),)
    ),
    "group1": VerificationStrategy(
        "group1", (BatchSpec(BatchMode.GROUP, bits=20, group_size=4),)
    ),
    "group2": VerificationStrategy(
        "group2",
        (
            BatchSpec(BatchMode.INDIVIDUAL, bits=8),
            BatchSpec(
                BatchMode.GROUP,
                bits=16,
                group_size=8,
                scope=BatchScope.SURVIVORS,
            ),
        ),
    ),
    "group3": VerificationStrategy(
        "group3",
        (
            BatchSpec(BatchMode.INDIVIDUAL, bits=6),
            BatchSpec(
                BatchMode.GROUP,
                bits=16,
                group_size=8,
                scope=BatchScope.SURVIVORS,
            ),
            BatchSpec(
                BatchMode.INDIVIDUAL,
                bits=12,
                scope=BatchScope.FAILED_GROUP_MEMBERS,
            ),
        ),
    ),
}


def strategy_names() -> list[str]:
    """Names accepted by :func:`make_strategy`."""
    return sorted(_STRATEGIES)


def register_strategy(
    strategy: VerificationStrategy, replace: bool = False
) -> VerificationStrategy:
    """Add a custom strategy to the registry.

    Once registered, its name is accepted by
    ``ProtocolConfig(verification=...)`` like the built-ins — the hook
    for experimenting with verification schemes the paper did not try.
    Built-in names cannot be replaced unless ``replace`` is set.
    """
    if strategy.name in _STRATEGIES and not replace:
        raise ConfigError(
            f"strategy {strategy.name!r} already registered; "
            "pass replace=True to override"
        )
    _STRATEGIES[strategy.name] = strategy
    return strategy


def unregister_strategy(name: str) -> None:
    """Remove a custom strategy (built-ins are protected)."""
    if name in _BUILTIN_NAMES:
        raise ConfigError(f"cannot unregister built-in strategy {name!r}")
    _STRATEGIES.pop(name, None)


def make_strategy(name: str) -> VerificationStrategy:
    """Look up a registered verification strategy by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown verification strategy {name!r}; "
            f"choose from {strategy_names()}"
        ) from None


_BUILTIN_NAMES = frozenset(_STRATEGIES)
