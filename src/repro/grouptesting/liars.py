"""Searching with liars (Ulam's problem) for match extension.

Extending a confirmed match to its exact boundary is a binary search whose
comparisons are continuation-hash tests: if the true answer is "the match
extends at least this far" the test always agrees, but if it does not, a
``bits``-wide hash still collides (lies) with probability ``2**-bits``.
The searcher repeats queries until the posterior confidence target is met,
mirroring the paper's observation that it is *not* optimal to fully verify
each level before descending.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class UnreliableOracle:
    """Wraps a ground-truth predicate with one-sided hash-collision lies.

    ``truth(k)`` answers "does the match extend to at least ``k`` bytes?".
    A *true* answer is always reported truthfully; a *false* answer is
    misreported as true with probability ``2**-bits`` (a hash collision).
    """

    truth: Callable[[int], bool]
    bits: int
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    queries: int = 0

    @property
    def lie_probability(self) -> float:
        return 2.0 ** (-self.bits)

    def ask(self, value: int) -> bool:
        """One continuation-hash test; costs ``bits`` transmitted bits."""
        self.queries += 1
        if self.truth(value):
            return True
        return self.rng.random() < self.lie_probability

    @property
    def bits_spent(self) -> int:
        return self.queries * self.bits


class UlamSearcher:
    """Finds the largest ``k`` in ``[lo, hi]`` with ``truth(k)`` true.

    The predicate must be monotone (true up to the boundary, false after),
    which holds for "the match extends at least k bytes".  Because lies
    are one-sided (only false→true), a lie can only overshoot; the search
    re-verifies a tentative boundary with ``confirmations`` extra queries
    and backtracks when one fails.
    """

    def __init__(self, oracle: UnreliableOracle, confirmations: int = 1) -> None:
        if confirmations < 0:
            raise ValueError("confirmations must be non-negative")
        self._oracle = oracle
        self._confirmations = confirmations

    def search(self, lo: int, hi: int) -> int:
        """Largest value in ``[lo, hi]`` the (lying) oracle supports.

        Returns ``lo - 1`` if even ``lo`` fails.
        """
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        low, high = lo, hi
        best = lo - 1
        while low <= high:
            mid = (low + high) // 2
            if self._oracle.ask(mid):
                best = mid
                low = mid + 1
            else:
                high = mid - 1
        # Re-confirm the tentative boundary; on failure, resume below it.
        for _ in range(self._confirmations):
            if best < lo:
                break
            if not self._oracle.ask(best):
                high = best - 1
                low = lo
                best = lo - 1
                while low <= high:
                    mid = (low + high) // 2
                    if self._oracle.ask(mid):
                        best = mid
                        low = mid + 1
                    else:
                        high = mid - 1
        return best
