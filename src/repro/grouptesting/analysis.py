"""Expected-cost analysis for verification strategies.

These closed-form estimates drive the ablation benchmark that compares
verification schemes and provide test oracles for the protocol's measured
behaviour.  The model: each candidate is a true match with probability
``1 - false_rate``; a ``b``-bit hash of a false candidate *passes* with
probability ``2**-b`` (collision); true candidates always pass.
"""

from __future__ import annotations

import math

from repro.grouptesting.strategies import (
    BatchMode,
    BatchScope,
    VerificationStrategy,
)


def optimal_dorfman_group_size(false_rate: float) -> int:
    """Classic Dorfman group-size rule ``~ 1/sqrt(p)`` for defect rate p.

    Returns at least 2 (group testing degenerates below that).
    """
    if not 0.0 < false_rate < 1.0:
        raise ValueError(f"false_rate must be in (0, 1), got {false_rate}")
    return max(2, round(1.0 / math.sqrt(false_rate)))


def expected_strategy_bits(
    strategy: VerificationStrategy,
    candidates: int,
    false_rate: float,
) -> float:
    """Expected client→server verification bits for ``candidates`` items.

    Tracks the expected number of undecided true/false candidates through
    the batch sequence.  Group batches assume candidates are grouped
    arbitrarily, so a group fails if it contains any false candidate that
    did not collide.
    """
    if candidates < 0:
        raise ValueError("candidates must be non-negative")
    if not 0.0 <= false_rate <= 1.0:
        raise ValueError(f"false_rate must be in [0, 1], got {false_rate}")
    if candidates == 0:
        return 0.0

    true_pool = candidates * (1.0 - false_rate)
    false_pool = candidates * false_rate
    failed_members_true = 0.0
    failed_members_false = 0.0
    total_bits = 0.0

    for batch in strategy.batches:
        if batch.scope is BatchScope.FAILED_GROUP_MEMBERS:
            pool_true, pool_false = failed_members_true, failed_members_false
        else:  # ALL on the first batch, SURVIVORS afterwards
            pool_true, pool_false = true_pool, false_pool
        pool = pool_true + pool_false
        if pool <= 0:
            continue
        collide = 2.0 ** (-batch.bits)
        if batch.mode is BatchMode.INDIVIDUAL:
            total_bits += pool * batch.bits
            survivors_true = pool_true
            survivors_false = pool_false * collide
            failed_members_true = 0.0
            failed_members_false = 0.0
        else:
            groups = math.ceil(pool / batch.group_size)
            total_bits += groups * batch.bits
            # Probability a random member's group contains no effective
            # false member among the *other* slots.
            fraction_false = pool_false / pool
            effective_false = fraction_false * (1.0 - collide)
            clean_others = (1.0 - effective_false) ** (batch.group_size - 1)
            survivors_true = pool_true * clean_others
            survivors_false = pool_false * collide * clean_others
            failed_members_true = pool_true - survivors_true
            failed_members_false = pool_false - survivors_false
        true_pool, false_pool = survivors_true, survivors_false
    return total_bits


def expected_true_match_yield(
    strategy: VerificationStrategy,
    candidates: int,
    false_rate: float,
) -> float:
    """Expected number of *true* matches the strategy ultimately accepts.

    Group strategies without salvage lose true matches that share a group
    with a false candidate ("one bad apple"), which is why the paper grows
    group sizes only as confidence grows.
    """
    if candidates == 0:
        return 0.0
    main_true = candidates * (1.0 - false_rate)
    main_false = candidates * false_rate
    failed_true = 0.0
    failed_false = 0.0
    salvaged_true = 0.0

    for batch in strategy.batches:
        if batch.scope is BatchScope.FAILED_GROUP_MEMBERS:
            pool_true, pool_false = failed_true, failed_false
            failed_true = failed_false = 0.0
        else:
            pool_true, pool_false = main_true, main_false
        pool = pool_true + pool_false
        if pool <= 0:
            continue
        collide = 2.0 ** (-batch.bits)
        if batch.mode is BatchMode.INDIVIDUAL:
            survivors_true = pool_true
            survivors_false = pool_false * collide
        else:
            fraction_false = pool_false / pool
            effective_false = fraction_false * (1.0 - collide)
            clean_others = (1.0 - effective_false) ** (batch.group_size - 1)
            survivors_true = pool_true * clean_others
            survivors_false = pool_false * collide * clean_others
        if batch.scope is BatchScope.FAILED_GROUP_MEMBERS:
            # Salvaged candidates are accepted immediately.
            salvaged_true += survivors_true
        else:
            if batch.mode is BatchMode.GROUP:
                failed_true += pool_true - survivors_true
                failed_false += pool_false - survivors_false
            main_true, main_false = survivors_true, survivors_false
    return main_true + salvaged_true
