"""Group testing and searching-with-liars machinery.

The paper models optimized match verification as a group-testing problem
(false candidate matches are the "defective" items; one transmitted hash
asks "are all matches in this group correct?") and models the extension of
confirmed matches via continuation hashes as Ulam's searching-with-liars
game.  This package provides:

* :mod:`repro.grouptesting.strategies` — concrete verification strategies
  (trivial per-candidate hashes, single-batch grouping, adaptive two- and
  three-batch schemes with salvage) described as data so the protocol can
  execute any of them;
* :mod:`repro.grouptesting.liars` — an unreliable-comparison binary search
  (continuation-hash queries answer correctly only with probability
  ``1 - 2**-bits`` when the true answer is "no match");
* :mod:`repro.grouptesting.analysis` — expected-cost formulas used by the
  ablation benchmarks and tests.
"""

from repro.grouptesting.analysis import (
    expected_strategy_bits,
    optimal_dorfman_group_size,
)
from repro.grouptesting.liars import UlamSearcher, UnreliableOracle
from repro.grouptesting.simulate import SimulationOutcome, simulate_strategy
from repro.grouptesting.strategies import (
    BatchSpec,
    BatchMode,
    BatchScope,
    VerificationStrategy,
    make_strategy,
    register_strategy,
    strategy_names,
    unregister_strategy,
)

__all__ = [
    "BatchMode",
    "SimulationOutcome",
    "simulate_strategy",
    "BatchScope",
    "BatchSpec",
    "UlamSearcher",
    "UnreliableOracle",
    "VerificationStrategy",
    "expected_strategy_bits",
    "make_strategy",
    "register_strategy",
    "unregister_strategy",
    "optimal_dorfman_group_size",
    "strategy_names",
]
