"""Greedy hash-chain matching of a target against a reference file.

This is the algorithmic core shared by the zdelta- and vcdiff-style coders:
index the reference by seed-length windows, then scan the target greedily,
extending candidate matches forward (and backward into pending literals)
and emitting COPY/ADD instructions.

Two matching engines produce byte-identical instruction lists:

* ``"vectorized"`` (default) resolves the candidate range of *every*
  target position with one batched ``searchsorted`` pair, then walks a
  precomputed next-candidate jump table so the greedy loop touches only
  positions that can possibly start a match — candidate-free stretches
  are consumed as one batched literal run in O(1).  A cheap sampled
  probe first detects copy-dominated targets (small source edits) and
  routes them through the scalar loop, whose cost scales with literal
  bytes instead of target length.
* ``"scalar"`` is the original per-position loop, kept as the parity
  oracle and perf baseline (``engine="scalar"`` or
  ``REPRO_DELTA_ENGINE=scalar``).

The scalar loop pays two binary searches per unmatched byte in the
Python interpreter; on literal-heavy targets that is the dominant CPU
cost of the whole delta phase (see ``BENCH_delta.json``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.delta.instructions import Add, Copy, Instruction
from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import (
    next_occupied_table,
    sorted_range_pair,
    window_hashes,
)
from repro.hashing.strong import file_fingerprint

#: Hash function used for seed indexing only (never transmitted).
_SEED_HASHER = DecomposableAdler(seed=0x5EED)

DEFAULT_SEED_LENGTH = 16
DEFAULT_MAX_CANDIDATES = 8

#: Valid values for the ``engine`` argument of :func:`compute_instructions`.
ENGINES = ("vectorized", "scalar")

#: Environment override for the default engine (parity bisection, perf
#: comparisons): ``REPRO_DELTA_ENGINE=scalar`` selects the oracle loop.
ENGINE_ENV = "REPRO_DELTA_ENGINE"


def default_engine() -> str:
    """The engine used when :func:`compute_instructions` gets ``engine=None``."""
    engine = os.environ.get(ENGINE_ENV, "vectorized")
    return engine if engine in ENGINES else "vectorized"


def _common_prefix_length(a: memoryview, b: memoryview) -> int:
    """Length of the common prefix of two byte views, chunk-accelerated.

    Equal chunks are compared with one ``memcmp``; the first differing
    chunk is resolved without a per-byte loop by XOR-ing the chunks as
    little-endian integers — the lowest set bit's byte index is exactly
    the first mismatching byte.
    """
    limit = min(len(a), len(b))
    matched = 0
    chunk = 64
    while matched < limit:
        take = min(chunk, limit - matched)
        wa = a[matched : matched + take]
        wb = b[matched : matched + take]
        if wa == wb:
            matched += take
            chunk = min(chunk * 2, 1 << 16)
            continue
        diff = int.from_bytes(wa, "little") ^ int.from_bytes(wb, "little")
        return matched + (((diff & -diff).bit_length() - 1) >> 3)
    return matched


def _common_suffix_length(a: memoryview, b: memoryview, limit: int) -> int:
    """Length of the common suffix of two byte views, capped at ``limit``.

    Mirror image of :func:`_common_prefix_length`: equal tail chunks are
    one comparison each, and the first differing chunk is resolved via
    the *highest* set bit of the little-endian XOR (the differing byte
    closest to the end).
    """
    limit = min(limit, len(a), len(b))
    matched = 0
    chunk = 64
    while matched < limit:
        take = min(chunk, limit - matched)
        wa = a[len(a) - matched - take : len(a) - matched]
        wb = b[len(b) - matched - take : len(b) - matched]
        if wa == wb:
            matched += take
            chunk = min(chunk * 2, 1 << 16)
            continue
        diff = int.from_bytes(wa, "little") ^ int.from_bytes(wb, "little")
        return matched + take - 1 - ((diff.bit_length() - 1) >> 3)
    return matched


class ReferenceMatcher:
    """Seed index over a reference file.

    Window hashes of every reference position are computed once with
    numpy; lookups return candidate positions for a target seed hash.
    The matcher carries a content ``fingerprint`` so reuse checks and
    the :class:`~repro.parallel.cache.ReferenceIndexCache` identify it
    without ever re-reading the full reference bytes.
    """

    def __init__(
        self,
        reference: bytes,
        seed_length: int = DEFAULT_SEED_LENGTH,
        fingerprint: bytes | None = None,
    ) -> None:
        if seed_length <= 0:
            raise ValueError(f"seed_length must be positive, got {seed_length}")
        self.reference = reference
        self.seed_length = seed_length
        self.fingerprint = (
            file_fingerprint(reference) if fingerprint is None else fingerprint
        )
        full = window_hashes(reference, seed_length, _SEED_HASHER)
        self._order = np.argsort(full, kind="stable")
        self._sorted = full[self._order]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the index arrays (cache budgeting)."""
        return int(self._order.nbytes + self._sorted.nbytes)

    def candidates(
        self, seed_hash: int, cap: int = DEFAULT_MAX_CANDIDATES
    ) -> np.ndarray:
        """Reference positions whose seed window hashes to ``seed_hash``.

        Returns a slice of the position-order index (ascending reference
        positions for equal hashes, capped at ``cap``) — an ndarray view,
        not a boxed-per-element Python list.
        """
        if self._sorted.size == 0:
            return self._order[:0]
        # A uint32 key keeps searchsorted on the fast path: a plain
        # Python int promotes — and therefore copies — the whole sorted
        # array to int64 on every call.
        key = np.uint32(seed_hash)
        lo = int(self._sorted.searchsorted(key, side="left"))
        hi = int(self._sorted.searchsorted(key, side="right"))
        if hi - lo > cap:
            hi = lo + cap
        return self._order[lo:hi]

    def candidate_ranges(
        self,
        target_hashes: np.ndarray,
        cap: int = DEFAULT_MAX_CANDIDATES,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``[lo, hi)`` rows into the order index for *all* target hashes.

        One vectorised ``searchsorted`` pair replaces two binary searches
        per target position; ``hi`` is pre-capped so
        ``self._order[lo[i]:hi[i]]`` equals ``self.candidates(hash_i, cap)``
        for every position at once.
        """
        lo, hi = sorted_range_pair(self._sorted, target_hashes)
        np.minimum(hi, lo + cap, out=hi)
        return lo, hi


def _check_matcher(matcher: ReferenceMatcher, reference: bytes) -> None:
    """Reject a matcher built for different content.

    The identity check handles the hot path (same object passed back);
    otherwise the cached fingerprint is compared instead of running a
    full ``bytes.__eq__`` over the reference on every call.
    """
    if matcher.reference is reference:
        return
    if len(matcher.reference) != len(reference) or (
        matcher.fingerprint != file_fingerprint(reference)
    ):
        raise ValueError("matcher was built for a different reference")


def _resolve_matcher(reference: bytes, seed_length: int, cache):
    """A matcher for ``reference``: cached by default, private on opt-out."""
    if cache is False:
        return ReferenceMatcher(reference, seed_length)
    if cache is None:
        from repro.parallel.cache import default_reference_cache

        cache = default_reference_cache()
    return cache.matcher(reference, seed_length)


def resolve_memo(memo):
    """The :class:`~repro.reuse.memo.DeltaMemoCache` to consult, or ``None``.

    Tri-state mirror of the ``cache`` parameter: ``False`` opts out
    entirely, an instance is used as given, and ``None`` defers to the
    process-wide switch (:func:`~repro.reuse.memo.delta_memo_enabled`) —
    off by default, so cold-path benchmarks time real matcher work.
    """
    if memo is False:
        return None
    if memo is None:
        from repro.reuse.memo import default_delta_memo, delta_memo_enabled

        return default_delta_memo() if delta_memo_enabled() else None
    return memo


def compute_instructions(
    reference: bytes,
    target: bytes,
    seed_length: int = DEFAULT_SEED_LENGTH,
    min_match: int | None = None,
    matcher: ReferenceMatcher | None = None,
    engine: str | None = None,
    cache=None,
    memo=None,
) -> list[Instruction]:
    """Greedy COPY/ADD instruction list producing ``target`` from ``reference``.

    A prebuilt ``matcher`` for the same reference may be passed to amortise
    index construction across several targets; without one the process-wide
    :class:`~repro.parallel.cache.ReferenceIndexCache` is consulted so
    repeated references (version chains, sync retries, benchmark rounds)
    never rebuild the argsort index.  Pass ``cache=False`` for a private
    uncached build, or a specific cache instance to use instead.

    ``engine`` selects the matching core (see module docstring); both
    engines emit byte-identical instruction lists.

    ``memo`` memoizes the finished instruction list by *content pair*
    (:class:`~repro.reuse.memo.DeltaMemoCache`): a hit skips hashing and
    matching entirely and is byte-identical to a fresh run on either
    engine.  ``None`` defers to the process-wide switch
    (``REPRO_DELTA_MEMO`` / ``sync_collection(delta_memo=True)``),
    ``False`` opts out, an instance is consulted unconditionally.
    """
    if min_match is None:
        min_match = seed_length
    if min_match < 1:
        # min_match < 1 would let a zero-length "best match" emit an
        # empty COPY without advancing — an infinite loop, not a knob.
        raise ValueError(f"min_match must be >= 1, got {min_match}")
    if engine is None:
        engine = default_engine()
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")

    memo = resolve_memo(memo)
    if memo is not None:
        # Keyed purely by content identity and matching parameters; the
        # engine is deliberately absent (both emit identical streams),
        # so a hit primed by one engine serves the other.
        old_fingerprint = (
            matcher.fingerprint
            if matcher is not None
            else file_fingerprint(reference)
        )
        return memo.instructions(
            old_fingerprint,
            file_fingerprint(target),
            matcher.seed_length if matcher is not None else seed_length,
            min_match,
            lambda: _compute_cold(
                reference, target, seed_length, min_match, matcher, engine,
                cache,
            ),
        )
    return _compute_cold(
        reference, target, seed_length, min_match, matcher, engine, cache
    )


def _compute_cold(
    reference: bytes,
    target: bytes,
    seed_length: int,
    min_match: int,
    matcher: ReferenceMatcher | None,
    engine: str,
    cache,
) -> list[Instruction]:
    """The actual matching work (everything a memo hit skips)."""
    if matcher is None:
        matcher = _resolve_matcher(reference, seed_length, cache)
    else:
        _check_matcher(matcher, reference)

    target_view = memoryview(target)
    reference_view = memoryview(reference)
    target_hashes = window_hashes(target, matcher.seed_length, _SEED_HASHER)

    if engine == "scalar":
        return _scan_scalar(
            matcher, reference_view, target, target_view, target_hashes, min_match
        )
    return _scan_vectorized(
        matcher, reference_view, target, target_view, target_hashes, min_match
    )


def _scan_scalar(
    matcher: ReferenceMatcher,
    reference_view: memoryview,
    target: bytes,
    target_view: memoryview,
    target_hashes: np.ndarray,
    min_match: int,
) -> list[Instruction]:
    """The original per-position greedy loop — the parity oracle."""
    instructions: list[Instruction] = []
    literals = bytearray()
    position = 0
    scan_limit = len(target) - matcher.seed_length

    def flush_literals() -> None:
        if literals:
            instructions.append(Add(bytes(literals)))
            literals.clear()

    while position < len(target):
        best_length = 0
        best_offset = -1
        if position <= scan_limit:
            seed_hash = int(target_hashes[position])
            for candidate in matcher.candidates(seed_hash).tolist():
                length = _common_prefix_length(
                    reference_view[candidate:], target_view[position:]
                )
                if length > best_length:
                    best_length = length
                    best_offset = candidate
        if best_length >= min_match:
            # Extend backward into pending literals.
            back = _common_suffix_length(
                reference_view[:best_offset],
                target_view[:position],
                limit=min(len(literals), best_offset),
            )
            if back:
                del literals[len(literals) - back :]
            flush_literals()
            instructions.append(Copy(best_offset - back, best_length + back))
            position += best_length
        else:
            literals.append(target[position])
            position += 1
    flush_literals()
    return instructions


#: Sample size of the copy-dominated probe in :func:`_scan_vectorized`.
_PROBE_SAMPLES = 64

#: Estimated novel fraction below which the scalar loop beats the batch.
#: Measured: the batch pays ~0.14 µs per target position, the scalar
#: loop ~2 µs per literal byte — crossover near 6–7% novel bytes.
_PROBE_NOVEL_CUTOFF = 0.06


def _copy_dominated(matcher: ReferenceMatcher, target_hashes: np.ndarray) -> bool:
    """Whether the target looks copy-dominated (batching cannot pay off).

    The batched scan pays a fixed per-position cost resolving candidate
    ranges the greedy loop may never visit, while the scalar loop pays
    only per *literal* byte; a target that is nearly all COPY is
    therefore faster through the scalar loop.  Probing a few dozen
    evenly spaced positions estimates the novel fraction: novel bytes
    are candidate-free with overwhelming probability (a random 32-bit
    hash rarely occurs in the reference), copied bytes always have a
    candidate.  The miss budget mirrors the measured cost crossover.
    """
    positions = int(target_hashes.size)
    if positions <= _PROBE_SAMPLES:
        # Too small for the batch to amortise its setup at all.
        return True
    sample = target_hashes[:: positions // _PROBE_SAMPLES][:_PROBE_SAMPLES]
    lo = matcher._sorted.searchsorted(sample, side="left")
    safe = np.minimum(lo, matcher._sorted.size - 1)
    has = (lo < matcher._sorted.size) & (matcher._sorted[safe] == sample)
    misses = int(sample.size) - int(np.count_nonzero(has))
    return misses <= int(sample.size * _PROBE_NOVEL_CUTOFF)


def _scan_vectorized(
    matcher: ReferenceMatcher,
    reference_view: memoryview,
    target: bytes,
    target_view: memoryview,
    target_hashes: np.ndarray,
    min_match: int,
) -> list[Instruction]:
    """Batched greedy scan: same instruction stream, numpy-resolved lookups.

    All per-position candidate ranges come from one vectorised
    ``searchsorted`` pair; a has-candidate jump table lets the loop emit
    each candidate-free stretch as a single batched literal run, and an
    emitted COPY advances the cursor past every matched byte so nothing
    is rescanned or re-hashed.

    Copy-dominated targets (see :func:`_copy_dominated`) are delegated
    to the scalar loop, whose cost scales with literal bytes rather than
    target length — the instruction stream is identical either way.
    """
    n = len(target)
    instructions: list[Instruction] = []
    scan_positions = int(target_hashes.size)

    if scan_positions == 0 or matcher._sorted.size == 0:
        # No full seed window fits (or the reference indexes nothing):
        # the whole target is one literal run, exactly like the scalar
        # loop appending byte by byte and flushing once.
        if n:
            instructions.append(Add(bytes(target)))
        return instructions

    if _copy_dominated(matcher, target_hashes):
        return _scan_scalar(
            matcher, reference_view, target, target_view, target_hashes,
            min_match,
        )

    lo, hi = matcher.candidate_ranges(target_hashes)
    jump = next_occupied_table(hi > lo)
    order = matcher._order

    literals = bytearray()
    position = 0
    while position < n:
        if position >= scan_positions:
            # Tail shorter than one seed window: literal to the end.
            literals += target_view[position:]
            break
        nxt = int(jump[position])
        if nxt > position:
            # No position in [position, nxt) has any candidate, so none
            # can start a match: one batched literal run replaces
            # per-byte appends (and per-byte hash lookups).
            stop = nxt if nxt < scan_positions else n
            literals += target_view[position:stop]
            position = stop
            continue
        best_length = 0
        best_offset = -1
        for candidate in order[lo[position] : hi[position]].tolist():
            length = _common_prefix_length(
                reference_view[candidate:], target_view[position:]
            )
            if length > best_length:
                best_length = length
                best_offset = candidate
        if best_length >= min_match:
            back = _common_suffix_length(
                reference_view[:best_offset],
                target_view[:position],
                limit=min(len(literals), best_offset),
            )
            if back:
                del literals[len(literals) - back :]
            if literals:
                instructions.append(Add(bytes(literals)))
                literals.clear()
            instructions.append(Copy(best_offset - back, best_length + back))
            position += best_length
        else:
            literals.append(target[position])
            position += 1
    if literals:
        instructions.append(Add(bytes(literals)))
    return instructions
