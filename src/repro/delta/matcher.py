"""Greedy hash-chain matching of a target against a reference file.

This is the algorithmic core shared by the zdelta- and vcdiff-style coders:
index the reference by seed-length windows, then scan the target greedily,
extending candidate matches forward (and backward into pending literals)
and emitting COPY/ADD instructions.
"""

from __future__ import annotations

import numpy as np

from repro.delta.instructions import Add, Copy, Instruction
from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import window_hashes

#: Hash function used for seed indexing only (never transmitted).
_SEED_HASHER = DecomposableAdler(seed=0x5EED)

DEFAULT_SEED_LENGTH = 16
DEFAULT_MAX_CANDIDATES = 8


def _common_prefix_length(a: memoryview, b: memoryview) -> int:
    """Length of the common prefix of two byte views, chunk-accelerated.

    Equal chunks are compared with one ``memcmp``; the first differing
    chunk is resolved without a per-byte loop by XOR-ing the chunks as
    little-endian integers — the lowest set bit's byte index is exactly
    the first mismatching byte.
    """
    limit = min(len(a), len(b))
    matched = 0
    chunk = 64
    while matched < limit:
        take = min(chunk, limit - matched)
        wa = a[matched : matched + take]
        wb = b[matched : matched + take]
        if wa == wb:
            matched += take
            chunk = min(chunk * 2, 1 << 16)
            continue
        diff = int.from_bytes(wa, "little") ^ int.from_bytes(wb, "little")
        return matched + (((diff & -diff).bit_length() - 1) >> 3)
    return matched


def _common_suffix_length(a: memoryview, b: memoryview, limit: int) -> int:
    """Length of the common suffix of two byte views, capped at ``limit``.

    Mirror image of :func:`_common_prefix_length`: equal tail chunks are
    one comparison each, and the first differing chunk is resolved via
    the *highest* set bit of the little-endian XOR (the differing byte
    closest to the end).
    """
    limit = min(limit, len(a), len(b))
    matched = 0
    chunk = 64
    while matched < limit:
        take = min(chunk, limit - matched)
        wa = a[len(a) - matched - take : len(a) - matched]
        wb = b[len(b) - matched - take : len(b) - matched]
        if wa == wb:
            matched += take
            chunk = min(chunk * 2, 1 << 16)
            continue
        diff = int.from_bytes(wa, "little") ^ int.from_bytes(wb, "little")
        return matched + take - 1 - ((diff.bit_length() - 1) >> 3)
    return matched


class ReferenceMatcher:
    """Seed index over a reference file.

    Window hashes of every reference position are computed once with
    numpy; lookups return candidate positions for a target seed hash.
    """

    def __init__(
        self, reference: bytes, seed_length: int = DEFAULT_SEED_LENGTH
    ) -> None:
        if seed_length <= 0:
            raise ValueError(f"seed_length must be positive, got {seed_length}")
        self.reference = reference
        self.seed_length = seed_length
        full = window_hashes(reference, seed_length, _SEED_HASHER)
        self._order = np.argsort(full, kind="stable")
        self._sorted = full[self._order]

    def candidates(
        self, seed_hash: int, cap: int = DEFAULT_MAX_CANDIDATES
    ) -> list[int]:
        """Reference positions whose seed window hashes to ``seed_hash``."""
        if self._sorted.size == 0:
            return []
        lo = int(np.searchsorted(self._sorted, seed_hash, side="left"))
        hi = int(np.searchsorted(self._sorted, seed_hash, side="right"))
        if hi - lo > cap:
            hi = lo + cap
        return [int(p) for p in self._order[lo:hi]]


def compute_instructions(
    reference: bytes,
    target: bytes,
    seed_length: int = DEFAULT_SEED_LENGTH,
    min_match: int | None = None,
    matcher: ReferenceMatcher | None = None,
) -> list[Instruction]:
    """Greedy COPY/ADD instruction list producing ``target`` from ``reference``.

    A prebuilt ``matcher`` for the same reference may be passed to amortise
    index construction across several targets.
    """
    if min_match is None:
        min_match = seed_length
    if matcher is None:
        matcher = ReferenceMatcher(reference, seed_length)
    elif matcher.reference is not reference and matcher.reference != reference:
        raise ValueError("matcher was built for a different reference")

    target_view = memoryview(target)
    reference_view = memoryview(reference)
    target_hashes = window_hashes(target, matcher.seed_length, _SEED_HASHER)

    instructions: list[Instruction] = []
    literals = bytearray()
    position = 0
    scan_limit = len(target) - matcher.seed_length

    def flush_literals() -> None:
        if literals:
            instructions.append(Add(bytes(literals)))
            literals.clear()

    while position < len(target):
        best_length = 0
        best_offset = -1
        if position <= scan_limit:
            seed_hash = int(target_hashes[position])
            for candidate in matcher.candidates(seed_hash):
                length = _common_prefix_length(
                    reference_view[candidate:], target_view[position:]
                )
                if length > best_length:
                    best_length = length
                    best_offset = candidate
        if best_length >= min_match:
            # Extend backward into pending literals.
            back = _common_suffix_length(
                reference_view[:best_offset],
                target_view[:position],
                limit=min(len(literals), best_offset),
            )
            if back:
                del literals[len(literals) - back :]
            flush_literals()
            instructions.append(Copy(best_offset - back, best_length + back))
            position += best_length
        else:
            literals.append(target[position])
            position += 1
    flush_literals()
    return instructions
