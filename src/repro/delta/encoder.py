"""zdelta-style delta coder: separate op/literal streams, zlib entropy pass.

Format (after the 1-byte magic):

* varint: uncompressed op-stream length, then zlib(op stream)
* varint: uncompressed literal-stream length, then zlib(literal stream)

Op stream: ``0x00 len`` for ADD (literal bytes live in the literal stream)
and ``0x01 offset len`` for COPY, all varints.  Keeping literals separate
lets zlib model them independently of the instruction bytes — the same
trick that makes real zdelta beat single-stream coders.
"""

from __future__ import annotations

import zlib

from repro.delta.instructions import Add, Copy, Instruction, apply_instructions
from repro.delta.matcher import (
    DEFAULT_SEED_LENGTH,
    ReferenceMatcher,
    compute_instructions,
)
from repro.exceptions import DeltaFormatError
from repro.io.varint import decode_uvarint, encode_uvarint

_MAGIC = 0x5A  # 'Z'
_OP_ADD = 0x00
_OP_COPY = 0x01


def _encode_streams(instructions: list[Instruction]) -> tuple[bytes, bytes]:
    ops = bytearray()
    literals = bytearray()
    for instruction in instructions:
        if isinstance(instruction, Copy):
            ops.append(_OP_COPY)
            ops += encode_uvarint(instruction.offset)
            ops += encode_uvarint(instruction.length)
        else:
            ops.append(_OP_ADD)
            ops += encode_uvarint(len(instruction.data))
            literals += instruction.data
    return bytes(ops), bytes(literals)


def _decode_streams(ops: bytes, literals: bytes) -> list[Instruction]:
    instructions: list[Instruction] = []
    position = 0
    literal_position = 0
    while position < len(ops):
        opcode = ops[position]
        position += 1
        if opcode == _OP_COPY:
            offset, position = decode_uvarint(ops, position)
            length, position = decode_uvarint(ops, position)
            instructions.append(Copy(offset, length))
        elif opcode == _OP_ADD:
            length, position = decode_uvarint(ops, position)
            data = literals[literal_position : literal_position + length]
            if len(data) != length:
                raise DeltaFormatError("literal stream truncated")
            literal_position += length
            instructions.append(Add(data))
        else:
            raise DeltaFormatError(f"unknown opcode {opcode:#x}")
    if literal_position != len(literals):
        raise DeltaFormatError("trailing bytes in literal stream")
    return instructions


def _zdelta_encode_cold(
    reference: bytes,
    target: bytes,
    seed_length: int,
    matcher: ReferenceMatcher | None,
    engine: str | None,
    memo,
) -> bytes:
    instructions = compute_instructions(
        reference, target, seed_length=seed_length, matcher=matcher,
        engine=engine, memo=memo,
    )
    ops, literals = _encode_streams(instructions)
    compressed_ops = zlib.compress(ops, 9)
    compressed_literals = zlib.compress(literals, 9)
    out = bytearray([_MAGIC])
    out += encode_uvarint(len(compressed_ops))
    out += compressed_ops
    out += encode_uvarint(len(compressed_literals))
    out += compressed_literals
    return bytes(out)


def _pair_fingerprints(
    reference: bytes, target: bytes, matcher: ReferenceMatcher | None
) -> tuple[bytes, bytes]:
    """Content identities of a delta pair (matcher's, when prebuilt)."""
    from repro.hashing.strong import file_fingerprint

    old_fingerprint = (
        matcher.fingerprint
        if matcher is not None
        else file_fingerprint(reference)
    )
    return old_fingerprint, file_fingerprint(target)


def zdelta_encode(
    reference: bytes,
    target: bytes,
    seed_length: int = DEFAULT_SEED_LENGTH,
    matcher: ReferenceMatcher | None = None,
    engine: str | None = None,
    memo=None,
) -> bytes:
    """Encode ``target`` relative to ``reference``.

    ``engine`` passes through to
    :func:`~repro.delta.matcher.compute_instructions`; both engines
    produce byte-identical deltas.  ``memo`` memoizes the encoded
    payload by content pair (tri-state, see
    :func:`~repro.delta.matcher.resolve_memo`): a hit returns the
    byte-identical payload without matching or compressing anything.
    """
    from repro.delta.matcher import resolve_memo

    resolved = resolve_memo(memo)
    if resolved is None:
        return _zdelta_encode_cold(
            reference, target, seed_length, matcher, engine, memo=False
        )
    old_fingerprint, new_fingerprint = _pair_fingerprints(
        reference, target, matcher
    )
    return resolved.payload(
        "zdelta",
        old_fingerprint,
        new_fingerprint,
        seed_length,
        lambda: _zdelta_encode_cold(
            reference, target, seed_length, matcher, engine, memo=resolved
        ),
    )


def zdelta_decode(reference: bytes, delta: bytes) -> bytes:
    """Reconstruct the target from ``reference`` and a zdelta payload."""
    if not delta or delta[0] != _MAGIC:
        raise DeltaFormatError("bad zdelta magic")
    ops_length, position = decode_uvarint(delta, 1)
    ops_end = position + ops_length
    if ops_end > len(delta):
        raise DeltaFormatError("op stream truncated")
    try:
        ops = zlib.decompress(delta[position:ops_end])
    except zlib.error as error:
        raise DeltaFormatError(f"op stream corrupt: {error}") from error
    literals_length, position = decode_uvarint(delta, ops_end)
    literals_end = position + literals_length
    if literals_end > len(delta):
        raise DeltaFormatError("literal stream truncated")
    try:
        literals = zlib.decompress(delta[position:literals_end])
    except zlib.error as error:
        raise DeltaFormatError(f"literal stream corrupt: {error}") from error
    return apply_instructions(reference, _decode_streams(ops, literals))


def zdelta_size(
    reference: bytes,
    target: bytes,
    seed_length: int = DEFAULT_SEED_LENGTH,
    matcher: ReferenceMatcher | None = None,
    engine: str | None = None,
    memo=None,
) -> int:
    """Size in bytes of the zdelta encoding (the paper's lower bound).

    Always memoized by content pair (unless ``memo=False``): a size
    probe is a pure measurement, so the runner's method-comparison grid
    never encodes the same ``(reference, target)`` pair twice.
    """
    if memo is None:
        from repro.reuse.memo import default_delta_memo

        memo = default_delta_memo()
    return len(
        zdelta_encode(
            reference, target, seed_length=seed_length, matcher=matcher,
            engine=engine, memo=memo,
        )
    )
