"""Simplified VCDIFF-style coder — the evaluation's second delta baseline.

Differences from the zdelta-style coder that make it slightly weaker (as
vcdiff is slightly weaker than zdelta in the paper's tables):

* instructions and literal bytes are interleaved in a single stream, so the
  entropy coder cannot model them separately;
* COPY addresses use self-relative ("here") encoding but share the stream;
* a single moderate-level zlib pass over the whole body.
"""

from __future__ import annotations

import zlib

from repro.delta.instructions import Add, Copy, Instruction, apply_instructions
from repro.delta.matcher import (
    DEFAULT_SEED_LENGTH,
    ReferenceMatcher,
    compute_instructions,
)
from repro.exceptions import DeltaFormatError
from repro.io.varint import decode_uvarint, encode_uvarint

_MAGIC = 0x56  # 'V'
_OP_ADD = 0x00
_OP_COPY = 0x01


def _encode_body(instructions: list[Instruction]) -> bytes:
    body = bytearray()
    here = 0  # number of target bytes produced so far
    for instruction in instructions:
        if isinstance(instruction, Copy):
            body.append(_OP_COPY)
            # Self-relative address: distance from the current target
            # position, zig-zag style (reference offsets near "here" are
            # common for aligned data and encode small).
            distance = here - instruction.offset
            zigzag = 2 * distance if distance >= 0 else -2 * distance - 1
            body += encode_uvarint(zigzag)
            body += encode_uvarint(instruction.length)
            here += instruction.length
        else:
            body.append(_OP_ADD)
            body += encode_uvarint(len(instruction.data))
            body += instruction.data
            here += len(instruction.data)
    return bytes(body)


def _decode_body(body: bytes) -> list[Instruction]:
    instructions: list[Instruction] = []
    position = 0
    here = 0
    while position < len(body):
        opcode = body[position]
        position += 1
        if opcode == _OP_COPY:
            zigzag, position = decode_uvarint(body, position)
            distance = zigzag // 2 if zigzag % 2 == 0 else -(zigzag + 1) // 2
            length, position = decode_uvarint(body, position)
            instructions.append(Copy(here - distance, length))
            here += length
        elif opcode == _OP_ADD:
            length, position = decode_uvarint(body, position)
            data = body[position : position + length]
            if len(data) != length:
                raise DeltaFormatError("vcdiff literal run truncated")
            position += length
            instructions.append(Add(data))
            here += length
        else:
            raise DeltaFormatError(f"unknown vcdiff opcode {opcode:#x}")
    return instructions


def _vcdiff_encode_cold(
    reference: bytes,
    target: bytes,
    seed_length: int,
    matcher: ReferenceMatcher | None,
    engine: str | None,
    memo,
) -> bytes:
    instructions = compute_instructions(
        reference, target, seed_length=seed_length, matcher=matcher,
        engine=engine, memo=memo,
    )
    compressed = zlib.compress(_encode_body(instructions), 6)
    return bytes([_MAGIC]) + encode_uvarint(len(compressed)) + compressed


def vcdiff_encode(
    reference: bytes,
    target: bytes,
    seed_length: int = DEFAULT_SEED_LENGTH,
    matcher: ReferenceMatcher | None = None,
    engine: str | None = None,
    memo=None,
) -> bytes:
    """Encode ``target`` relative to ``reference`` in the VCDIFF-ish format.

    ``engine`` passes through to
    :func:`~repro.delta.matcher.compute_instructions`; both engines
    produce byte-identical deltas.  ``memo`` memoizes the encoded
    payload by content pair (tri-state, see
    :func:`~repro.delta.matcher.resolve_memo`).
    """
    from repro.delta.encoder import _pair_fingerprints
    from repro.delta.matcher import resolve_memo

    resolved = resolve_memo(memo)
    if resolved is None:
        return _vcdiff_encode_cold(
            reference, target, seed_length, matcher, engine, memo=False
        )
    old_fingerprint, new_fingerprint = _pair_fingerprints(
        reference, target, matcher
    )
    return resolved.payload(
        "vcdiff",
        old_fingerprint,
        new_fingerprint,
        seed_length,
        lambda: _vcdiff_encode_cold(
            reference, target, seed_length, matcher, engine, memo=resolved
        ),
    )


def vcdiff_decode(reference: bytes, delta: bytes) -> bytes:
    """Reconstruct the target from ``reference`` and a vcdiff payload."""
    if not delta or delta[0] != _MAGIC:
        raise DeltaFormatError("bad vcdiff magic")
    length, position = decode_uvarint(delta, 1)
    end = position + length
    if end > len(delta):
        raise DeltaFormatError("vcdiff body truncated")
    try:
        body = zlib.decompress(delta[position:end])
    except zlib.error as error:
        raise DeltaFormatError(f"vcdiff body corrupt: {error}") from error
    return apply_instructions(reference, _decode_body(body))


def vcdiff_size(
    reference: bytes,
    target: bytes,
    seed_length: int = DEFAULT_SEED_LENGTH,
    matcher: ReferenceMatcher | None = None,
    engine: str | None = None,
    memo=None,
) -> int:
    """Size in bytes of the vcdiff-style encoding.

    Always memoized by content pair (unless ``memo=False``), like
    :func:`~repro.delta.encoder.zdelta_size` — a size probe is a pure
    measurement, so the comparison grid never encodes a pair twice.
    """
    if memo is None:
        from repro.reuse.memo import default_delta_memo

        memo = default_delta_memo()
    return len(
        vcdiff_encode(
            reference, target, seed_length=seed_length, matcher=matcher,
            engine=engine, memo=memo,
        )
    )
