"""Delta compression: encode one file relative to a similar reference file.

This package provides the second phase of the paper's framework (encoding
the unknown regions of ``F_new`` against the confirmed common regions) and
the two local delta-compressor baselines of the evaluation:

* :func:`zdelta_encode` / :func:`zdelta_decode` — a zdelta-like coder with
  separate instruction and literal streams, each entropy-coded with zlib.
* :func:`vcdiff_encode` / :func:`vcdiff_decode` — a simplified VCDIFF-style
  coder (single interleaved stream), the slightly weaker second baseline.

Both share the greedy hash-chain matcher in :mod:`repro.delta.matcher`.
"""

from repro.delta.instructions import Add, Copy, Instruction, apply_instructions
from repro.delta.matcher import (
    ENGINES,
    ReferenceMatcher,
    compute_instructions,
    default_engine,
)
from repro.delta.encoder import zdelta_decode, zdelta_encode, zdelta_size
from repro.delta.vcdiff import vcdiff_decode, vcdiff_encode, vcdiff_size

__all__ = [
    "Add",
    "Copy",
    "ENGINES",
    "Instruction",
    "ReferenceMatcher",
    "apply_instructions",
    "compute_instructions",
    "default_engine",
    "vcdiff_decode",
    "vcdiff_encode",
    "vcdiff_size",
    "zdelta_decode",
    "zdelta_encode",
    "zdelta_size",
]
