"""Delta instruction model: COPY from the reference, ADD literal bytes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.exceptions import DeltaFormatError


@dataclass(frozen=True)
class Copy:
    """Copy ``length`` bytes starting at ``offset`` of the reference."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")
        if self.length <= 0:
            raise ValueError(f"length must be positive, got {self.length}")


@dataclass(frozen=True)
class Add:
    """Emit literal bytes verbatim."""

    data: bytes

    def __post_init__(self) -> None:
        if not self.data:
            raise ValueError("Add instruction must carry at least one byte")


Instruction = Union[Copy, Add]


def apply_instructions(reference: bytes, instructions: list[Instruction]) -> bytes:
    """Reconstruct a target file from a reference and an instruction list."""
    out = bytearray()
    for instruction in instructions:
        if isinstance(instruction, Copy):
            end = instruction.offset + instruction.length
            if end > len(reference):
                raise DeltaFormatError(
                    f"copy [{instruction.offset}, {end}) exceeds reference "
                    f"length {len(reference)}"
                )
            out += reference[instruction.offset : end]
        elif isinstance(instruction, Add):
            out += instruction.data
        else:
            raise DeltaFormatError(f"unknown instruction {instruction!r}")
    return bytes(out)


def instructions_cover(instructions: list[Instruction]) -> int:
    """Total number of output bytes the instruction list produces."""
    total = 0
    for instruction in instructions:
        if isinstance(instruction, Copy):
            total += instruction.length
        else:
            total += len(instruction.data)
    return total
