"""Classic rolling checksums: rsync's Adler variant and Karp–Rabin.

A rolling hash over a window of fixed length ``L`` can be slid one byte to
the right in constant time.  rsync uses a two-component Adler-style
checksum; Karp–Rabin fingerprints use polynomial evaluation modulo a prime.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

_MOD16 = 1 << 16


class RollingHash(ABC):
    """Interface shared by all rolling hashes.

    Subclasses are initialised over a window and then slid with
    :meth:`roll`.  :attr:`value` is the current hash as a non-negative int.
    """

    @abstractmethod
    def roll(self, out_byte: int, in_byte: int) -> int:
        """Slide the window one byte: drop ``out_byte``, append ``in_byte``.

        Returns the new hash value.
        """

    @property
    @abstractmethod
    def value(self) -> int:
        """Current hash value."""

    @classmethod
    @abstractmethod
    def of(cls, window: bytes) -> int:
        """Hash of ``window`` computed directly (non-rolling reference)."""


class AdlerRolling(RollingHash):
    """rsync's 32-bit rolling checksum.

    Components (both mod ``2**16``) over window ``x[0..L-1]``::

        a = sum(x[j])
        b = sum((L - j) * x[j])

    packed as ``a | (b << 16)``.
    """

    def __init__(self, window: bytes) -> None:
        if not window:
            raise ValueError("window must be non-empty")
        self._length = len(window)
        self._a = sum(window) % _MOD16
        self._b = (
            sum((self._length - j) * byte for j, byte in enumerate(window)) % _MOD16
        )

    @property
    def value(self) -> int:
        return self._a | (self._b << 16)

    @property
    def components(self) -> tuple[int, int]:
        """The ``(a, b)`` component pair."""
        return self._a, self._b

    def roll(self, out_byte: int, in_byte: int) -> int:
        self._a = (self._a - out_byte + in_byte) % _MOD16
        self._b = (self._b - self._length * out_byte + self._a) % _MOD16
        return self.value

    @classmethod
    def of(cls, window: bytes) -> int:
        return cls(window).value


class KarpRabinRolling(RollingHash):
    """Karp–Rabin polynomial fingerprint modulo a prime.

    ``h = sum(x[j] * r**(L-1-j)) mod p`` for a fixed radix ``r``.
    """

    #: A Mersenne prime keeps the modulus fast and collision behaviour good.
    DEFAULT_MODULUS = (1 << 61) - 1
    DEFAULT_RADIX = 256

    def __init__(
        self,
        window: bytes,
        radix: int = DEFAULT_RADIX,
        modulus: int = DEFAULT_MODULUS,
    ) -> None:
        if not window:
            raise ValueError("window must be non-empty")
        if modulus <= 1:
            raise ValueError(f"modulus must be > 1, got {modulus}")
        self._radix = radix
        self._modulus = modulus
        self._length = len(window)
        self._top_power = pow(radix, self._length - 1, modulus)
        value = 0
        for byte in window:
            value = (value * radix + byte) % modulus
        self._value = value

    @property
    def value(self) -> int:
        return self._value

    def roll(self, out_byte: int, in_byte: int) -> int:
        self._value = (
            (self._value - out_byte * self._top_power) * self._radix + in_byte
        ) % self._modulus
        return self._value

    @classmethod
    def of(
        cls,
        window: bytes,
        radix: int = DEFAULT_RADIX,
        modulus: int = DEFAULT_MODULUS,
    ) -> int:
        return cls(window, radix=radix, modulus=modulus).value
