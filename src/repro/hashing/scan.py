"""Vectorised window-hash scans and the candidate position index.

The client must compare each received block hash against *every* window of
its own file.  Doing that with a per-byte Python rolling loop would make
the benchmarks CPU-bound and meaningless, so this module computes the
decomposable-Adler hash of all windows at once with numpy prefix sums:

* ``a``-component of window ``[i, i+L)`` is a difference of prefix sums of
  the substituted bytes;
* ``b``-component is ``(L + i) * (S[i+L] - S[i]) - (W[i+L] - W[i])`` where
  ``W`` is the prefix sum of ``j * m[j]``.

All arithmetic uses uint64 wraparound, which is exact modulo ``2**64`` and
therefore exact modulo ``2**16`` after masking.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.hashing.decomposable import DecomposableAdler, component_widths

_MASK16 = np.uint64(0xFFFF)


class PrefixSums(NamedTuple):
    """The two prefix-sum arrays behind every window-hash computation.

    ``prefix[i]`` is the sum of the substituted bytes ``T[data[0..i)]`` and
    ``weighted[i]`` the sum of ``j * T[data[j]]`` over the same range, both
    uint64 arrays of length ``len(data) + 1``.  :func:`window_hashes` and
    :class:`PrefixHasher` used to each compute their own copies; building
    them once here lets callers (and the hash-index cache) share one pair
    of buffers across every window length and every sync of the same data.
    """

    prefix: np.ndarray
    weighted: np.ndarray

    @property
    def data_length(self) -> int:
        return len(self.prefix) - 1

    @property
    def nbytes(self) -> int:
        """Memory footprint of both buffers (cache budgeting)."""
        return int(self.prefix.nbytes + self.weighted.nbytes)


def prefix_sums(data: bytes, hasher: DecomposableAdler) -> PrefixSums:
    """Compute the shared prefix-sum pair for ``data`` under ``hasher``."""
    n = len(data)
    raw = np.frombuffer(data, dtype=np.uint8)
    table = np.asarray(hasher.table, dtype=np.uint64)
    mapped = table[raw]
    prefix = np.zeros(n + 1, dtype=np.uint64)
    np.cumsum(mapped, out=prefix[1:])
    weighted = np.zeros(n + 1, dtype=np.uint64)
    np.cumsum(mapped * np.arange(n, dtype=np.uint64), out=weighted[1:])
    return PrefixSums(prefix, weighted)


def window_hashes_from_sums(sums: PrefixSums, length: int) -> np.ndarray:
    """Packed 32-bit hashes of every window, from precomputed prefix sums."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    n = sums.data_length
    if n < length:
        return np.empty(0, dtype=np.uint32)
    prefix, weighted = sums.prefix, sums.weighted
    with np.errstate(over="ignore"):
        window_sum = prefix[length:] - prefix[:-length]
        starts = np.arange(n - length + 1, dtype=np.uint64)
        b = (np.uint64(length) + starts) * window_sum - (
            weighted[length:] - weighted[:-length]
        )
    a16 = (window_sum & _MASK16).astype(np.uint32)
    b16 = (b & _MASK16).astype(np.uint32)
    return a16 | (b16 << np.uint32(16))


def window_hashes(
    data: bytes, length: int, hasher: DecomposableAdler
) -> np.ndarray:
    """Packed 32-bit hashes ``a | (b << 16)`` of every window of ``length``.

    Returns an array of ``len(data) - length + 1`` uint32 values (empty if
    the file is shorter than one window).
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if len(data) < length:
        return np.empty(0, dtype=np.uint32)
    return window_hashes_from_sums(prefix_sums(data, hasher), length)


def sorted_range_pair(
    sorted_values: np.ndarray, queries: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``[lo, hi)`` range of every query in ``sorted_values``, batch-resolved.

    One vectorised ``searchsorted`` pair answers all queries at once —
    this is what turns a per-position Python lookup loop into a single
    numpy pass.  The queries are sorted first so the binary searches
    walk ``sorted_values`` monotonically (cache-friendly; ~2x faster
    than querying in file order on large scans) and the results are
    scattered back to the original query order, so the output is
    byte-identical to querying one position at a time.
    """
    if queries.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    order = np.argsort(queries, kind="stable")
    ordered = queries[order]
    lo = np.searchsorted(sorted_values, ordered, side="left")
    hi = np.searchsorted(sorted_values, ordered, side="right")
    out_lo = np.empty_like(lo)
    out_hi = np.empty_like(hi)
    out_lo[order] = lo
    out_hi[order] = hi
    return out_lo, out_hi


def next_occupied_table(occupied: np.ndarray) -> np.ndarray:
    """Jump table: ``table[i]`` is the smallest ``j >= i`` with
    ``occupied[j]``, or ``len(occupied)`` when no such ``j`` exists.

    A reversed ``minimum.accumulate`` over position markers builds the
    whole table in one vectorised pass; the greedy matching loops use it
    to hop over candidate-free stretches in O(1) per hop instead of
    re-running a binary search (or a per-byte scan) at every position.
    """
    size = int(occupied.size)
    markers = np.where(occupied, np.arange(size, dtype=np.int64), size)
    if size:
        markers = np.minimum.accumulate(markers[::-1])[::-1]
    return markers


def pack_to_width(full: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :meth:`DecomposableAdler.pack` over packed 32-bit hashes."""
    a_bits, b_bits = component_widths(width)
    a = full & np.uint32((1 << a_bits) - 1)
    if b_bits:
        b = (full >> np.uint32(16)) & np.uint32((1 << b_bits) - 1)
        return a | (b << np.uint32(a_bits))
    return a


def pack_to_widths(full: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """:func:`pack_to_width` with a *per-element* width array.

    Mixed sub-phase plans (global + local hashes in one message) pack
    each block's hash at its own width; per-element shift/mask arrays
    keep that a single numpy pass instead of a per-block branch.
    """
    widths = np.asarray(widths, dtype=np.uint32)
    a_bits = (widths + np.uint32(1)) >> np.uint32(1)
    b_bits = widths - a_bits
    a = full & ((np.uint32(1) << a_bits) - np.uint32(1))
    b = (full >> np.uint32(16)) & ((np.uint32(1) << b_bits) - np.uint32(1))
    return a | (b << a_bits)


class PrefixHasher:
    """O(1) decomposable-hash evaluation of arbitrary file regions.

    Precomputes the two prefix-sum arrays once; ``block_pair`` then
    evaluates the hash of any ``[start, start + length)`` region in
    constant time.  The server uses this to hash every block it transmits
    without re-reading block bytes; the client uses it to check
    continuation hashes at expected positions.
    """

    def __init__(
        self,
        data: bytes,
        hasher: DecomposableAdler,
        sums: PrefixSums | None = None,
    ) -> None:
        self._length = len(data)
        if sums is None:
            sums = prefix_sums(data, hasher)
        elif sums.data_length != len(data):
            raise ValueError(
                f"prefix sums cover {sums.data_length} bytes, data has "
                f"{len(data)}"
            )
        self._prefix = sums.prefix
        self._weighted = sums.weighted

    @property
    def data_length(self) -> int:
        return self._length

    def block_pair(self, start: int, length: int):
        """The ``(a, b)`` hash pair of ``data[start : start + length]``."""
        from repro.hashing.decomposable import HashPair

        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        if start < 0 or start + length > self._length:
            raise ValueError(
                f"region [{start}, {start + length}) outside data of "
                f"length {self._length}"
            )
        end = start + length
        with np.errstate(over="ignore"):
            window_sum = self._prefix[end] - self._prefix[start]
            b = np.uint64(length + start) * window_sum - (
                self._weighted[end] - self._weighted[start]
            )
        return HashPair(int(window_sum) & 0xFFFF, int(b) & 0xFFFF)

    def packed(self, start: int, length: int, width: int) -> int:
        """Packed ``width``-bit hash of the region."""
        return DecomposableAdler.pack(self.block_pair(start, length), width)

    def block_pairs(self, starts, lengths) -> np.ndarray:
        """Packed 32-bit hashes ``a | (b << 16)`` of many regions at once.

        The batched counterpart of :meth:`block_pair`: one numpy pass
        evaluates every ``[start, start + length)`` region, which is what
        lets the protocol engines build a whole round's MAP message (and
        probe every expected candidate position) without a per-block
        loop.  Widths are applied separately via :func:`pack_to_width` /
        :func:`pack_to_widths`.
        """
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if starts.size == 0:
            return np.empty(0, dtype=np.uint32)
        ends = starts + lengths
        if (
            bool((lengths <= 0).any())
            or bool((starts < 0).any())
            or bool((ends > self._length).any())
        ):
            raise ValueError(
                f"regions outside data of length {self._length} "
                "(or non-positive lengths)"
            )
        with np.errstate(over="ignore"):
            window_sum = self._prefix[ends] - self._prefix[starts]
            b = (lengths + starts).astype(np.uint64) * window_sum - (
                self._weighted[ends] - self._weighted[starts]
            )
        a16 = (window_sum & _MASK16).astype(np.uint32)
        b16 = (b & _MASK16).astype(np.uint32)
        return a16 | (b16 << np.uint32(16))


class _WidthIndex:
    """Sorted lookup structure for one truncated hash width."""

    def __init__(self, full_hashes: np.ndarray, width: int) -> None:
        packed = pack_to_width(full_hashes, width)
        self._order = np.argsort(packed, kind="stable")
        self._sorted = packed[self._order]

    def lookup(self, value: int, max_results: int) -> list[int]:
        """Window start positions whose truncated hash equals ``value``.

        Positions come back ascending: the stable argsort keeps equal
        hashes in original (positional) order.
        """
        lo = int(np.searchsorted(self._sorted, value, side="left"))
        hi = int(np.searchsorted(self._sorted, value, side="right"))
        if hi - lo > max_results:
            hi = lo + max_results
        # tolist() converts the whole slice to Python ints in C, instead
        # of boxing one numpy scalar per element.
        return self._order[lo:hi].tolist()

    def lookup_first_many(self, values: np.ndarray) -> np.ndarray:
        """First (lowest) matching position per query, ``-1`` when absent.

        One :func:`sorted_range_pair` call answers the whole query batch;
        ``order[lo]`` is the first match because the stable argsort keeps
        equal hashes in ascending positional order — exactly the
        ``lookup(...)[0]`` the scalar path takes.
        """
        lo, hi = sorted_range_pair(
            self._sorted, np.asarray(values, dtype=self._sorted.dtype)
        )
        first = np.full(lo.shape, -1, dtype=np.int64)
        found = hi > lo
        first[found] = self._order[lo[found]]
        return first


class HashIndex:
    """All-position hash index of one file for a fixed window length.

    Built once per protocol round; answers "which positions of my file have
    this truncated hash?" queries in ``O(log n + k)``.
    """

    def __init__(
        self,
        data: bytes,
        length: int,
        hasher: DecomposableAdler,
        full: np.ndarray | None = None,
    ) -> None:
        self._data = data
        self._length = length
        self._hasher = hasher
        if full is None:
            full = window_hashes(data, length, hasher)
        self._full = full
        self._by_width: dict[int, _WidthIndex] = {}

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the hash arrays (cache budgeting)."""
        total = int(self._full.nbytes)
        for index in self._by_width.values():
            total += int(index._order.nbytes + index._sorted.nbytes)
        return total

    @property
    def length(self) -> int:
        """Window length this index covers."""
        return self._length

    @property
    def position_count(self) -> int:
        """Number of indexed window positions."""
        return int(self._full.size)

    def full_hash_at(self, position: int) -> int:
        """Packed 32-bit hash of the window starting at ``position``."""
        return int(self._full[position])

    def packed_hash_at(self, position: int, width: int) -> int:
        """Truncated ``width``-bit hash of the window at ``position``."""
        return DecomposableAdler.truncate(int(self._full[position]), 32, width)

    def lookup(self, value: int, width: int, max_results: int = 8) -> list[int]:
        """Positions whose ``width``-bit truncated hash equals ``value``."""
        if self._full.size == 0:
            return []
        index = self._by_width.get(width)
        if index is None:
            index = _WidthIndex(self._full, width)
            self._by_width[width] = index
        return index.lookup(value, max_results)

    def lookup_many(self, values, width: int) -> np.ndarray:
        """Batched :meth:`lookup` head: first matching position per value.

        Returns an int64 array (``-1`` = no position has that truncated
        hash).  Byte-identical to calling ``lookup(value, width)[0]`` per
        value — this is the whole-round candidate lookup both protocol
        engines use instead of N scalar probes.

        When no :class:`_WidthIndex` exists yet for ``width`` the batch is
        answered by a *reverse* lookup — sort the (small) query batch and
        scan the full hash array against it — which is ``O(n log q)``
        instead of the ``O(n log n)`` argsort a width index costs to
        build.  A whole protocol round needs each ``(length, width)``
        combination only once or twice, so building the index never pays
        for itself; the scalar :meth:`lookup` path still builds (and then
        reuses) it.
        """
        values = np.asarray(values)
        if self._full.size == 0:
            return np.full(values.shape, -1, dtype=np.int64)
        index = self._by_width.get(width)
        if index is not None:
            return index.lookup_first_many(values)
        packed = pack_to_width(self._full, width)
        queries = values.astype(packed.dtype, copy=False)
        if queries.size <= 128:
            # Small batch: one SIMD equality scan per query beats the
            # per-element overhead of a length-n searchsorted.
            out = np.full(queries.size, -1, dtype=np.int64)
            flat = queries.ravel()
            for at, value in enumerate(flat.tolist()):
                hits = packed == np.uint32(value)
                first = int(hits.argmax())
                if hits[first]:
                    out[at] = first
            return out.reshape(values.shape)
        order = np.argsort(queries, kind="stable")
        sorted_queries = queries[order]
        # isin prunes the length-n side to actual hits first, so the
        # per-element searchsorted below only binary-searches hits.
        hit_positions = np.flatnonzero(np.isin(packed, sorted_queries))
        slot = np.searchsorted(sorted_queries, packed[hit_positions])
        first_sorted = np.full(sorted_queries.size, -1, dtype=np.int64)
        # Reversed assignment: with duplicate slots the LAST write wins,
        # so reversing makes the lowest position stick — the same "first
        # match" the stable width-index argsort would return.
        first_sorted[slot[::-1]] = hit_positions[::-1]
        # Duplicate query values occupy distinct slots but searchsorted
        # maps every hit to the leftmost equal slot; fan the result back
        # out to all duplicates before undoing the query sort.
        representative = np.searchsorted(
            sorted_queries, sorted_queries, side="left"
        )
        first_sorted = first_sorted[representative]
        out = np.empty(queries.size, dtype=np.int64)
        out[order] = first_sorted
        return out.reshape(values.shape)

    def lookup_in_range(
        self, value: int, width: int, lo: int, hi: int, max_results: int = 8
    ) -> list[int]:
        """Matching positions restricted to ``[lo, hi)`` (local hashes)."""
        lo = max(lo, 0)
        hi = min(hi, int(self._full.size))
        if lo >= hi:
            return []
        index = self._by_width.get(width)
        if index is not None:
            # The sorted width index already exists: an O(log n) probe
            # beats re-packing and scanning the whole slice.  Matches
            # are ascending (stable sort), exactly like the scan below.
            matches = index.lookup(value, int(self._full.size))
            return [p for p in matches if lo <= p < hi][:max_results]
        packed = pack_to_width(self._full[lo:hi], width)
        positions = np.flatnonzero(packed == np.uint32(value))[:max_results]
        return (positions + lo).tolist()
