"""Hash functions for remote file synchronization.

The paper's protocol relies on three families of hashes:

* **Rolling hashes** (:mod:`repro.hashing.rolling`) that slide a window by
  one byte in constant time — used by rsync and by the map-construction
  phase to compare a transmitted block hash against *every* position of the
  local file.
* A **decomposable** rolling hash (:mod:`repro.hashing.decomposable`), the
  paper's modified Adler checksum: the hash of a parent block can be
  combined from its two children and, crucially, a child's hash can be
  recovered from the parent's and the sibling's.  This halves the number of
  hashes the server must transmit during recursive splitting.
* **Strong hashes** (:mod:`repro.hashing.strong`) used for match
  verification and whole-file integrity checks.

:mod:`repro.hashing.scan` provides numpy-vectorised computation of the
decomposable hash over all windows of a file plus a position index for
candidate lookup; this is what makes a pure-Python reproduction fast enough
to benchmark honestly.
"""

from repro.hashing.decomposable import DecomposableAdler, HashPair
from repro.hashing.rolling import AdlerRolling, KarpRabinRolling, RollingHash
from repro.hashing.scan import (
    HashIndex,
    PrefixHasher,
    PrefixSums,
    prefix_sums,
    window_hashes,
    window_hashes_from_sums,
)
from repro.hashing.strong import (
    StrongHasher,
    file_fingerprint,
    group_digest,
    strong_digest,
)

__all__ = [
    "AdlerRolling",
    "DecomposableAdler",
    "HashIndex",
    "HashPair",
    "PrefixHasher",
    "PrefixSums",
    "prefix_sums",
    "KarpRabinRolling",
    "RollingHash",
    "StrongHasher",
    "file_fingerprint",
    "group_digest",
    "strong_digest",
    "window_hashes",
    "window_hashes_from_sums",
]
