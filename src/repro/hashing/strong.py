"""Strong (cryptographic) hashes for verification and integrity.

The paper uses MD4 inside rsync and MD5 for verification hashes; only the
number of *transmitted* bytes matters for the bandwidth results, so we use
``hashlib``'s MD5 throughout and truncate digests to the configured width.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable


def strong_digest(data: bytes, nbytes: int = 16, salt: bytes = b"") -> bytes:
    """MD5 digest of ``salt + data`` truncated to ``nbytes`` bytes."""
    if not 1 <= nbytes <= 16:
        raise ValueError(f"nbytes must be in [1, 16], got {nbytes}")
    return hashlib.md5(salt + data).digest()[:nbytes]


def group_digest(digests: Iterable[bytes], nbytes: int = 16) -> bytes:
    """Digest of a *group* of block digests.

    Group verification sends one hash covering several candidate matches;
    combining the members' full digests keeps the group hash sensitive to
    every member.
    """
    if not 1 <= nbytes <= 16:
        raise ValueError(f"nbytes must be in [1, 16], got {nbytes}")
    combined = hashlib.md5()
    for digest in digests:
        combined.update(digest)
    return combined.digest()[:nbytes]


def file_fingerprint(data: bytes) -> bytes:
    """The 16-byte whole-file fingerprint exchanged before synchronization.

    Used both to detect unchanged files cheaply and to detect the (very
    unlikely) failure of the block-hash protocol afterwards.
    """
    return hashlib.md5(data).digest()


class StrongHasher:
    """Truncated MD5 hashes with a per-session salt and bit-level widths.

    Verification hashes in the protocol have widths expressed in *bits*
    (e.g. a 24-bit hash for a single candidate, more for a group), so the
    wire accounting needs bit-truncated values rather than whole bytes.
    """

    def __init__(self, salt: bytes = b"") -> None:
        self._salt = salt

    @property
    def salt(self) -> bytes:
        return self._salt

    def digest(self, data: bytes, nbytes: int = 16) -> bytes:
        """Byte-truncated digest of ``data``."""
        return strong_digest(data, nbytes=nbytes, salt=self._salt)

    def bits(self, data: bytes, width: int) -> int:
        """The first ``width`` bits of the digest, as an unsigned int."""
        if not 1 <= width <= 128:
            raise ValueError(f"width must be in [1, 128], got {width}")
        nbytes = (width + 7) // 8
        value = int.from_bytes(self.digest(data, nbytes=nbytes), "big")
        return value >> (8 * nbytes - width)

    def group_bits(self, members: Iterable[bytes], width: int) -> int:
        """A ``width``-bit hash covering several blocks.

        Equal iff the member digests are equal (up to MD5 collisions), so a
        single transmitted value verifies an entire group of candidates.
        """
        if not 1 <= width <= 128:
            raise ValueError(f"width must be in [1, 128], got {width}")
        combined = hashlib.md5(self._salt)
        for member in members:
            combined.update(hashlib.md5(self._salt + member).digest())
        nbytes = (width + 7) // 8
        value = int.from_bytes(combined.digest()[:nbytes], "big")
        return value >> (8 * nbytes - width)
