"""The paper's decomposable rolling hash (a modified Adler checksum).

During recursive splitting the server would naively transmit one hash per
child block.  With a *decomposable* hash the client can recover the right
child's hash from the parent's hash (already transmitted in the previous
round) and the left child's hash, so only one hash per sibling pair needs
to be sent — roughly halving server-to-client map-construction traffic.

Construction
------------

Bytes are first passed through a fixed pseudo-random 16-bit substitution
table ``T`` (this is our "modification of the Adler checksum": it breaks up
the regularities of ASCII text that make the plain byte-sum collide).  For
a block ``x[0..L-1]`` the two components, both modulo ``2**16``, are::

    a(x) = sum(T[x[j]])
    b(x) = sum((L - j) * T[x[j]])

For a parent ``z = x || y`` with ``len(y) = Ly``::

    a(z) = a(x) + a(y)                       (composable)
    b(z) = b(x) + Ly * a(x) + b(y)

Both identities can be solved for either child, giving decomposability.
Because all arithmetic is modular with a power-of-two modulus, the
identities also hold on the *low* ``k`` bits of each component — the
"bit-prefix" decomposability the paper asks for — provided the ``a``
component is transmitted with at least as many bits as the ``b`` component
(the ``b`` identity consumes bits of ``a``).

The hash is rolling as well: sliding the window one byte updates ``a`` and
``b`` in constant time exactly like rsync's checksum.
"""

from __future__ import annotations

import random
from typing import NamedTuple

_MOD16 = 1 << 16
_MASK16 = _MOD16 - 1


class HashPair(NamedTuple):
    """The two 16-bit components of the decomposable hash."""

    a: int
    b: int


def component_widths(width: int) -> tuple[int, int]:
    """Split a packed hash ``width`` into (a_bits, b_bits).

    The ``a`` component gets the extra bit when ``width`` is odd because
    truncated decomposition of ``b`` consumes ``b_bits`` low bits of ``a``,
    which therefore must satisfy ``a_bits >= b_bits``.
    """
    if not 1 <= width <= 32:
        raise ValueError(f"width must be in [1, 32], got {width}")
    a_bits = (width + 1) // 2
    return a_bits, width - a_bits


class DecomposableAdler:
    """Rolling, composable and decomposable block hash.

    Parameters
    ----------
    seed:
        Seeds the byte substitution table.  Client and server must use the
        same seed (the protocol fixes it); different seeds give independent
        hash functions, which the retry-on-failure path exploits.
    """

    def __init__(
        self, seed: int = 0, table: "tuple[int, ...] | None" = None
    ) -> None:
        self._seed = seed
        if table is not None:
            table = tuple(table)
            if len(table) != 256:
                raise ValueError(f"table must have 256 entries, got {len(table)}")
            self.table: tuple[int, ...] = table
        else:
            rng = random.Random(seed)
            self.table = tuple(rng.randrange(_MOD16) for _ in range(256))

    @classmethod
    def identity(cls) -> "DecomposableAdler":
        """Plain Adler behaviour (no byte substitution) — used by rsync."""
        return cls(seed=-1, table=tuple(range(256)))

    @property
    def seed(self) -> int:
        """The substitution-table seed."""
        return self._seed

    # ------------------------------------------------------------------
    # Direct hashing
    # ------------------------------------------------------------------
    def hash_block(self, data: bytes) -> HashPair:
        """Hash a whole block."""
        table = self.table
        length = len(data)
        a = 0
        b = 0
        for j, byte in enumerate(data):
            mapped = table[byte]
            a += mapped
            b += (length - j) * mapped
        return HashPair(a & _MASK16, b & _MASK16)

    def roll(
        self, pair: HashPair, length: int, out_byte: int, in_byte: int
    ) -> HashPair:
        """Slide a window of ``length`` bytes one position to the right."""
        out_mapped = self.table[out_byte]
        in_mapped = self.table[in_byte]
        a = (pair.a - out_mapped + in_mapped) & _MASK16
        b = (pair.b - length * out_mapped + a) & _MASK16
        return HashPair(a, b)

    # ------------------------------------------------------------------
    # Algebra: composition and decomposition
    # ------------------------------------------------------------------
    @staticmethod
    def compose(left: HashPair, right: HashPair, right_length: int) -> HashPair:
        """Hash of ``x || y`` from the hashes of ``x`` and ``y``."""
        a = (left.a + right.a) & _MASK16
        b = (left.b + right_length * left.a + right.b) & _MASK16
        return HashPair(a, b)

    @staticmethod
    def decompose_right(
        parent: HashPair, left: HashPair, right_length: int
    ) -> HashPair:
        """Hash of the right child from the parent's and left child's."""
        a = (parent.a - left.a) & _MASK16
        b = (parent.b - left.b - right_length * left.a) & _MASK16
        return HashPair(a, b)

    @staticmethod
    def decompose_left(
        parent: HashPair, right: HashPair, right_length: int
    ) -> HashPair:
        """Hash of the left child from the parent's and right child's."""
        a = (parent.a - right.a) & _MASK16
        b = (parent.b - right.b - right_length * a) & _MASK16
        return HashPair(a, b)

    # ------------------------------------------------------------------
    # Packing / truncation (bit-prefix behaviour)
    # ------------------------------------------------------------------
    @staticmethod
    def pack(pair: HashPair, width: int) -> int:
        """Pack the low bits of both components into a ``width``-bit value."""
        a_bits, b_bits = component_widths(width)
        a = pair.a & ((1 << a_bits) - 1)
        b = pair.b & ((1 << b_bits) - 1) if b_bits else 0
        return a | (b << a_bits)

    @staticmethod
    def unpack(packed: int, width: int) -> HashPair:
        """Inverse of :meth:`pack` (high component bits are lost: zeroed)."""
        a_bits, b_bits = component_widths(width)
        a = packed & ((1 << a_bits) - 1)
        b = (packed >> a_bits) & ((1 << b_bits) - 1) if b_bits else 0
        return HashPair(a, b)

    @classmethod
    def truncate(cls, packed: int, from_width: int, to_width: int) -> int:
        """Reduce a packed hash to a smaller width (keeps low bits)."""
        if to_width > from_width:
            raise ValueError(
                f"cannot widen a truncated hash ({from_width} -> {to_width})"
            )
        return cls.pack(cls.unpack(packed, from_width), to_width)

    @classmethod
    def decompose_right_packed(
        cls, parent: int, left: int, width: int, right_length: int
    ) -> int:
        """Truncated decomposition on packed ``width``-bit hashes.

        Valid because each component identity holds modulo any power of two
        not exceeding the transmitted component width (``a_bits >= b_bits``
        guarantees enough ``a`` bits are available for the ``b`` identity).
        """
        a_bits, b_bits = component_widths(width)
        parent_pair = cls.unpack(parent, width)
        left_pair = cls.unpack(left, width)
        a = (parent_pair.a - left_pair.a) & ((1 << a_bits) - 1)
        if b_bits:
            b = (parent_pair.b - left_pair.b - right_length * left_pair.a) & (
                (1 << b_bits) - 1
            )
        else:
            b = 0
        return a | (b << a_bits)

    def packed_hash(self, data: bytes, width: int) -> int:
        """Convenience: hash a block and pack it to ``width`` bits."""
        return self.pack(self.hash_block(data), width)
