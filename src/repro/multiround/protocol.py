"""The multiround-rsync exchange.

Per round (block size ``b``, halving):

1. client → server: one hash per *active* client block (a fixed-width
   truncated hash; no separate verification pass — the width must carry
   the full confidence, which is exactly the inefficiency the paper's
   optimized verification removes);
2. server: matches each hash against every position of ``F_new`` (numpy
   index) and replies with a bitmap; matched blocks are pinned to their
   server position, unmatched blocks split for the next round.

After the final round the server covers ``F_new`` with pinned client
blocks where possible and compressed literals elsewhere, and the client
reconstructs.  A whole-file checksum detects hash collisions; a
surgical repair round (:mod:`repro.core.repair`) localizes and
re-fetches only the divergent blocks, with the full-transfer fallback
reserved for damage repair cannot cure.

Checkpointing: the state both endpoints carry across a round boundary is
tiny and flat — the active block frontier, the pinned matches, and the
round index — so ``multiround_rsync_sync`` can snapshot it after every
completed round (``checkpointer``) and continue from such a snapshot
(``resume_from``) instead of restarting a torn session from round 0.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.blocks import Block, BlockStatus
from repro.core.engine import resolve_engine
from repro.core.repair import (
    DEFAULT_REPAIR_FANOUT,
    PHASE_REPAIR,
    repair_exchange,
)
from repro.exceptions import DeltaFormatError, SyncStalledError
from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import HashIndex, PrefixHasher, pack_to_width
from repro.hashing.strong import file_fingerprint
from repro.io.bitstream import BitReader, BitWriter
from repro.io.varint import decode_uvarint, encode_uvarint
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction, TransferStats
from repro.parallel.cache import HashIndexCache, default_cache

PHASE_HANDSHAKE = "handshake"
PHASE_MAP = "map"
PHASE_DELTA = "delta"
PHASE_FALLBACK = "fallback"

_TOKEN_LITERAL = 0x00
_TOKEN_BLOCK = 0x01


@dataclass(frozen=True)
class MultiroundConfig:
    """Tunables of the multiround baseline.

    ``max_rounds`` is a *circuit*, not a byte/latency trade like the core
    protocol's graceful cap: a healthy session always converges within
    ``log2(start/min) + 1`` rounds, so exceeding the limit means the
    round state machine is stuck (adversarial corruption, a resume from
    a forged checkpoint, a bug) and the session fails with a typed
    :class:`~repro.exceptions.SyncStalledError` instead of looping.
    ``None`` uses a generous default ceiling well above any legitimate
    round count.
    """

    start_block_size: int = 2048
    min_block_size: int = 64
    hash_bits: int = 30  # must carry all confidence: no verification pass
    hash_seed: int = 1
    max_rounds: int | None = None
    #: Attempt a surgical repair round on fingerprint mismatch before
    #: surrendering to the full-transfer fallback.
    repair: bool = True
    repair_fanout: int = DEFAULT_REPAIR_FANOUT

    def __post_init__(self) -> None:
        if self.min_block_size < 2:
            raise ValueError("min_block_size must be >= 2")
        if self.start_block_size < self.min_block_size:
            raise ValueError("start_block_size must be >= min_block_size")
        if not 8 <= self.hash_bits <= 32:
            raise ValueError("hash_bits must be in [8, 32]")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.repair_fanout < 2:
            raise ValueError("repair_fanout must be >= 2")

    @property
    def round_limit(self) -> int:
        """The effective stall ceiling (``max_rounds`` or the default)."""
        if self.max_rounds is not None:
            return self.max_rounds
        return self.start_block_size.bit_length() + 2


@dataclass
class MultiroundResult:
    """Outcome of one multiround-rsync run.

    ``collisions_detected`` counts whole-file fingerprint rejections (0
    or 1 per run); ``repaired`` means the surgical repair rounds fixed
    the divergence in place (``repair_rounds`` descent roundtrips,
    ``repair_bytes`` on the wire).  ``used_fallback`` still means a full
    compressed transfer happened.
    """

    reconstructed: bytes
    stats: TransferStats
    rounds: int
    used_fallback: bool
    collisions_detected: int = 0
    repaired: bool = False
    repair_rounds: int = 0
    repair_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.stats.total_bytes


@dataclass
class _Pinned:
    """A client block confirmed to occur in the server file."""

    client_start: int
    length: int
    server_start: int


def _initial_blocks(length: int, block_size: int) -> list[Block]:
    blocks = []
    offset = 0
    while offset < length:
        size = min(block_size, length - offset)
        blocks.append(Block(start=offset, length=size, level=0))
        offset += size
    return blocks


def encode_round_state(
    expected_fingerprint: bytes, blocks: list[Block], pinned: list[_Pinned]
) -> bytes:
    """Serialize the cross-round reconciliation state (varint format)."""
    out = bytearray()
    out += expected_fingerprint
    out += encode_uvarint(len(blocks))
    for block in blocks:
        out += encode_uvarint(block.start)
        out += encode_uvarint(block.length)
    out += encode_uvarint(len(pinned))
    for pin in pinned:
        out += encode_uvarint(pin.client_start)
        out += encode_uvarint(pin.length)
        out += encode_uvarint(pin.server_start)
    return bytes(out)


def decode_round_state(
    payload: bytes,
) -> tuple[bytes, list[Block], list[_Pinned]]:
    """Inverse of :func:`encode_round_state`."""
    expected_fingerprint = payload[:16]
    offset = 16
    count, offset = decode_uvarint(payload, offset)
    blocks = []
    for _ in range(count):
        start, offset = decode_uvarint(payload, offset)
        length, offset = decode_uvarint(payload, offset)
        blocks.append(Block(start=start, length=length, level=0))
    count, offset = decode_uvarint(payload, offset)
    pinned = []
    for _ in range(count):
        client_start, offset = decode_uvarint(payload, offset)
        length, offset = decode_uvarint(payload, offset)
        server_start, offset = decode_uvarint(payload, offset)
        pinned.append(_Pinned(client_start, length, server_start))
    return expected_fingerprint, blocks, pinned


class MultiroundSession:
    """Resumable step-wise state machine for one multiround exchange.

    Splits :func:`multiround_rsync_sync` into the schedulable pieces the
    pipelined collection scheduler needs — without changing a bit on the
    wire: the driver loop below replays the exact send/receive sequence
    of the former run-to-completion function.

    Lifecycle::

        session.start(channel, resume_from=...)   # handshake or restore
        while not session.done:
            session.step_round(channel)           # exactly one round
        result = session.finish(channel)          # delta + integrity

    Every completed round is checkpointed through ``checkpointer`` (when
    given) with the same :func:`encode_round_state` payloads as before,
    so checkpoints stay interchangeable between schedulers and engines.
    """

    def __init__(
        self,
        old_data: bytes,
        new_data: bytes,
        config: MultiroundConfig | None = None,
        checkpointer=None,
        engine: str | None = None,
    ) -> None:
        self.old_data = old_data
        self.new_data = new_data
        self.config = config or MultiroundConfig()
        self.checkpointer = checkpointer
        self.engine = resolve_engine(engine)
        self.rounds = 0
        self.pinned: list[_Pinned] = []
        self.expected_fingerprint = b""
        self._started = False
        self._hasher = DecomposableAdler(seed=self.config.hash_seed)
        self._client_prefix = PrefixHasher(old_data, self._hasher)
        self._server_fingerprint = file_fingerprint(new_data)
        self._index_cache: HashIndexCache = default_cache()
        self._server_indexes: dict[int, HashIndex] = {}
        # Engine-specific frontier: Block objects (scalar) or two int64
        # arrays (vectorized); both advance in the same interleaved
        # left/right order Block.split produces.
        self._blocks: list[Block] = []
        self._starts = np.empty(0, dtype=np.int64)
        self._lengths = np.empty(0, dtype=np.int64)

    def _server_index(self, length: int) -> HashIndex:
        """Per-session memo over the shared content-keyed index cache."""
        index = self._server_indexes.get(length)
        if index is None:
            if length > len(self.new_data):
                # No window of this length exists; an empty index, built
                # without scanning the data (and without a cache slot).
                index = HashIndex(b"", length, self._hasher)
            else:
                index = self._index_cache.hash_index(
                    self.new_data,
                    length,
                    self._hasher,
                    fingerprint=self._server_fingerprint,
                )
            self._server_indexes[length] = index
        return index

    # ------------------------------------------------------------------
    def start(self, channel: SimulatedChannel, resume_from=None) -> None:
        """Run the handshake, or restore a checkpointed round boundary."""
        if resume_from is not None:
            self.expected_fingerprint, blocks, self.pinned = (
                decode_round_state(resume_from.payload)
            )
            self.rounds = resume_from.round_index
        else:
            # Handshake: fingerprint for the final integrity check.
            hello = BitWriter()
            hello.write_bytes(self._server_fingerprint)
            channel.send(
                Direction.SERVER_TO_CLIENT, hello.getvalue(), PHASE_HANDSHAKE,
                bits=hello.bit_length,
            )
            self.expected_fingerprint = BitReader(
                channel.receive(Direction.SERVER_TO_CLIENT)
            ).read_bytes(16)
            blocks = _initial_blocks(
                len(self.old_data), self.config.start_block_size
            )
            self.pinned = []
            self.rounds = 0
        if self.engine == "scalar":
            self._blocks = blocks
        else:
            self._starts = np.fromiter(
                (b.start for b in blocks), dtype=np.int64, count=len(blocks)
            )
            self._lengths = np.fromiter(
                (b.length for b in blocks), dtype=np.int64, count=len(blocks)
            )
        self._started = True

    @property
    def active_blocks(self) -> int:
        """Blocks still on the reconciliation frontier."""
        if self.engine == "scalar":
            return len(self._blocks)
        return int(self._starts.size)

    @property
    def done(self) -> bool:
        """True when no rounds remain (ready for :meth:`finish`)."""
        return self._started and self.active_blocks == 0

    def _frontier_state(self) -> bytes:
        if self.engine == "scalar":
            frontier = self._blocks
        else:
            frontier = [
                Block(start=start, length=length, level=0)
                for start, length in zip(
                    self._starts.tolist(), self._lengths.tolist()
                )
            ]
        return encode_round_state(
            self.expected_fingerprint, frontier, self.pinned
        )

    # ------------------------------------------------------------------
    def step_round(self, channel: SimulatedChannel) -> None:
        """Execute exactly one hash/bitmap round, checkpoint included."""
        if not self._started:
            raise ValueError("step_round before start()")
        round_limit = self.config.round_limit
        self.rounds += 1
        if self.rounds > round_limit:
            raise SyncStalledError(
                f"multiround session still has {self.active_blocks} active "
                f"blocks after {round_limit} rounds — frontier is not "
                f"converging"
            )
        channel.mark_round(self.rounds)
        if self.engine == "scalar":
            self._step_scalar(channel)
        else:
            self._step_vectorized(channel)
        if self.checkpointer is not None:
            self.checkpointer.record_round(
                self.rounds, self._frontier_state(), channel.stats
            )

    def _step_scalar(self, channel: SimulatedChannel) -> None:
        """Parity oracle: the original block-at-a-time round body."""
        config = self.config
        blocks = self._blocks
        message = BitWriter()
        for block in blocks:
            packed = DecomposableAdler.pack(
                self._client_prefix.block_pair(block.start, block.length),
                config.hash_bits,
            )
            message.write(packed, config.hash_bits)
        channel.send(
            Direction.CLIENT_TO_SERVER, message.getvalue(), PHASE_MAP,
            bits=message.bit_length,
        )

        reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
        bitmap = BitWriter()
        matches_this_round: list[tuple[Block, int]] = []
        for block in blocks:
            value = reader.read(config.hash_bits)
            index = self._server_index(block.length)
            positions = index.lookup(value, config.hash_bits, max_results=1)
            matched = bool(positions)
            bitmap.write_bit(matched)
            if matched:
                matches_this_round.append((block, positions[0]))
        channel.send(
            Direction.SERVER_TO_CLIENT, bitmap.getvalue(), PHASE_MAP,
            bits=bitmap.bit_length,
        )

        # Both sides advance identically from the bitmap.
        confirm = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
        next_blocks: list[Block] = []
        match_cursor = 0
        for block in blocks:
            if confirm.read_bit():
                matched_block, server_position = matches_this_round[match_cursor]
                match_cursor += 1
                self.pinned.append(
                    _Pinned(block.start, block.length, server_position)
                )
                block.status = BlockStatus.MATCHED
            elif block.length // 2 >= config.min_block_size:
                next_blocks.extend(block.split())
            else:
                block.status = BlockStatus.EXHAUSTED
        self._blocks = next_blocks

    def _step_vectorized(self, channel: SimulatedChannel) -> None:
        """Whole-round engine: the active frontier is two int64 arrays."""
        config = self.config
        starts, lengths = self._starts, self._lengths
        hash_bits = config.hash_bits
        count = int(starts.size)
        packed = pack_to_width(
            self._client_prefix.block_pairs(starts, lengths), hash_bits
        )
        message = BitWriter()
        message.write_many(packed, hash_bits)
        channel.send(
            Direction.CLIENT_TO_SERVER, message.getvalue(), PHASE_MAP,
            bits=message.bit_length,
        )

        reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
        values = reader.read_many(count, hash_bits)
        positions = np.full(count, -1, dtype=np.int64)
        for length in np.unique(lengths).tolist():
            rows = np.flatnonzero(lengths == length)
            positions[rows] = self._server_index(length).lookup_many(
                values[rows], hash_bits
            )
        matched = positions >= 0
        bitmap = BitWriter()
        bitmap.write_flags(matched)
        channel.send(
            Direction.SERVER_TO_CLIENT, bitmap.getvalue(), PHASE_MAP,
            bits=bitmap.bit_length,
        )

        # Both sides advance identically from the bitmap.
        confirm = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
        flags = confirm.read_flags(count)
        self.pinned.extend(
            _Pinned(client_start, length, server_start)
            for client_start, length, server_start in zip(
                starts[flags].tolist(),
                lengths[flags].tolist(),
                positions[flags].tolist(),
            )
        )
        split = ~flags & (lengths // 2 >= config.min_block_size)
        split_starts = starts[split]
        split_lengths = lengths[split]
        left_lengths = (split_lengths + 1) // 2
        self._starts = np.empty(2 * split_starts.size, dtype=np.int64)
        self._lengths = np.empty(2 * split_starts.size, dtype=np.int64)
        self._starts[0::2] = split_starts
        self._starts[1::2] = split_starts + left_lengths
        self._lengths[0::2] = left_lengths
        self._lengths[1::2] = split_lengths - left_lengths

    # ------------------------------------------------------------------
    def finish(self, channel: SimulatedChannel) -> MultiroundResult:
        """Delta covering, reconstruction, and the integrity endgame."""
        old_data, new_data, config = self.old_data, self.new_data, self.config

        # --- Delta: cover F_new with pinned client blocks + literals ---
        by_server_position = sorted(
            self.pinned, key=lambda p: (p.server_start, -p.length)
        )
        tokens = bytearray()
        literals_pending = bytearray()
        cursor = 0

        def flush_literals() -> None:
            nonlocal literals_pending
            if literals_pending:
                tokens.append(_TOKEN_LITERAL)
                tokens.extend(encode_uvarint(len(literals_pending)))
                tokens.extend(literals_pending)
                literals_pending = bytearray()

        for pin in by_server_position:
            if pin.server_start < cursor:
                continue  # overlaps something already covered
            if pin.server_start > cursor:
                literals_pending.extend(new_data[cursor : pin.server_start])
            flush_literals()
            tokens.append(_TOKEN_BLOCK)
            tokens.extend(encode_uvarint(pin.client_start))
            tokens.extend(encode_uvarint(pin.length))
            cursor = pin.server_start + pin.length
        if cursor < len(new_data):
            literals_pending.extend(new_data[cursor:])
        flush_literals()
        delta_payload = zlib.compress(bytes(tokens), 9)
        channel.send(Direction.SERVER_TO_CLIENT, delta_payload, PHASE_DELTA)

        # --- Client reconstruction -------------------------------------
        raw = zlib.decompress(channel.receive(Direction.SERVER_TO_CLIENT))
        out = bytearray()
        position = 0
        try:
            while position < len(raw):
                kind = raw[position]
                position += 1
                if kind == _TOKEN_LITERAL:
                    length, position = decode_uvarint(raw, position)
                    out += raw[position : position + length]
                    position += length
                elif kind == _TOKEN_BLOCK:
                    client_start, position = decode_uvarint(raw, position)
                    length, position = decode_uvarint(raw, position)
                    out += old_data[client_start : client_start + length]
                else:
                    raise DeltaFormatError(f"unknown token {kind:#x}")
        except DeltaFormatError:
            out = bytearray()  # force the fallback below

        reconstructed = bytes(out)
        used_fallback = False
        collisions_detected = 0
        repaired = False
        repair_rounds = 0
        repair_bytes = 0
        if file_fingerprint(reconstructed) != self.expected_fingerprint:
            collisions_detected = 1
            # A truncated-hash collision preserves lengths; anything else
            # (decode damage) is not surgically repairable.
            if (config.repair and new_data
                    and len(reconstructed) == len(new_data)):
                channel.send(
                    Direction.CLIENT_TO_SERVER, b"\x02", PHASE_REPAIR, bits=2
                )
                channel.receive(Direction.CLIENT_TO_SERVER)
                outcome = repair_exchange(
                    channel,
                    reconstructed,
                    new_data,
                    self.expected_fingerprint,
                    leaf_size=config.min_block_size,
                    fanout=config.repair_fanout,
                )
                repair_rounds = outcome.rounds
                repair_bytes = channel.stats.bytes_in_phase(PHASE_REPAIR)
                if outcome.converged:
                    reconstructed = outcome.data
                    repaired = True
            if not repaired:
                used_fallback = True
                channel.send(Direction.CLIENT_TO_SERVER, b"\x01", PHASE_FALLBACK, bits=1)
                channel.receive(Direction.CLIENT_TO_SERVER)
                channel.send(
                    Direction.SERVER_TO_CLIENT, zlib.compress(new_data, 9),
                    PHASE_FALLBACK,
                )
                reconstructed = zlib.decompress(
                    channel.receive(Direction.SERVER_TO_CLIENT)
                )
                # The NACK plus the whole compressed file — and any repair
                # descent that failed to converge — is recovery traffic, not
                # first-try payload.
                channel.stats.reclassify_phase_as_retransmission(PHASE_FALLBACK)
                channel.stats.reclassify_phase_as_retransmission(PHASE_REPAIR)
        else:
            channel.send(Direction.CLIENT_TO_SERVER, b"\x00", PHASE_FALLBACK, bits=1)
            channel.receive(Direction.CLIENT_TO_SERVER)
        return MultiroundResult(
            reconstructed=reconstructed,
            stats=channel.stats,
            rounds=self.rounds,
            used_fallback=used_fallback,
            collisions_detected=collisions_detected,
            repaired=repaired,
            repair_rounds=repair_rounds,
            repair_bytes=repair_bytes,
        )


def multiround_rsync_sync(
    old_data: bytes,
    new_data: bytes,
    config: MultiroundConfig | None = None,
    channel: SimulatedChannel | None = None,
    checkpointer=None,
    resume_from=None,
    engine: str | None = None,
) -> MultiroundResult:
    """Synchronise ``old_data`` to ``new_data`` with multiround rsync.

    ``checkpointer`` (a
    :class:`~repro.resilience.checkpoint.SessionJournal`, already opened)
    records the reconciliation state after every completed round;
    ``resume_from`` (a
    :class:`~repro.resilience.checkpoint.RoundCheckpoint`) continues from
    such a record, skipping the handshake and every already-paid-for
    round.  A resumed call assumes the caller seeded ``channel.stats``
    with the checkpoint's counters (the supervisor's resume handshake
    does), so the returned stats describe the whole logical session.

    ``engine`` selects the round engine (``"vectorized"`` | ``"scalar"``,
    ``None`` = the ``REPRO_PROTOCOL_ENGINE`` environment default).  Both
    engines put byte-identical traffic on the wire and record
    bit-identical round checkpoints, so a checkpoint written by one
    engine resumes cleanly under the other.

    This is the sequential driver over :class:`MultiroundSession`; the
    pipelined collection scheduler drives the same state machine with
    the rounds of many files interleaved.
    """
    if channel is None:
        channel = SimulatedChannel()
    session = MultiroundSession(
        old_data, new_data, config, checkpointer=checkpointer, engine=engine
    )
    session.start(channel, resume_from=resume_from)
    while not session.done:
        session.step_round(channel)
    return session.finish(channel)
