"""Multiround rsync (Langford [25]) — the closest prior work.

The recursive-splitting idea predates the paper: Langford's unpublished
"Multiround rsync" (and the theoretical variants in [10, 34]) already
halves unmatched blocks across rounds.  What it *lacks* are the paper's
refinements — optimized group-testing verification, continuation hashes,
decomposable hash functions, and the two-phase map/delta split.
Implementing it makes the paper's contribution measurable: the gap
between ``multiround_rsync_sync`` and ``repro.core.synchronize`` *is*
the paper.

Direction note: like rsync (and unlike the paper's protocol), the client
hashes *its own* file and the server does the matching, replying at the
end with a stream of block references and literals.
"""

from repro.multiround.protocol import (
    MultiroundConfig,
    MultiroundResult,
    MultiroundSession,
    multiround_rsync_sync,
)

__all__ = [
    "MultiroundConfig",
    "MultiroundResult",
    "MultiroundSession",
    "multiround_rsync_sync",
]
