"""Process-local LRU cache of hash indexes and prefix-sum buffers.

Every :class:`~repro.core.client.ClientSession` (and server session) used
to rebuild its numpy window-hash indexes and prefix sums from scratch,
even when synchronizing the same bytes again — the common case for
version-chained syncs and benchmark repetitions over a large replicated
collection.  This cache keys the expensive arrays by *content*, so any
session observing the same data under the same hash function reuses them:

* prefix-sum buffers are keyed by ``(file_fingerprint, hash_table_id)``;
* :class:`~repro.hashing.scan.HashIndex` arrays additionally carry the
  window ``block_length``.

``hash_table_id`` is the (seed, substitution-table) identity of the
:class:`~repro.hashing.decomposable.DecomposableAdler` in use, so the
retry-with-a-fresh-seed path can never alias entries.  Because keys are
content fingerprints, a hit is always byte-identical to a rebuild — the
cache changes wall-clock, never wire traffic.

The cache is process-local: each worker of the parallel
:class:`~repro.parallel.executor.SyncExecutor` owns one (seeded by fork
from the parent's), and hit/miss counters are folded back into the
parent's accounting alongside the transfer statistics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import (
    HashIndex,
    PrefixSums,
    prefix_sums,
    window_hashes_from_sums,
)
from repro.hashing.strong import file_fingerprint

#: Default number of cached entries (prefix-sum pairs + hash indexes).
DEFAULT_MAX_ENTRIES = 256


@dataclass
class CacheStats:
    """Hit/miss accounting, mirroring ``TransferStats``-style breakdowns."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> dict[str, int]:
        """Counter view for reports, in stable key order."""
        return {
            "evictions": self.evictions,
            "hits": self.hits,
            "misses": self.misses,
        }


class HashIndexCache:
    """LRU cache of :class:`PrefixSums` buffers and :class:`HashIndex` arrays.

    Thread-safe; entries are immutable-by-convention numpy arrays so they
    can be shared freely between sessions.  A ``HashIndex`` miss first
    consults the prefix-sum entry for the same data, so indexing a file at
    several window lengths pays the byte-substitution cumsum only once.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def _table_id(hasher: DecomposableAdler) -> tuple:
        # The table tuple itself participates in the key: exact identity,
        # no digest collisions, and the same tuple object is shared by all
        # entries for one hasher.
        return (hasher.seed, hasher.table)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _get_or_build(self, key: tuple, build) -> object:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
        # Build outside the lock: misses on distinct keys proceed in
        # parallel, and a racing duplicate build is merely redundant work.
        entry = build()
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def prefix_sums(
        self,
        data: bytes,
        hasher: DecomposableAdler,
        fingerprint: bytes | None = None,
    ) -> PrefixSums:
        """Shared prefix-sum pair for ``data``, building it on first use."""
        if fingerprint is None:
            fingerprint = file_fingerprint(data)
        key = ("sums", fingerprint, self._table_id(hasher))
        return self._get_or_build(key, lambda: prefix_sums(data, hasher))

    def hash_index(
        self,
        data: bytes,
        length: int,
        hasher: DecomposableAdler,
        fingerprint: bytes | None = None,
    ) -> HashIndex:
        """Shared :class:`HashIndex` of ``data`` at window ``length``."""
        if fingerprint is None:
            fingerprint = file_fingerprint(data)
        key = ("index", fingerprint, length, self._table_id(hasher))

        def build() -> HashIndex:
            sums = self.prefix_sums(data, hasher, fingerprint)
            full = window_hashes_from_sums(sums, length)
            return HashIndex(data, length, hasher, full=full)

        return self._get_or_build(key, build)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def ensure_capacity(self, min_entries: int) -> None:
        """Grow ``max_entries`` to at least ``min_entries`` (never shrink).

        The parallel executor pre-sizes each worker's cache for the batch
        it is about to process, so a large collection cannot evict-thrash
        its own entries mid-run.
        """
        with self._lock:
            if min_entries > self.max_entries:
                self.max_entries = min_entries

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


_default_cache = HashIndexCache()


def default_cache() -> HashIndexCache:
    """The process-wide cache shared by all sessions by default."""
    return _default_cache


def reset_default_cache(max_entries: int | None = None) -> HashIndexCache:
    """Replace the process-wide cache (tests, memory-pressure tuning)."""
    global _default_cache
    _default_cache = HashIndexCache(
        max_entries if max_entries is not None else DEFAULT_MAX_ENTRIES
    )
    return _default_cache
