"""Process-local LRU caches of hash indexes, prefix sums, and seed indexes.

Every :class:`~repro.core.client.ClientSession` (and server session) used
to rebuild its numpy window-hash indexes and prefix sums from scratch,
even when synchronizing the same bytes again — the common case for
version-chained syncs and benchmark repetitions over a large replicated
collection.  These caches key the expensive arrays by *content*, so any
session observing the same data under the same hash function reuses them:

* prefix-sum buffers are keyed by ``(file_fingerprint, hash_table_id)``;
* :class:`~repro.hashing.scan.HashIndex` arrays additionally carry the
  window ``block_length``;
* delta :class:`~repro.delta.matcher.ReferenceMatcher` seed indexes (the
  argsort over all reference window hashes) are keyed by
  ``(file_fingerprint, seed_length)`` in a separate
  :class:`ReferenceIndexCache`, so multi-round syncs and repeated
  references skip the index rebuild entirely.

``hash_table_id`` is the (seed, substitution-table) identity of the
:class:`~repro.hashing.decomposable.DecomposableAdler` in use, so the
retry-with-a-fresh-seed path can never alias entries.  Because keys are
content fingerprints, a hit is always byte-identical to a rebuild — the
caches change wall-clock, never wire traffic.

Both caches are process-local: each worker of the parallel
:class:`~repro.parallel.executor.SyncExecutor` owns one pair (seeded by
fork from the parent's), and hit/miss counters are folded back into the
parent's accounting alongside the transfer statistics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import (
    HashIndex,
    PrefixSums,
    prefix_sums,
    window_hashes_from_sums,
)
from repro.hashing.strong import file_fingerprint

#: Default number of cached entries (prefix-sum pairs + hash indexes).
DEFAULT_MAX_ENTRIES = 256

#: Default entry count for the reference-index cache.  Each entry holds
#: the reference bytes plus ~12 bytes of index per position, so the
#: budget is deliberately tighter than the hash-index cache's.
DEFAULT_REFERENCE_ENTRIES = 128


@dataclass
class CacheStats:
    """Hit/miss accounting, mirroring ``TransferStats``-style breakdowns."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    evicted_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> dict[str, int]:
        """Counter view for reports, in stable key order."""
        return {
            "evicted_bytes": self.evicted_bytes,
            "evictions": self.evictions,
            "hits": self.hits,
            "misses": self.misses,
        }


class ContentKeyedCache:
    """Thread-safe LRU core shared by the content-keyed caches.

    Entries are immutable-by-convention numpy-backed objects, so they
    can be shared freely between sessions.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.current_bytes = 0
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._sizes: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # Entry sizing (for the optional byte budget)
    # ------------------------------------------------------------------
    @staticmethod
    def _entry_bytes(entry: object) -> int:
        """Best-effort resident size of one entry.

        numpy-backed objects advertise ``nbytes``; raw payloads are
        bytes-like; containers sum their parts.  Anything opaque counts
        as zero — the entry-count limit still bounds those.
        """
        nbytes = getattr(entry, "nbytes", None)
        if isinstance(nbytes, int):
            return nbytes
        if isinstance(entry, (bytes, bytearray, memoryview)):
            return len(entry)
        if isinstance(entry, (tuple, list)):
            return sum(ContentKeyedCache._entry_bytes(item) for item in entry)
        return 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _get_or_build(self, key: tuple, build) -> object:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
        # Build outside the lock: misses on distinct keys proceed in
        # parallel, and a racing duplicate build is merely redundant work.
        entry = build()
        size = self._entry_bytes(entry)
        with self._lock:
            if key not in self._entries:
                self.current_bytes += size
                self._sizes[key] = size
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._evict_over_budget()
        return entry

    def _evict_over_budget(self) -> None:
        """Drop LRU entries past either budget (caller holds the lock).

        The just-inserted (MRU) entry is never evicted: an oversized
        single entry would otherwise thrash forever without a hit.
        """
        while len(self._entries) > 1 and (
            len(self._entries) > self.max_entries
            or (
                self.max_bytes is not None
                and self.current_bytes > self.max_bytes
            )
        ):
            key, _entry = self._entries.popitem(last=False)
            size = self._sizes.pop(key, 0)
            self.current_bytes -= size
            self.stats.evictions += 1
            self.stats.evicted_bytes += size

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def ensure_capacity(self, min_entries: int) -> None:
        """Grow ``max_entries`` to at least ``min_entries`` (never shrink).

        The parallel executor pre-sizes each worker's cache for the batch
        it is about to process, so a large collection cannot evict-thrash
        its own entries mid-run.
        """
        with self._lock:
            if min_entries > self.max_entries:
                self.max_entries = min_entries

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self.current_bytes = 0

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


class HashIndexCache(ContentKeyedCache):
    """LRU cache of :class:`PrefixSums` buffers and :class:`HashIndex` arrays.

    A ``HashIndex`` miss first consults the prefix-sum entry for the same
    data, so indexing a file at several window lengths pays the
    byte-substitution cumsum only once.
    """

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def _table_id(hasher: DecomposableAdler) -> tuple:
        # The table tuple itself participates in the key: exact identity,
        # no digest collisions, and the same tuple object is shared by all
        # entries for one hasher.
        return (hasher.seed, hasher.table)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def prefix_sums(
        self,
        data: bytes,
        hasher: DecomposableAdler,
        fingerprint: bytes | None = None,
    ) -> PrefixSums:
        """Shared prefix-sum pair for ``data``, building it on first use."""
        if fingerprint is None:
            fingerprint = file_fingerprint(data)
        key = ("sums", fingerprint, self._table_id(hasher))
        return self._get_or_build(key, lambda: prefix_sums(data, hasher))

    def hash_index(
        self,
        data: bytes,
        length: int,
        hasher: DecomposableAdler,
        fingerprint: bytes | None = None,
    ) -> HashIndex:
        """Shared :class:`HashIndex` of ``data`` at window ``length``."""
        if fingerprint is None:
            fingerprint = file_fingerprint(data)
        key = ("index", fingerprint, length, self._table_id(hasher))

        def build() -> HashIndex:
            sums = self.prefix_sums(data, hasher, fingerprint)
            full = window_hashes_from_sums(sums, length)
            return HashIndex(data, length, hasher, full=full)

        return self._get_or_build(key, build)


class ReferenceIndexCache(ContentKeyedCache):
    """LRU cache of delta :class:`~repro.delta.matcher.ReferenceMatcher`
    seed indexes, keyed by ``(content fingerprint, seed_length)``.

    The delta coders consult it through
    :func:`~repro.delta.matcher.compute_instructions`, so syncing several
    targets against one reference — version chains, supervisor retries,
    zdelta *and* vcdiff encodes of the same pair — builds the argsort
    index once.  The seed hasher is the module-fixed ``_SEED_HASHER`` of
    :mod:`repro.delta.matcher`, so no hash-table id is needed in the key.
    """

    def __init__(self, max_entries: int = DEFAULT_REFERENCE_ENTRIES) -> None:
        super().__init__(max_entries)

    def matcher(
        self,
        reference: bytes,
        seed_length: int,
        fingerprint: bytes | None = None,
    ):
        """Shared matcher for ``reference`` at ``seed_length``."""
        from repro.delta.matcher import ReferenceMatcher

        if fingerprint is None:
            fingerprint = file_fingerprint(reference)
        key = ("refidx", fingerprint, seed_length)

        def build() -> ReferenceMatcher:
            # Cached entries must own their bytes: a memoryview (e.g. a
            # zero-copy arena window) would pin the backing segment past
            # its lifetime and break the arena's leak-free teardown.
            data = (
                reference
                if isinstance(reference, bytes)
                else bytes(reference)
            )
            return ReferenceMatcher(data, seed_length, fingerprint=fingerprint)

        return self._get_or_build(key, build)


_default_cache = HashIndexCache()
_default_reference_cache = ReferenceIndexCache()


def default_cache() -> HashIndexCache:
    """The process-wide cache shared by all sessions by default."""
    return _default_cache


def reset_default_cache(max_entries: int | None = None) -> HashIndexCache:
    """Replace the process-wide cache (tests, memory-pressure tuning)."""
    global _default_cache
    _default_cache = HashIndexCache(
        max_entries if max_entries is not None else DEFAULT_MAX_ENTRIES
    )
    return _default_cache


def default_reference_cache() -> ReferenceIndexCache:
    """The process-wide reference-index cache used by the delta coders."""
    return _default_reference_cache


def reset_default_reference_cache(
    max_entries: int | None = None,
) -> ReferenceIndexCache:
    """Replace the process-wide reference-index cache (tests, tuning)."""
    global _default_reference_cache
    _default_reference_cache = ReferenceIndexCache(
        max_entries if max_entries is not None else DEFAULT_REFERENCE_ENTRIES
    )
    return _default_reference_cache
