"""Parallel fan-out of per-file synchronizations over a process pool.

The paper's deployment scenario is a *collection*: thousands of files
synchronized in one pass.  Each per-file run is CPU-bound (numpy hash
scans, delta coding) and completely independent once change detection has
split the manifest, so the collection phase parallelises embarrassingly.

:class:`SyncExecutor` fans ``method.sync_file(old, new)`` calls out over a
``concurrent.futures.ProcessPoolExecutor``:

* **Deterministic results** — outcomes are reassembled in submission
  order, so a parallel collection report is byte-identical to the serial
  one regardless of worker completion order or dispatch substrate.
* **Zero-copy dispatch** — by default payload bytes travel through a
  :class:`~repro.parallel.arena.CollectionArena` shared-memory segment:
  task pickles shrink to ``(name, old_span, new_span)`` triples and
  workers read payloads as zero-copy ``memoryview`` windows.  Where
  shared memory is unavailable the executor transparently ships full
  payloads through the classic pickle path instead (identical results).
* **Size-aware scheduling** — chunks are submitted in descending
  payload-byte order (longest-processing-time heuristic), so a cluster
  of large files at the end of the manifest cannot become the straggler
  that idles every other worker.
* **Warm workers** — a pool initializer attaches the arena once per
  worker and pre-sizes the hash-index cache for the batch, instead of
  re-attaching and re-growing per chunk.
* **Chunked dispatch** — many small files are shipped per task to
  amortise queue overhead; chunk size defaults to
  ``ceil(len(tasks) / (workers * 4))`` for load balance.
* **Serial fallback** — ``workers=1``, a single task, an unpicklable
  method, or a pool that cannot be created (restricted environments) all
  degrade to the plain in-process loop with identical results.
* **Crash isolation** — a chunk whose worker dies (or whose future
  raises) is retried serially in the parent process instead of aborting
  the whole run; ``BatchResult.chunk_retries`` counts how often.  The
  retry always uses the parent's own payload bytes, so a torn arena can
  never corrupt results.
* **Error capture** — with ``capture_errors=True`` a per-file
  :class:`~repro.exceptions.ReproError` becomes a ``FileResult`` with
  ``error`` set rather than an exception, so one poisoned file cannot
  take down a collection update (per-file error isolation).

Workers report per-file wall-clock and CPU time plus their hash-index
cache hit/miss deltas, so speedups show up in benchmark rows rather than
anecdotes.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import weakref
from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.syncmethod import MethodOutcome, SyncMethod


@dataclass(frozen=True)
class FileTask:
    """One per-file synchronization job."""

    name: str
    old: bytes
    new: bytes

    @property
    def total_bytes(self) -> int:
        return len(self.old) + len(self.new)


@dataclass
class FileResult:
    """Outcome plus compute cost of one per-file synchronization.

    ``error`` is ``None`` on success; under ``capture_errors`` it holds
    ``"ExceptionType: message"`` for a file whose sync failed, and the
    outcome is an empty placeholder with ``correct=False``.
    """

    name: str
    outcome: MethodOutcome
    elapsed_seconds: float
    cpu_seconds: float
    error: str | None = None


@dataclass
class BatchResult:
    """All per-file results of one executor run, in submission order."""

    files: list[FileResult] = field(default_factory=list)
    workers_used: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    ref_cache_hits: int = 0
    ref_cache_misses: int = 0
    delta_memo_hits: int = 0
    delta_memo_misses: int = 0
    chunk_retries: int = 0
    arena_used: bool = False
    arena_bytes: int = 0

    @property
    def cpu_seconds(self) -> float:
        return sum(result.cpu_seconds for result in self.files)


def _sync_one(
    method: SyncMethod, task: FileTask, capture_errors: bool
) -> FileResult:
    started = time.perf_counter()
    cpu_started = time.process_time()
    try:
        # Route the entry's name through so wrappers with durable
        # per-file state (checkpoint journals) can key it; plain methods
        # ignore it via the SyncMethod default.
        outcome = method.sync_named_file(task.name, task.old, task.new)
        error = None
    except ReproError as exc:
        if not capture_errors:
            raise
        # Typed failures from the resilience layer carry the doomed
        # attempts' accounting (retransmission, backoff, salvaged rounds)
        # — surface it instead of an empty placeholder so collection
        # counters still see what the failure cost.
        partial = getattr(exc, "partial", None)
        outcome = (
            partial
            if partial is not None
            else MethodOutcome(total_bytes=0, correct=False)
        )
        error = f"{type(exc).__name__}: {exc}"
    return FileResult(
        task.name,
        outcome,
        time.perf_counter() - started,
        time.process_time() - cpu_started,
        error=error,
    )


#: Worker-process arena mapping, installed once by :func:`_worker_init`.
_worker_arena = None


def _worker_init(
    arena_name: str | None,
    cache_entries: int | None,
    memo_enabled: bool | None = None,
) -> None:
    """Pool initializer: attach the arena once, pre-size the caches.

    Runs once per worker process instead of once per chunk, so the warm
    state (arena mapping, hash-index and reference-index cache capacity,
    delta-memo switch) persists across every chunk the worker handles.
    ``memo_enabled`` re-asserts the parent's resolved delta-memo switch
    so spawn-based pools match fork-based ones.
    """
    global _worker_arena
    if arena_name is not None:
        from repro.parallel.arena import CollectionArena

        _worker_arena = CollectionArena.attach(arena_name)
    if cache_entries is not None:
        from repro.parallel.cache import default_cache, default_reference_cache

        default_cache().ensure_capacity(cache_entries)
        default_reference_cache().ensure_capacity(cache_entries)
        from repro.reuse.memo import default_delta_memo

        default_delta_memo().ensure_capacity(cache_entries)
    if memo_enabled is not None:
        from repro.reuse.memo import set_delta_memo_enabled

        set_delta_memo_enabled(memo_enabled)


def _run_chunk(
    method: SyncMethod,
    chunk: list[tuple[int, FileTask]],
    capture_errors: bool = False,
) -> tuple[list[tuple[int, FileResult]], int, int, int, int, int, int]:
    """Worker entry point: run one chunk, report cache counter deltas."""
    from repro.parallel.cache import default_cache, default_reference_cache
    from repro.reuse.memo import default_delta_memo

    stats = default_cache().stats
    ref_stats = default_reference_cache().stats
    memo_stats = default_delta_memo().stats
    hits_before, misses_before = stats.hits, stats.misses
    ref_hits_before, ref_misses_before = ref_stats.hits, ref_stats.misses
    memo_hits_before, memo_misses_before = memo_stats.hits, memo_stats.misses
    rows: list[tuple[int, FileResult]] = []
    for index, task in chunk:
        rows.append((index, _sync_one(method, task, capture_errors)))
    return (
        rows,
        stats.hits - hits_before,
        stats.misses - misses_before,
        ref_stats.hits - ref_hits_before,
        ref_stats.misses - ref_misses_before,
        memo_stats.hits - memo_hits_before,
        memo_stats.misses - memo_misses_before,
    )


def _run_chunk_spans(
    method: SyncMethod,
    chunk,
    capture_errors: bool = False,
) -> tuple[list[tuple[int, FileResult]], int, int, int, int, int, int]:
    """Arena worker entry point: spans in, payloads read zero-copy.

    Each ``(index, SpanTask)`` is materialised as a :class:`FileTask`
    whose payloads are ``memoryview`` windows onto the worker's arena
    mapping — no payload bytes ever cross the pipe.
    """
    arena = _worker_arena
    if arena is None:  # initializer did not run: broken pool setup
        raise RuntimeError("arena worker started without an arena mapping")
    view_chunk = []
    for index, span_task in chunk:
        old, new = arena.task_views(span_task)
        view_chunk.append((index, FileTask(span_task.name, old, new)))
    return _run_chunk(method, view_chunk, capture_errors)


_pickle_probe_cache: "weakref.WeakKeyDictionary[SyncMethod, bool]" = (
    weakref.WeakKeyDictionary()
)


def _is_picklable(method: SyncMethod) -> bool:
    """Whether ``method`` can cross a process boundary.

    Honours an explicit :attr:`SyncMethod.supports_pickle` declaration,
    otherwise probes with ``pickle.dumps`` once per method *instance*
    (memoized) instead of on every ``run()`` call.
    """
    declared = getattr(method, "supports_pickle", None)
    if declared is not None:
        return bool(declared)
    try:
        return _pickle_probe_cache[method]
    except (KeyError, TypeError):
        pass
    try:
        pickle.dumps(method)
        result = True
    except Exception:
        result = False
    try:
        _pickle_probe_cache[method] = result
    except TypeError:  # unhashable/unweakrefable method: probe each time
        pass
    return result


def _lpt_order(chunks) -> list[int]:
    """Chunk submission order: descending payload bytes, stable.

    The longest-processing-time heuristic — big chunks enter the pool
    first so they overlap everything else instead of starting last and
    stretching the tail.  Reassembly is by task index, so the order
    never affects results.
    """
    sizes = [
        sum(task.total_bytes for _index, task in chunk) for chunk in chunks
    ]
    return sorted(range(len(chunks)), key=lambda c: (-sizes[c], c))


class SyncExecutor:
    """Runs per-file sync jobs serially or over a process pool.

    Parameters
    ----------
    workers:
        Process count.  ``None`` resolves to ``os.cpu_count()``; ``1``
        selects the serial in-process path.
    chunk_size:
        Files per pool task.  ``None`` picks
        ``ceil(len(tasks) / (workers * 4))`` so each worker sees a few
        chunks for load balance without per-file dispatch overhead.
    use_arena:
        Dispatch substrate for the parallel path.  ``None`` (default)
        uses the zero-copy shared-memory arena whenever the platform
        supports it; ``True`` insists on trying it; ``False`` always
        ships payloads through the pickle path.  Results are identical
        either way.
    """

    def __init__(
        self,
        workers: int | None = 1,
        chunk_size: int | None = None,
        use_arena: bool | None = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.use_arena = use_arena

    # ------------------------------------------------------------------
    def run(
        self,
        method: SyncMethod,
        tasks: list[FileTask],
        capture_errors: bool = False,
    ) -> BatchResult:
        """Synchronise every task; results come back in input order.

        With ``capture_errors`` a per-file :class:`ReproError` is
        reported in ``FileResult.error`` instead of raised, isolating
        failures to the file that caused them.
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1 or not _is_picklable(method):
            return self._run_serial(method, tasks, capture_errors)
        try:
            return self._run_parallel(method, tasks, capture_errors)
        except Exception:
            # Pool unavailable (sandboxed semaphores, fork limits):
            # the serial path recomputes deterministically.
            return self._run_serial(method, tasks, capture_errors)

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        method: SyncMethod,
        tasks: list[FileTask],
        capture_errors: bool = False,
    ) -> BatchResult:
        from repro.parallel.cache import default_cache, default_reference_cache
        from repro.reuse.memo import default_delta_memo

        stats = default_cache().stats
        ref_stats = default_reference_cache().stats
        memo_stats = default_delta_memo().stats
        hits_before, misses_before = stats.hits, stats.misses
        ref_hits_before, ref_misses_before = ref_stats.hits, ref_stats.misses
        memo_hits_before, memo_misses_before = (
            memo_stats.hits,
            memo_stats.misses,
        )
        result = BatchResult(workers_used=1)
        for task in tasks:
            result.files.append(_sync_one(method, task, capture_errors))
        result.cache_hits = stats.hits - hits_before
        result.cache_misses = stats.misses - misses_before
        result.ref_cache_hits = ref_stats.hits - ref_hits_before
        result.ref_cache_misses = ref_stats.misses - ref_misses_before
        result.delta_memo_hits = memo_stats.hits - memo_hits_before
        result.delta_memo_misses = memo_stats.misses - memo_misses_before
        return result

    def _acquire_arena(self, tasks: list[FileTask]):
        """The (arena, span_tasks) pair for this batch, or (None, None).

        Any shared-memory failure — probe, creation, packing — lands on
        the pickle path rather than surfacing to the caller.
        """
        from repro.parallel.arena import arena_available, arena_pool

        if self.use_arena is False:
            return None, None
        if self.use_arena is None and not arena_available():
            return None, None
        arena = None
        try:
            arena = arena_pool().acquire(
                sum(task.total_bytes for task in tasks)
            )
            return arena, arena.pack(tasks)
        except Exception:
            if arena is not None:
                arena_pool().release(arena)
            return None, None

    def _run_parallel(
        self,
        method: SyncMethod,
        tasks: list[FileTask],
        capture_errors: bool = False,
    ) -> BatchResult:
        from concurrent.futures import ProcessPoolExecutor

        indexed = list(enumerate(tasks))
        chunk_size = self.chunk_size or max(
            1, math.ceil(len(tasks) / (self.workers * 4))
        )
        chunks = [
            indexed[start : start + chunk_size]
            for start in range(0, len(indexed), chunk_size)
        ]
        workers_used = min(self.workers, len(chunks))
        # Workers see roughly every changed file; cap the cache so one
        # batch cannot evict-thrash its own entries mid-run.
        cache_entries = 4 * len(tasks)

        arena, span_tasks = self._acquire_arena(tasks)
        result = BatchResult(workers_used=workers_used)
        try:
            if arena is not None:
                entry, arena_name = _run_chunk_spans, arena.name
                payload_chunks = [
                    [(index, span_tasks[index]) for index, _task in chunk]
                    for chunk in chunks
                ]
                result.arena_used = True
                result.arena_bytes = arena.used_bytes
            else:
                entry, arena_name = _run_chunk, None
                payload_chunks = chunks

            gathered = []
            failed_chunks: list[list[tuple[int, FileTask]]] = []
            from repro.reuse.memo import delta_memo_enabled

            with ProcessPoolExecutor(
                max_workers=workers_used,
                initializer=_worker_init,
                initargs=(arena_name, cache_entries, delta_memo_enabled()),
            ) as pool:
                order = _lpt_order(chunks)
                futures = {
                    position: pool.submit(
                        entry, method, payload_chunks[position], capture_errors
                    )
                    for position in order
                }
                for position in order:
                    try:
                        gathered.append(futures[position].result())
                    except Exception:
                        # A crashed worker (or broken pool) loses its
                        # chunk — and, once the pool is broken, every
                        # chunk after it.  Those files are retried
                        # serially below (always from the parent's own
                        # payload bytes) instead of aborting the run.
                        failed_chunks.append(chunks[position])
        finally:
            if arena is not None:
                from repro.parallel.arena import arena_pool

                arena_pool().release(arena)

        for chunk in failed_chunks:
            gathered.append(_run_chunk(method, chunk, capture_errors))
            result.chunk_retries += 1

        rows: list[tuple[int, FileResult]] = []
        for (
            chunk_rows,
            hits,
            misses,
            ref_hits,
            ref_misses,
            memo_hits,
            memo_misses,
        ) in gathered:
            rows.extend(chunk_rows)
            result.cache_hits += hits
            result.cache_misses += misses
            result.ref_cache_hits += ref_hits
            result.ref_cache_misses += ref_misses
            result.delta_memo_hits += memo_hits
            result.delta_memo_misses += memo_misses
        rows.sort(key=lambda row: row[0])
        result.files = [file_result for _index, file_result in rows]
        return result
