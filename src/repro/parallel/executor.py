"""Parallel fan-out of per-file synchronizations over a process pool.

The paper's deployment scenario is a *collection*: thousands of files
synchronized in one pass.  Each per-file run is CPU-bound (numpy hash
scans, delta coding) and completely independent once change detection has
split the manifest, so the collection phase parallelises embarrassingly.

:class:`SyncExecutor` fans ``method.sync_file(old, new)`` calls out over a
``concurrent.futures.ProcessPoolExecutor``:

* **Deterministic results** — outcomes are reassembled in submission
  order, so a parallel collection report is byte-identical to the serial
  one regardless of worker completion order.
* **Chunked dispatch** — many small files are shipped per task to
  amortise pickling and queue overhead; chunk size defaults to
  ``ceil(len(tasks) / (workers * 4))`` for load balance.
* **Serial fallback** — ``workers=1``, a single task, an unpicklable
  method, or a pool that cannot be created (restricted environments) all
  degrade to the plain in-process loop with identical results.

Workers report per-file wall-clock and CPU time plus their hash-index
cache hit/miss deltas, so speedups show up in benchmark rows rather than
anecdotes.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from dataclasses import dataclass, field

from repro.syncmethod import MethodOutcome, SyncMethod


@dataclass(frozen=True)
class FileTask:
    """One per-file synchronization job."""

    name: str
    old: bytes
    new: bytes


@dataclass
class FileResult:
    """Outcome plus compute cost of one per-file synchronization."""

    name: str
    outcome: MethodOutcome
    elapsed_seconds: float
    cpu_seconds: float


@dataclass
class BatchResult:
    """All per-file results of one executor run, in submission order."""

    files: list[FileResult] = field(default_factory=list)
    workers_used: int = 1
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cpu_seconds(self) -> float:
        return sum(result.cpu_seconds for result in self.files)


def _sync_one(
    method: SyncMethod, task: FileTask
) -> tuple[MethodOutcome, float, float]:
    started = time.perf_counter()
    cpu_started = time.process_time()
    outcome = method.sync_file(task.old, task.new)
    return (
        outcome,
        time.perf_counter() - started,
        time.process_time() - cpu_started,
    )


def _run_chunk(
    method: SyncMethod, chunk: list[tuple[int, FileTask]]
) -> tuple[list[tuple[int, FileResult]], int, int]:
    """Worker entry point: run one chunk, report cache counter deltas."""
    from repro.parallel.cache import default_cache

    stats = default_cache().stats
    hits_before, misses_before = stats.hits, stats.misses
    rows: list[tuple[int, FileResult]] = []
    for index, task in chunk:
        outcome, elapsed, cpu = _sync_one(method, task)
        rows.append((index, FileResult(task.name, outcome, elapsed, cpu)))
    return rows, stats.hits - hits_before, stats.misses - misses_before


def _is_picklable(method: SyncMethod) -> bool:
    try:
        pickle.dumps(method)
    except Exception:
        return False
    return True


class SyncExecutor:
    """Runs per-file sync jobs serially or over a process pool.

    Parameters
    ----------
    workers:
        Process count.  ``None`` resolves to ``os.cpu_count()``; ``1``
        selects the serial in-process path.
    chunk_size:
        Files per pool task.  ``None`` picks
        ``ceil(len(tasks) / (workers * 4))`` so each worker sees a few
        chunks for load balance without per-file dispatch overhead.
    """

    def __init__(self, workers: int | None = 1, chunk_size: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    def run(self, method: SyncMethod, tasks: list[FileTask]) -> BatchResult:
        """Synchronise every task; results come back in input order."""
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1 or not _is_picklable(method):
            return self._run_serial(method, tasks)
        try:
            return self._run_parallel(method, tasks)
        except Exception:
            # Pool unavailable (sandboxed semaphores, fork limits) or died
            # mid-run: the serial path recomputes deterministically.
            return self._run_serial(method, tasks)

    # ------------------------------------------------------------------
    def _run_serial(self, method: SyncMethod, tasks: list[FileTask]) -> BatchResult:
        from repro.parallel.cache import default_cache

        stats = default_cache().stats
        hits_before, misses_before = stats.hits, stats.misses
        result = BatchResult(workers_used=1)
        for task in tasks:
            outcome, elapsed, cpu = _sync_one(method, task)
            result.files.append(FileResult(task.name, outcome, elapsed, cpu))
        result.cache_hits = stats.hits - hits_before
        result.cache_misses = stats.misses - misses_before
        return result

    def _run_parallel(self, method: SyncMethod, tasks: list[FileTask]) -> BatchResult:
        from concurrent.futures import ProcessPoolExecutor

        indexed = list(enumerate(tasks))
        chunk_size = self.chunk_size or max(
            1, math.ceil(len(tasks) / (self.workers * 4))
        )
        chunks = [
            indexed[start : start + chunk_size]
            for start in range(0, len(indexed), chunk_size)
        ]
        workers_used = min(self.workers, len(chunks))
        gathered = []
        with ProcessPoolExecutor(max_workers=workers_used) as pool:
            futures = [
                pool.submit(_run_chunk, method, chunk) for chunk in chunks
            ]
            for future in futures:
                gathered.append(future.result())

        rows: list[tuple[int, FileResult]] = []
        result = BatchResult(workers_used=workers_used)
        for chunk_rows, hits, misses in gathered:
            rows.extend(chunk_rows)
            result.cache_hits += hits
            result.cache_misses += misses
        rows.sort(key=lambda row: row[0])
        result.files = [file_result for _index, file_result in rows]
        return result
