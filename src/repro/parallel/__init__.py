"""Parallel execution engine and content-keyed hash caches.

Two pieces turn the per-file protocol into a collection-scale engine:

* :class:`~repro.parallel.executor.SyncExecutor` fans per-file
  synchronizations out over a process pool with deterministic result
  ordering and a serial fallback (``workers=1`` or no pool available).
* :class:`~repro.parallel.cache.HashIndexCache` keys the expensive numpy
  window-hash indexes and prefix-sum buffers by
  ``(file_fingerprint, block_length, hash_table_id)`` so repeated syncs
  of the same data — version chains, benchmark repetitions — skip the
  rebuild entirely.

See DESIGN.md §8 ("Scaling the collection phase").
"""

from repro.parallel.cache import (
    DEFAULT_MAX_ENTRIES,
    CacheStats,
    HashIndexCache,
    default_cache,
    reset_default_cache,
)
from repro.parallel.executor import (
    BatchResult,
    FileResult,
    FileTask,
    SyncExecutor,
)

__all__ = [
    "BatchResult",
    "CacheStats",
    "DEFAULT_MAX_ENTRIES",
    "FileResult",
    "FileTask",
    "HashIndexCache",
    "SyncExecutor",
    "default_cache",
    "reset_default_cache",
]
