"""Parallel execution engine, zero-copy arena, and content-keyed caches.

Three pieces turn the per-file protocol into a collection-scale engine:

* :class:`~repro.parallel.executor.SyncExecutor` fans per-file
  synchronizations out over a process pool with deterministic result
  ordering, size-aware (LPT) chunk scheduling, and a serial fallback
  (``workers=1`` or no pool available).
* :class:`~repro.parallel.arena.CollectionArena` packs every task's
  payload bytes into one shared-memory segment so workers read them as
  zero-copy memoryviews instead of receiving pickled copies; the
  process-wide :class:`~repro.parallel.arena.ArenaPool` recycles warm
  segments between batches.
* :class:`~repro.parallel.cache.HashIndexCache` keys the expensive numpy
  window-hash indexes and prefix-sum buffers by
  ``(file_fingerprint, block_length, hash_table_id)`` so repeated syncs
  of the same data — version chains, benchmark repetitions — skip the
  rebuild entirely.

See DESIGN.md §8 ("Scaling the collection phase") and §11 ("Zero-copy
execution substrate").
"""

from repro.parallel.arena import (
    ArenaError,
    ArenaPool,
    CollectionArena,
    Span,
    SpanTask,
    arena_available,
    arena_pool,
)
from repro.parallel.cache import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_REFERENCE_ENTRIES,
    CacheStats,
    ContentKeyedCache,
    HashIndexCache,
    ReferenceIndexCache,
    default_cache,
    default_reference_cache,
    reset_default_cache,
    reset_default_reference_cache,
)
from repro.parallel.executor import (
    BatchResult,
    FileResult,
    FileTask,
    SyncExecutor,
)

__all__ = [
    "ArenaError",
    "ArenaPool",
    "BatchResult",
    "CacheStats",
    "CollectionArena",
    "ContentKeyedCache",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_REFERENCE_ENTRIES",
    "FileResult",
    "FileTask",
    "HashIndexCache",
    "ReferenceIndexCache",
    "Span",
    "SpanTask",
    "SyncExecutor",
    "arena_available",
    "arena_pool",
    "default_cache",
    "default_reference_cache",
    "reset_default_cache",
    "reset_default_reference_cache",
]
