"""Zero-copy shared-memory arena for parallel task payloads.

The process-pool executor used to pickle every task's full ``old`` and
``new`` payloads through a pipe to each worker — for a collection update
that means every byte of the collection is serialized, copied into a
kernel buffer, copied back out, and deserialized before any hashing
starts.  The arena removes all of that: the parent packs every payload
into **one** ``multiprocessing.shared_memory`` segment with an offset
table, task pickles shrink to ``(name, old_span, new_span)`` triples, and
workers read payloads as zero-copy :class:`memoryview` windows straight
into ``np.frombuffer`` (every substrate layer accepts buffer objects).

Lifecycle rules (leak-freedom):

* Only the *parent* owns a segment.  Workers attach read-only and never
  unlink; a worker dying mid-chunk (even SIGKILL) merely drops its
  mapping — the kernel frees pages when the parent unlinks.
* Segments are recycled through :class:`ArenaPool`: releasing an arena
  keeps one warm segment mapped so steady-state collection batches skip
  the tmpfs first-touch page faults that dominate a cold pack.  The pool
  drains (closes + unlinks) at interpreter exit via ``atexit``, and every
  executor run releases its arena in a ``finally``.
* Created segments stay registered with the stdlib ``resource_tracker``,
  so even a SIGKILL of the *parent* cannot leak ``/dev/shm`` entries —
  the tracker process sweeps them.

When ``shared_memory`` is unavailable (sandboxed ``/dev/shm``, exotic
platforms) :func:`arena_available` reports ``False`` and the executor
falls back transparently to the pickle path with identical results.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass

from repro.exceptions import ReproError

#: Segment names look like ``repro-arena-<pid>-<seq>`` so tests (and
#: operators) can audit ``/dev/shm`` for leaks unambiguously.
SEGMENT_PREFIX = "repro-arena"

#: Smallest slab a pool segment is rounded up to; power-of-two growth
#: above this keeps recycled segments reusable across similarly-sized
#: collection batches.
MIN_SEGMENT_BYTES = 1 << 20


class ArenaError(ReproError):
    """Shared-memory arena could not be created, packed, or attached."""


@dataclass(frozen=True)
class Span:
    """One contiguous payload window inside the arena segment."""

    start: int
    stop: int

    @property
    def length(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class SpanTask:
    """A :class:`~repro.parallel.executor.FileTask` reduced to offsets.

    This is what actually crosses the process boundary on the arena
    path: a name and two spans, a few dozen bytes regardless of file
    size.
    """

    name: str
    old: Span
    new: Span

    @property
    def total_bytes(self) -> int:
        return self.old.length + self.new.length


def _round_capacity(nbytes: int) -> int:
    """Slab size for a requested payload: power-of-two, >= 1 MiB."""
    wanted = max(int(nbytes), MIN_SEGMENT_BYTES)
    return 1 << (wanted - 1).bit_length()


class CollectionArena:
    """One shared-memory segment holding a packed batch of payloads.

    Parent side: :meth:`create` + :meth:`pack`; worker side:
    :meth:`attach` + :meth:`view`.  ``close`` drops this process's
    mapping, ``unlink`` (owner only) removes the segment.
    """

    def __init__(self, shm, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._cursor = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, capacity: int) -> "CollectionArena":
        """Create a new owned segment of at least ``capacity`` bytes."""
        from multiprocessing import shared_memory

        size = _round_capacity(capacity)
        last_error: Exception | None = None
        for attempt in range(16):
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{_next_serial()}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
                return cls(shm, owner=True)
            except FileExistsError as error:  # stale name from a dead pid
                last_error = error
            except OSError as error:
                raise ArenaError(f"cannot create shared memory: {error}")
        raise ArenaError(f"cannot allocate a segment name: {last_error}")

    @classmethod
    def attach(cls, name: str) -> "CollectionArena":
        """Attach to an existing segment (worker side, never unlinks)."""
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name)
        except (OSError, ValueError) as error:
            raise ArenaError(f"cannot attach arena {name!r}: {error}")
        return cls(shm, owner=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._shm.size

    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def used_bytes(self) -> int:
        return self._cursor

    # ------------------------------------------------------------------
    # Packing (parent) and reading (workers)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind the pack cursor (segment reuse between batches)."""
        self._cursor = 0

    def _append(self, payload) -> Span:
        start = self._cursor
        stop = start + len(payload)
        if stop > self.capacity:
            raise ArenaError(
                f"arena overflow: need {stop} bytes, capacity {self.capacity}"
            )
        self._shm.buf[start:stop] = payload
        self._cursor = stop
        return Span(start, stop)

    def pack(self, tasks) -> list[SpanTask]:
        """Copy every task's payloads in; return the offset-table tasks.

        One sequential memcpy per payload — the only time the bytes are
        copied on the arena path.
        """
        self.reset()
        return [
            SpanTask(task.name, self._append(task.old), self._append(task.new))
            for task in tasks
        ]

    def view(self, span: Span) -> memoryview:
        """Zero-copy window onto a packed payload.

        The view pins the segment's buffer: release it (or let it die)
        before closing the arena, or the mapping lingers until GC.
        """
        return self._shm.buf[span.start : span.stop]

    def task_views(self, task: SpanTask) -> tuple[memoryview, memoryview]:
        return self.view(task.old), self.view(task.new)

    def read(self, span: Span) -> bytes:
        """Copying read of a packed payload (no lingering buffer export)."""
        view = self.view(span)
        try:
            return bytes(view)
        finally:
            view.release()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Remove the segment (owner only; idempotent)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    def destroy(self) -> None:
        self.close()
        self.unlink()


_serial_lock = threading.Lock()
_serial = 0


def _next_serial() -> int:
    global _serial
    with _serial_lock:
        _serial += 1
        return _serial


class ArenaPool:
    """Recycles warm arena segments across executor runs.

    A freshly created segment pays a tmpfs first-touch page fault for
    every page it packs — on a multi-megabyte collection batch that cost
    rivals the pickling it replaces.  Retaining one warm segment between
    batches amortises it away: steady-state packs are pure memcpy.

    ``max_retained`` bounds how many idle segments stay mapped (default
    one — collection batches are sequential in practice).
    """

    def __init__(self, max_retained: int = 1) -> None:
        if max_retained < 0:
            raise ValueError(
                f"max_retained must be >= 0, got {max_retained}"
            )
        self.max_retained = max_retained
        self._lock = threading.Lock()
        self._idle: list[CollectionArena] = []
        self.created = 0
        self.reused = 0

    def acquire(self, capacity: int) -> CollectionArena:
        """A segment with at least ``capacity`` bytes, warm if possible."""
        with self._lock:
            for position, arena in enumerate(self._idle):
                if arena.capacity >= capacity:
                    del self._idle[position]
                    self.reused += 1
                    arena.reset()
                    return arena
        arena = CollectionArena.create(capacity)
        with self._lock:
            self.created += 1
        return arena

    def release(self, arena: CollectionArena) -> None:
        """Return a segment; retained warm or destroyed beyond the cap."""
        if not arena.owner:
            arena.close()
            return
        with self._lock:
            if len(self._idle) < self.max_retained:
                self._idle.append(arena)
                return
        arena.destroy()

    def drain(self) -> None:
        """Destroy every retained segment (tests, interpreter exit)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for arena in idle:
            arena.destroy()

    def __len__(self) -> int:
        return len(self._idle)


_default_pool = ArenaPool()
atexit.register(_default_pool.drain)


def arena_pool() -> ArenaPool:
    """The process-wide pool used by the parallel executor."""
    return _default_pool


_available: bool | None = None


def arena_available() -> bool:
    """Whether shared-memory arenas work here (probed once, cached).

    Sandboxed environments without a usable ``/dev/shm`` make segment
    creation fail; the executor then stays on the pickle path.
    """
    global _available
    if _available is None:
        try:
            probe = CollectionArena.create(1)
            probe.destroy()
            _available = True
        except Exception:
            _available = False
    return _available


def _reset_availability_probe() -> None:
    """Forget the cached probe (tests only)."""
    global _available
    _available = None
