"""The server endpoint: owns the current file ``F_new``."""

from __future__ import annotations

import numpy as np

from repro.core.blocks import Block, BlockTracker, HashAssignment, HashKind
from repro.core.config import ProtocolConfig
from repro.core.engine import resolve_engine
from repro.delta import vcdiff_encode, zdelta_encode
from repro.exceptions import ProtocolError
from repro.grouptesting.strategies import BatchMode, BatchSpec
from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import PrefixHasher, pack_to_widths
from repro.hashing.strong import StrongHasher, file_fingerprint
from repro.io.bitstream import BitWriter
from repro.parallel.cache import HashIndexCache, default_cache


class ServerSession:
    """Server-side protocol state for one file synchronization."""

    def __init__(
        self,
        data: bytes,
        config: ProtocolConfig,
        cache: HashIndexCache | None = None,
        engine: str | None = None,
    ) -> None:
        self.data = data
        self.config = config
        self.engine = resolve_engine(engine)
        self.hasher = DecomposableAdler(seed=config.hash_seed)
        self.strong = StrongHasher(salt=config.hash_seed.to_bytes(8, "big"))
        self._cache = cache if cache is not None else default_cache()
        self._fingerprint = file_fingerprint(data)
        self.prefix = PrefixHasher(
            data,
            self.hasher,
            sums=self._cache.prefix_sums(
                data, self.hasher, fingerprint=self._fingerprint
            ),
        )
        self.tracker = BlockTracker(len(data), config)
        self.global_bits: int | None = None

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def set_client_length(self, client_length: int) -> None:
        """Learn the client file length (fixes the global hash width)."""
        if client_length < 0:
            raise ProtocolError(f"bad client length {client_length}")
        self.global_bits = self.config.resolve_global_hash_bits(client_length)

    def fingerprint(self) -> bytes:
        """16-byte whole-file checksum, sent first."""
        return self._fingerprint

    # ------------------------------------------------------------------
    # Map construction
    # ------------------------------------------------------------------
    def block_bytes(self, block: Block) -> bytes:
        return self.data[block.start : block.end]

    def emit_hashes(self, plan: list[HashAssignment]) -> bytes:
        """Serialise one sub-phase's hash message."""
        if self.engine == "scalar":
            return self._emit_hashes_scalar(plan)
        return self._emit_hashes_vectorized(plan)

    def _emit_hashes_scalar(self, plan: list[HashAssignment]) -> bytes:
        """Parity oracle: one hash evaluation and write per block."""
        writer = BitWriter()
        for assignment in plan:
            if assignment.kind is HashKind.DERIVED:
                continue  # the client computes this one itself
            block = assignment.block
            packed = DecomposableAdler.pack(
                self.prefix.block_pair(block.start, block.length),
                assignment.width,
            )
            writer.write(packed, assignment.width)
        return writer.getvalue()

    def _emit_hashes_vectorized(self, plan: list[HashAssignment]) -> bytes:
        """Whole-plan map construction: batched hashing + bit packing."""
        wire = [
            assignment for assignment in plan
            if assignment.kind is not HashKind.DERIVED
        ]
        writer = BitWriter()
        if not wire:
            return writer.getvalue()
        count = len(wire)
        starts = np.fromiter(
            (a.block.start for a in wire), dtype=np.int64, count=count
        )
        lengths = np.fromiter(
            (a.block.length for a in wire), dtype=np.int64, count=count
        )
        widths = [a.width for a in wire]
        packed = pack_to_widths(
            self.prefix.block_pairs(starts, lengths),
            np.asarray(widths, dtype=np.int64),
        )
        cursor = 0
        while cursor < count:
            width = widths[cursor]
            stop = cursor + 1
            while stop < count and widths[stop] == width:
                stop += 1
            writer.write_many(packed[cursor:stop], width)
            cursor = stop
        return writer.getvalue()

    def verification_value(self, unit: list[Block], batch: BatchSpec) -> int:
        """The hash value the client *should* send for this unit."""
        if batch.mode is BatchMode.INDIVIDUAL:
            return self.strong.bits(self.block_bytes(unit[0]), batch.bits)
        return self.strong.group_bits(
            (self.block_bytes(block) for block in unit), batch.bits
        )

    def verification_values(
        self, units: list[list[Block]], batch: BatchSpec
    ) -> list[int]:
        """Batched :meth:`verification_value`: one value per unit."""
        bits = batch.bits
        if batch.mode is BatchMode.INDIVIDUAL:
            block_bytes = self.block_bytes
            strong_bits = self.strong.bits
            return [strong_bits(block_bytes(unit[0]), bits) for unit in units]
        group_bits = self.strong.group_bits
        return [
            group_bits((self.block_bytes(block) for block in unit), bits)
            for unit in units
        ]

    # ------------------------------------------------------------------
    # Delta phase
    # ------------------------------------------------------------------
    def reference(self) -> bytes:
        """Reference string: confirmed regions in target order."""
        regions = sorted(self.tracker.confirmed_regions)
        return b"".join(self.data[start : start + length] for start, length in regions)

    def emit_delta(self) -> bytes:
        """Encode ``F_new`` against the common reference."""
        reference = self.reference()
        if self.config.delta_coder == "vcdiff":
            return vcdiff_encode(reference, self.data)
        return zdelta_encode(reference, self.data)
