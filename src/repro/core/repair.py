"""Surgical repair rounds: localize and re-fetch divergent blocks.

When the whole-file fingerprint rejects a reconstruction, the divergence
is almost always a handful of blocks — one truncated hash that matched
the wrong content.  Retransmitting the entire file (the historical
fallback) pays O(file) to fix an O(block) problem.  This module instead
runs a group-digest descent in the spirit of the anti-entropy / recursive
shingling literature (Mitzenmacher & Morgan; Song & Trachtenberg):

1. both endpoints split the file into fixed ``leaf_size`` leaves and hash
   each with :func:`~repro.hashing.strong.strong_digest` under a *fresh*
   salt derived from the expected fingerprint — so whatever collision
   fooled the transfer cannot also fool the repair;
2. the client sends one :func:`~repro.hashing.strong.group_digest` per
   frontier segment (phase ``"repair"``); the server answers with a
   mismatch bitmap; mismatching segments split ``fanout``-ways and the
   descent recurses until every divergent *leaf* is isolated;
3. the server sends only the divergent leaves (compressed); the client
   splices them in and re-verifies the whole-file fingerprint.

Both endpoints derive the divergent leaf set from the same bitmaps, so
no block-request message is needed.  Everything rides the ordinary
channel accounting under the ``"repair"`` phase.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.hashing.strong import file_fingerprint, group_digest, strong_digest
from repro.io.bitstream import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction

PHASE_REPAIR = "repair"

#: Salt namespace for repair-round digests.  Mixing in the expected
#: fingerprint gives every repair session hashes independent of the ones
#: the colliding transfer used.
REPAIR_SALT_PREFIX = b"repro-repair/"

#: How many children a mismatching segment splits into per round.
DEFAULT_REPAIR_FANOUT = 2

#: Transmitted width of each segment group digest.  8 bytes keeps the
#: per-segment probe cheap while a false segment-match stays a ~2^-64
#: event — and the final whole-file fingerprint still backstops it.
REPAIR_DIGEST_BYTES = 8


@dataclass
class RepairResult:
    """Outcome of one repair exchange."""

    data: bytes
    rounds: int
    leaves_repaired: int
    bytes_fetched: int
    converged: bool


def repair_salt(expected_fingerprint: bytes) -> bytes:
    """The fresh per-session digest salt for a repair exchange."""
    return REPAIR_SALT_PREFIX + expected_fingerprint


def _leaf_digests(
    data: bytes, leaf_size: int, salt: bytes
) -> list[bytes]:
    return [
        strong_digest(data[start : start + leaf_size], nbytes=16, salt=salt)
        for start in range(0, len(data), leaf_size)
    ]


def _split(segment: tuple[int, int], fanout: int) -> list[tuple[int, int]]:
    """Split ``[a, b)`` into up to ``fanout`` near-equal child ranges."""
    a, b = segment
    count = b - a
    step = -(-count // fanout)  # ceil division
    return [(s, min(s + step, b)) for s in range(a, b, step)]


def repair_exchange(
    channel: SimulatedChannel,
    damaged: bytes,
    target: bytes,
    expected_fingerprint: bytes,
    leaf_size: int,
    fanout: int = DEFAULT_REPAIR_FANOUT,
    digest_bytes: int = REPAIR_DIGEST_BYTES,
) -> RepairResult:
    """Repair ``damaged`` toward ``target`` by descent over leaf digests.

    Requires ``len(damaged) == len(target)`` (a truncated-hash collision
    preserves lengths; anything else is not repairable this way — callers
    fall back to a full transfer).  Returns the repaired bytes plus the
    exchange accounting; ``converged`` is ``False`` when the descent could
    not localize the divergence (the caller must then fall back).
    """
    if len(damaged) != len(target):
        raise ValueError("repair requires equal-length damaged/target data")
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
    if fanout < 2:
        raise ValueError(f"fanout must be >= 2, got {fanout}")
    if not target:
        return RepairResult(damaged, 0, 0, 0, converged=False)

    salt = repair_salt(expected_fingerprint)
    client_leaves = _leaf_digests(damaged, leaf_size, salt)
    server_leaves = _leaf_digests(target, leaf_size, salt)
    leaf_count = len(server_leaves)

    segments = (
        _split((0, leaf_count), fanout) if leaf_count > 1 else [(0, 1)]
    )
    divergent: list[int] = []
    rounds = 0
    while segments:
        rounds += 1
        # Client: one truncated group digest per frontier segment.
        probe = b"".join(
            group_digest(client_leaves[a:b], nbytes=digest_bytes)
            for a, b in segments
        )
        channel.send(Direction.CLIENT_TO_SERVER, probe, PHASE_REPAIR)

        # Server: compare against its own digests, answer with a bitmap.
        received = channel.receive(Direction.CLIENT_TO_SERVER)
        bitmap = BitWriter()
        for position, (a, b) in enumerate(segments):
            claimed = received[
                position * digest_bytes : (position + 1) * digest_bytes
            ]
            bitmap.write_bit(
                group_digest(server_leaves[a:b], nbytes=digest_bytes)
                != claimed
            )
        channel.send(
            Direction.SERVER_TO_CLIENT, bitmap.getvalue(), PHASE_REPAIR,
            bits=bitmap.bit_length,
        )

        # Both sides advance identically from the bitmap.
        flags = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
        next_segments: list[tuple[int, int]] = []
        for a, b in segments:
            if not flags.read_bit():
                continue
            if b - a == 1:
                divergent.append(a)
            else:
                next_segments.extend(_split((a, b), fanout))
        segments = next_segments

    if not divergent:
        # Every segment digest agreed yet the fingerprint did not: the
        # divergence hides below the digest width.  Do not guess.
        return RepairResult(damaged, rounds, 0, 0, converged=False)

    # Server: ship only the divergent leaves, compressed, in index order.
    raw = b"".join(
        target[index * leaf_size : (index + 1) * leaf_size]
        for index in divergent
    )
    channel.send(
        Direction.SERVER_TO_CLIENT, zlib.compress(raw, 9), PHASE_REPAIR
    )

    # Client: splice and re-verify.
    fetched = zlib.decompress(channel.receive(Direction.SERVER_TO_CLIENT))
    patched = bytearray(damaged)
    cursor = 0
    for index in divergent:
        start = index * leaf_size
        end = min(start + leaf_size, len(target))
        patched[start:end] = fetched[cursor : cursor + (end - start)]
        cursor += end - start
    data = bytes(patched)
    converged = file_fingerprint(data) == expected_fingerprint
    return RepairResult(
        data=data,
        rounds=rounds,
        leaves_repaired=len(divergent),
        bytes_fetched=len(fetched),
        converged=converged,
    )
