"""Recursive block tree shared (and mirrored) by client and server.

Both endpoints construct the same initial partition of the server file
into top-level blocks and evolve it through identical state transitions
(driven only by information that crossed the wire: candidate bitmaps and
confirmation bitmaps).  Because the evolution is deterministic, the server
never has to transmit block identifiers — hashes are sent in canonical
(target-offset) order and the client knows exactly which block each one
belongs to.  This mirroring is what makes the tiny hash widths of the
paper possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.config import ProtocolConfig


class BlockStatus(Enum):
    ACTIVE = "active"  # candidate for hashing at the current level
    MATCHED = "matched"  # confirmed equal to some client region
    SPLIT = "split"  # unmatched; replaced by its two children
    EXHAUSTED = "exhausted"  # unmatched and too small to recurse further


class HashKind(Enum):
    """How a block's hash reaches the client in a sub-phase."""

    GLOBAL = "global"  # compared against every client position
    CONTINUATION = "continuation"  # compared at 1–2 expected positions
    LOCAL = "local"  # compared within a neighborhood of a match
    DERIVED = "derived"  # not transmitted; client decomposes it


@dataclass
class Block:
    """One node of the recursive splitting tree over the server file."""

    start: int
    length: int
    level: int
    parent: "Block | None" = None
    is_left: bool = True
    status: BlockStatus = BlockStatus.ACTIVE
    #: Width of a global/derived hash value the *client* holds for this
    #: block (0 if none); enables decomposable suppression for children.
    known_width: int = 0
    #: The packed hash value itself — populated on the client endpoint
    #: only (parsed from the wire or derived by decomposition).
    known_value: int = 0
    #: Continuation hash sent this round without finding a match.
    continuation_failed: bool = False
    children: "tuple[Block, Block] | None" = None

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def sibling(self) -> "Block | None":
        if self.parent is None or self.parent.children is None:
            return None
        left, right = self.parent.children
        return right if self is left else left

    def split(self) -> "tuple[Block, Block]":
        """Create the two children (left gets the extra byte if odd)."""
        left_length = (self.length + 1) // 2
        left = Block(
            start=self.start,
            length=left_length,
            level=self.level + 1,
            parent=self,
            is_left=True,
        )
        right = Block(
            start=self.start + left_length,
            length=self.length - left_length,
            level=self.level + 1,
            parent=self,
            is_left=False,
        )
        self.children = (left, right)
        self.status = BlockStatus.SPLIT
        return left, right


@dataclass(frozen=True)
class HashAssignment:
    """One planned hash in a sub-phase."""

    block: Block
    kind: HashKind
    width: int  # width of the hash *value* the client ends up holding

    @property
    def transmitted_bits(self) -> int:
        """Bits actually sent for this assignment (0 when derived)."""
        return 0 if self.kind is HashKind.DERIVED else self.width


class BlockTracker:
    """Deterministic per-endpoint mirror of the block tree.

    Only target-space facts live here (block geometry, match adjacency);
    the client keeps the source-position map separately.
    """

    def __init__(self, target_length: int, config: ProtocolConfig) -> None:
        self.config = config
        self.target_length = target_length
        self.level = 0
        start_size = config.resolve_start_block_size(target_length)
        self.current: list[Block] = []
        offset = 0
        while offset < target_length:
            length = min(start_size, target_length - offset)
            self.current.append(Block(start=offset, length=length, level=0))
            offset += length
        #: Target end offsets of confirmed matches (for left-adjacency).
        self.confirmed_ends: set[int] = set()
        #: Target start offsets of confirmed matches (for right-adjacency).
        self.confirmed_starts: set[int] = set()
        #: All confirmed (start, length) pairs, for local-hash anchoring
        #: and the server's reference construction.
        self.confirmed_regions: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # State transitions (identical on both endpoints)
    # ------------------------------------------------------------------
    def record_match(self, block: Block) -> None:
        """Mark a block as confirmed-matched."""
        block.status = BlockStatus.MATCHED
        self.confirmed_ends.add(block.end)
        self.confirmed_starts.add(block.start)
        self.confirmed_regions.append((block.start, block.length))

    def active_blocks(self) -> list[Block]:
        """Unmatched blocks of the current level in canonical order."""
        return [b for b in self.current if b.status is BlockStatus.ACTIVE]

    def has_active(self) -> bool:
        return any(b.status is BlockStatus.ACTIVE for b in self.current)

    def advance_level(self) -> bool:
        """Split what can recurse, retire what cannot; return True if more.

        A block recurses while its smaller child is still at least the
        floor block size (the continuation minimum when continuation
        hashes are enabled, else the global minimum).
        """
        floor = self.config.floor_block_size
        next_level: list[Block] = []
        for block in self.current:
            if block.status is not BlockStatus.ACTIVE:
                continue
            if block.length // 2 >= floor:
                next_level.extend(block.split())
            else:
                block.status = BlockStatus.EXHAUSTED
        self.current = next_level
        self.level += 1
        return bool(next_level)

    # ------------------------------------------------------------------
    # Adjacency / neighborhood queries
    # ------------------------------------------------------------------
    def left_adjacent_match(self, block: Block) -> bool:
        """A confirmed match ends exactly where ``block`` starts."""
        return block.start in self.confirmed_ends

    def right_adjacent_match(self, block: Block) -> bool:
        """A confirmed match starts exactly where ``block`` ends."""
        return block.end in self.confirmed_starts

    def continuation_eligible(self, block: Block) -> bool:
        return self.left_adjacent_match(block) or self.right_adjacent_match(block)

    def local_anchor(self, block: Block) -> tuple[int, int] | None:
        """Nearest confirmed region within the local-hash neighborhood.

        Returns the ``(start, length)`` of the anchoring match, preferring
        one that ends at or before the block (changes are local, so a
        preceding match is the best predictor).  ``None`` if nothing is
        close enough.
        """
        radius = self.config.local_neighborhood
        best: tuple[int, tuple[int, int]] | None = None
        for start, length in self.confirmed_regions:
            end = start + length
            if end <= block.start:
                distance = block.start - end
            elif start >= block.end:
                distance = start - block.end
            else:
                continue  # overlapping region cannot anchor (tree-disjoint)
            if distance <= radius and (best is None or distance < best[0]):
                best = (distance, (start, length))
        return best[1] if best else None
