"""Round-boundary snapshots of the core protocol's endpoint state.

At a round boundary — both trackers freshly advanced — the live state of
:func:`~repro.core.protocol.synchronize` is small and flat, because the
protocol's mirroring discipline already forces everything to be derivable
from a few facts:

* every *current* block is a just-split child, so the frontier is fully
  described by the parent geometry plus the parent's known (global) hash
  value, and :meth:`~repro.core.blocks.Block.split` deterministically
  rebuilds the children (including sibling links for derived hashes);
* the confirmed-match adjacency sets are projections of the ordered
  ``confirmed_regions`` list (order preserved — ``local_anchor`` breaks
  distance ties first-wins);
* the client's source-position dictionaries are projections of its
  :class:`~repro.core.filemap.FileMap` entries.

:func:`snapshot_round_state` serializes exactly those facts (varint
format, opaque to the journal layer); :func:`restore_round_state` rebuilds
two fresh sessions into the identical mid-protocol state, so a resumed
run continues with the same plans, the same hash widths and the same
delta reference as the interrupted one would have.
"""

from __future__ import annotations

from repro.core.blocks import Block, BlockTracker
from repro.core.client import ClientSession
from repro.core.server import ServerSession
from repro.exceptions import ProtocolError
from repro.io.varint import decode_uvarint, encode_uvarint


def _pack_bytes(out: bytearray, data: bytes) -> None:
    out += encode_uvarint(len(data))
    out += data


def _unpack_bytes(data: bytes, offset: int) -> tuple[bytes, int]:
    length, offset = decode_uvarint(data, offset)
    if offset + length > len(data):
        raise ProtocolError("truncated snapshot field")
    return data[offset : offset + length], offset + length


def _encode_tracker(out: bytearray, tracker: BlockTracker) -> None:
    out += encode_uvarint(tracker.level)
    current = tracker.current
    if len(current) % 2:
        raise ProtocolError("frontier is not made of sibling pairs")
    out += encode_uvarint(len(current) // 2)
    for index in range(0, len(current), 2):
        parent = current[index].parent
        if parent is None or parent is not current[index + 1].parent:
            raise ProtocolError("frontier is not made of sibling pairs")
        out += encode_uvarint(parent.start)
        out += encode_uvarint(parent.length)
        out += encode_uvarint(parent.known_width)
        out += encode_uvarint(parent.known_value)
    out += encode_uvarint(len(tracker.confirmed_regions))
    for start, length in tracker.confirmed_regions:
        out += encode_uvarint(start)
        out += encode_uvarint(length)


def _decode_tracker(
    tracker: BlockTracker, data: bytes, offset: int
) -> int:
    level, offset = decode_uvarint(data, offset)
    pair_count, offset = decode_uvarint(data, offset)
    current: list[Block] = []
    for _ in range(pair_count):
        start, offset = decode_uvarint(data, offset)
        length, offset = decode_uvarint(data, offset)
        known_width, offset = decode_uvarint(data, offset)
        known_value, offset = decode_uvarint(data, offset)
        parent = Block(start=start, length=length, level=level - 1)
        parent.known_width = known_width
        parent.known_value = known_value
        current.extend(parent.split())
    region_count, offset = decode_uvarint(data, offset)
    regions: list[tuple[int, int]] = []
    for _ in range(region_count):
        start, offset = decode_uvarint(data, offset)
        length, offset = decode_uvarint(data, offset)
        regions.append((start, length))
    tracker.level = level
    tracker.current = current
    tracker.confirmed_regions = regions
    tracker.confirmed_starts = {start for start, _length in regions}
    tracker.confirmed_ends = {start + length for start, length in regions}
    return offset


def snapshot_round_state(
    client: ClientSession,
    server: ServerSession,
    rounds: int,
    continuation_candidates: int,
    continuation_accepted: int,
) -> bytes:
    """Serialize both endpoints' state at a completed round boundary."""
    if client.server_fingerprint is None:
        raise ProtocolError("cannot snapshot before the handshake")
    out = bytearray()
    out += encode_uvarint(rounds)
    out += encode_uvarint(continuation_candidates)
    out += encode_uvarint(continuation_accepted)
    _pack_bytes(out, client.server_fingerprint)
    _encode_tracker(out, server.tracker)
    _encode_tracker(out, client._require_tracker())
    file_map = client._require_map()
    entries = file_map.entries()
    out += encode_uvarint(len(entries))
    for entry in entries:
        out += encode_uvarint(entry.start)
        out += encode_uvarint(entry.length)
        out += encode_uvarint(entry.source)
    return bytes(out)


def restore_round_state(
    payload: bytes, client: ClientSession, server: ServerSession
) -> tuple[int, int, int]:
    """Rebuild two *fresh* sessions into the snapshotted state.

    Returns ``(rounds, continuation_candidates, continuation_accepted)``
    so the protocol loop continues its counters where they stopped.
    """
    rounds, offset = decode_uvarint(payload, 0)
    continuation_candidates, offset = decode_uvarint(payload, offset)
    continuation_accepted, offset = decode_uvarint(payload, offset)
    fingerprint, offset = _unpack_bytes(payload, offset)

    # Replay the handshake's effects from local knowledge: the lengths
    # both sides exchanged are the lengths of the files they still hold.
    server.set_client_length(len(client.data))
    client.process_handshake(fingerprint, len(server.data))

    offset = _decode_tracker(server.tracker, payload, offset)
    offset = _decode_tracker(client._require_tracker(), payload, offset)

    file_map = client._require_map()
    entry_count, offset = decode_uvarint(payload, offset)
    for _ in range(entry_count):
        start, offset = decode_uvarint(payload, offset)
        length, offset = decode_uvarint(payload, offset)
        source, offset = decode_uvarint(payload, offset)
        file_map.add(start, length, source)
        client._source_after_end[start + length] = source + length
        client._source_at_start[start] = source
    return rounds, continuation_candidates, continuation_accepted
