"""Sub-phase hash planning — pure functions of mirrored state.

Both endpoints call these with their own (identically evolving)
:class:`~repro.core.blocks.BlockTracker`; the resulting plans are equal on
both sides, which is what lets hashes travel without block identifiers.
"""

from __future__ import annotations

from repro.core.blocks import (
    Block,
    BlockStatus,
    BlockTracker,
    HashAssignment,
    HashKind,
)
from repro.core.config import ProtocolConfig


def plan_continuation(tracker: BlockTracker) -> list[HashAssignment]:
    """Continuation hashes for this level's adjacency-eligible blocks."""
    config = tracker.config
    if not config.continuation_enabled:
        return []
    assert config.continuation_min_block_size is not None
    plan = []
    for block in tracker.active_blocks():
        if block.length < config.continuation_min_block_size:
            continue
        if tracker.continuation_eligible(block):
            plan.append(
                HashAssignment(
                    block, HashKind.CONTINUATION, config.continuation_hash_bits
                )
            )
    return plan


def _global_skip(block: Block, tracker: BlockTracker) -> bool:
    """The paper's omission rules for the global sub-phase.

    When rounds are split into continuation-then-global, a block needs no
    global hash if its sibling was just confirmed (the match would almost
    certainly have extended into this block and been found by the parent
    or by continuation) or if its own continuation hash just failed.
    """
    if not tracker.config.continuation_first:
        return False
    if block.continuation_failed:
        return True
    sibling = block.sibling
    return sibling is not None and sibling.status is BlockStatus.MATCHED


def plan_global(
    tracker: BlockTracker,
    global_bits: int,
    exclude: frozenset[int] = frozenset(),
) -> list[HashAssignment]:
    """Global (and optional local) hashes, with decomposable suppression.

    Blocks at or above the global minimum block size get a global hash;
    when local hashes are enabled, smaller blocks anchored near a
    confirmed match get a local hash instead of nothing.  The right
    sibling of a transmitted global pair whose parent hash the client
    already holds is marked DERIVED and costs no bits.  ``exclude`` holds
    ``id()``s of blocks already covered by another sub-phase.
    """
    config = tracker.config
    selected: list[HashAssignment] = []
    chosen_global: dict[int, Block] = {}  # id(block) -> block
    for block in tracker.active_blocks():
        if id(block) in exclude:
            continue
        if _global_skip(block, tracker):
            continue
        if block.length >= config.min_block_size:
            selected.append(HashAssignment(block, HashKind.GLOBAL, global_bits))
            chosen_global[id(block)] = block
        elif (
            config.use_local_hashes
            and block.length >= config.floor_block_size
            and tracker.local_anchor(block) is not None
        ):
            selected.append(
                HashAssignment(block, HashKind.LOCAL, config.local_hash_bits)
            )

    if not config.use_decomposable:
        return selected

    plan: list[HashAssignment] = []
    for assignment in selected:
        block = assignment.block
        if (
            assignment.kind is HashKind.GLOBAL
            and not block.is_left
            and block.parent is not None
            and block.parent.known_width >= global_bits
        ):
            sibling = block.sibling
            if sibling is not None and id(sibling) in chosen_global:
                plan.append(HashAssignment(block, HashKind.DERIVED, global_bits))
                continue
        plan.append(assignment)
    return plan


def plan_mixed(
    tracker: BlockTracker, global_bits: int
) -> list[HashAssignment]:
    """Single-phase rounds (``continuation_first=False``).

    Adjacency-eligible blocks get continuation hashes; the rest get global
    (or local) hashes.  Used to measure the benefit of phase splitting.
    """
    continuation = plan_continuation(tracker)
    covered = frozenset(id(a.block) for a in continuation)
    plan = continuation + plan_global(tracker, global_bits, exclude=covered)
    plan.sort(key=lambda a: a.block.start)
    return plan


def apply_known_hashes(plan: list[HashAssignment]) -> None:
    """Record which blocks' hash values the client now holds."""
    for assignment in plan:
        if assignment.kind in (HashKind.GLOBAL, HashKind.DERIVED):
            assignment.block.known_width = assignment.width
