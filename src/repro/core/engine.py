"""Protocol-engine selection: vectorized whole-round vs scalar oracle.

Both protocol stacks (:func:`repro.core.protocol.synchronize` and
:func:`repro.multiround.protocol.multiround_rsync_sync`) ship two round
engines that put byte-identical traffic on the wire:

* ``"vectorized"`` (default) processes every round as whole-block numpy
  arrays — one batched map construction, one batched candidate lookup,
  batched verification scheduling;
* ``"scalar"`` is the original block-at-a-time loop, kept as the parity
  oracle and the perf-baseline denominator (``engine="scalar"`` or
  ``REPRO_PROTOCOL_ENGINE=scalar``), exactly like the delta matcher's
  ``REPRO_DELTA_ENGINE`` (DESIGN §12).

The contract mirrors the delta engine's: an explicit ``engine=`` argument
is validated and raises ``ValueError`` on garbage, while a garbage
environment value silently falls back to ``"vectorized"`` (an env var
must never be able to break a run).
"""

from __future__ import annotations

import os

#: Valid values for every protocol-level ``engine`` argument.
ENGINES = ("vectorized", "scalar")

#: Environment override for the default engine (parity bisection, perf
#: comparisons): ``REPRO_PROTOCOL_ENGINE=scalar`` selects the oracle.
ENGINE_ENV = "REPRO_PROTOCOL_ENGINE"


def default_engine() -> str:
    """The engine used when a protocol entry point gets ``engine=None``."""
    engine = os.environ.get(ENGINE_ENV, "vectorized")
    return engine if engine in ENGINES else "vectorized"


def resolve_engine(engine: str | None) -> str:
    """Validate an explicit ``engine`` argument (``None`` = environment)."""
    if engine is None:
        return default_engine()
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine
