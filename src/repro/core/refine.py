"""Boundary refinement: searching-with-liars at the match edges.

Map construction stops at the floor block size, so every confirmed match
ends on a block boundary even though the true common region usually
extends a little further.  §5.4 models exactly this as Ulam's
searching-with-liars game: "does the match extend at least ``d`` bytes
into the gap?" is answered by a tiny continuation hash that can *lie*
(collide) with probability ``2**-bits`` when the answer is no.

This phase runs one binary search per gap edge, all gaps in parallel
(one query per search per roundtrip), then verifies each tentative
boundary with a stronger confirmation hash — overshoot from a lie is
caught there (and in the worst case by the whole-file checksum).  The
bytes it confirms are bytes the final delta no longer has to carry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.client import ClientSession
from repro.core.server import ServerSession
from repro.hashing.decomposable import DecomposableAdler
from repro.io.bitstream import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction

PHASE_MAP = "map"


@dataclass
class _Search:
    """One binary search along a gap edge.

    ``anchor`` is the gap edge offset in the server file; extension by
    ``d`` bytes claims target region ``[anchor, anchor + d)`` for LEFT
    searches (growing rightward from a match that *ends* at ``anchor``)
    and ``[anchor - d, anchor)`` for RIGHT searches (growing leftward
    from a match that *starts* at ``anchor``).
    """

    anchor: int
    limit: int
    is_left: bool
    #: Client-side only: the source position the extension would occupy.
    source: int | None = None
    low: int = 0
    high: int = 0
    done: bool = False

    def __post_init__(self) -> None:
        self.high = self.limit

    @property
    def active(self) -> bool:
        return not self.done and self.low < self.high

    def target_range(self, distance: int) -> tuple[int, int]:
        if self.is_left:
            return self.anchor, self.anchor + distance
        return self.anchor - distance, self.anchor


def _gap_searches(
    confirmed: list[tuple[int, int]], target_length: int
) -> list[_Search]:
    """Derive the per-gap searches from the confirmed-region set.

    Pure function of mirrored state: both endpoints produce the same
    list.  Each gap gets a LEFT search (if a match ends at its start) and
    a RIGHT search (if a match starts at its end); their limits split the
    gap so the two cannot claim the same byte.
    """
    regions = sorted(confirmed)
    # Gaps between confirmed regions (regions are disjoint in target
    # space by construction).
    gaps: list[tuple[int, int, bool, bool]] = []  # start, end, has_l, has_r
    cursor = 0
    for start, length in regions:
        if start > cursor:
            gaps.append((cursor, start, cursor > 0, True))
        cursor = start + length
    if cursor < target_length:
        gaps.append((cursor, target_length, cursor > 0, False))

    searches: list[_Search] = []
    for gap_start, gap_end, has_left, has_right in gaps:
        gap_length = gap_end - gap_start
        if has_left and has_right:
            left_limit = gap_length // 2
            right_limit = gap_length - left_limit
        elif has_left:
            left_limit, right_limit = gap_length, 0
        elif has_right:
            left_limit, right_limit = 0, gap_length
        else:
            continue
        if left_limit > 0:
            searches.append(
                _Search(anchor=gap_start, limit=left_limit, is_left=True)
            )
        if right_limit > 0:
            searches.append(
                _Search(anchor=gap_end, limit=right_limit, is_left=False)
            )
    return searches


def run_boundary_refinement(
    channel: SimulatedChannel,
    client: ClientSession,
    server: ServerSession,
) -> int:
    """Execute the refinement phase; returns the number of bytes gained.

    Both endpoints derive identical search lists from their mirrored
    confirmed regions; the client additionally resolves each search's
    candidate source position (or opts out via the participation bitmap
    when it has none).
    """
    config = client.config
    query_bits = config.refinement_hash_bits
    confirm_bits = config.refinement_confirm_bits

    server_searches = _gap_searches(
        server.tracker.confirmed_regions, len(server.data)
    )
    client_map = client._require_map()
    client_regions = [(e.start, e.length) for e in client_map.entries()]
    client_searches = _gap_searches(client_regions, client_map.target_length)
    if len(server_searches) != len(client_searches):
        from repro.exceptions import ProtocolError

        raise ProtocolError("refinement search lists diverged")
    if not server_searches:
        return 0

    # Client resolves source positions and announces participation.
    participation = BitWriter()
    for search in client_searches:
        if search.is_left:
            source = client._source_after_end.get(search.anchor)
        else:
            source = client._source_at_start.get(search.anchor)
        if source is None:
            search.done = True
        else:
            search.source = source
            if search.is_left:
                search.high = min(search.limit, len(client.data) - source)
            else:
                search.high = min(search.limit, source)
            if search.high <= 0:
                search.done = True
        participation.write_bit(not search.done)
    channel.send(
        Direction.CLIENT_TO_SERVER, participation.getvalue(), PHASE_MAP,
        bits=participation.bit_length,
    )
    reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
    for search in server_searches:
        if not reader.read_bit():
            search.done = True

    # The client's bound-clamping must be mirrored; the server cannot see
    # it, so the first reply round communicates implicitly through the
    # normal bitmaps: the client simply answers "no" beyond its clamp.
    # To keep both searches numerically identical we instead transmit the
    # clamped high (varint) for participating searches once.
    clamp = BitWriter()
    for search in client_searches:
        if not search.done:
            clamp.write_uvarint(search.high)
    channel.send(
        Direction.CLIENT_TO_SERVER, clamp.getvalue(), PHASE_MAP,
        bits=clamp.bit_length,
    )
    clamp_reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
    for search in server_searches:
        if not search.done:
            search.high = min(search.high, clamp_reader.read_uvarint())

    # --- Parallel binary search ----------------------------------------
    while any(s.active for s in server_searches):
        probes = BitWriter()
        for search in server_searches:
            if not search.active:
                continue
            mid = (search.low + search.high + 1) // 2
            lo_offset, hi_offset = search.target_range(mid)
            pair = server.prefix.block_pair(lo_offset, hi_offset - lo_offset)
            probes.write(DecomposableAdler.pack(pair, query_bits), query_bits)
        channel.send(
            Direction.SERVER_TO_CLIENT, probes.getvalue(), PHASE_MAP,
            bits=probes.bit_length,
        )

        probe_reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
        answers = BitWriter()
        for search in client_searches:
            if not search.active:
                continue
            mid = (search.low + search.high + 1) // 2
            value = probe_reader.read(query_bits)
            assert search.source is not None
            if search.is_left:
                position = search.source
            else:
                position = search.source - mid
            matched = (
                client.prefix.packed(position, mid, query_bits) == value
            )
            answers.write_bit(matched)
            if matched:
                search.low = mid
            else:
                search.high = mid - 1
        channel.send(
            Direction.CLIENT_TO_SERVER, answers.getvalue(), PHASE_MAP,
            bits=answers.bit_length,
        )
        answer_reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
        for search in server_searches:
            if not search.active:
                continue
            if answer_reader.read_bit():
                search.low = (search.low + search.high + 1) // 2
            else:
                search.high = (search.low + search.high + 1) // 2 - 1

    # --- Confirmation of tentative boundaries ---------------------------
    confirm = BitWriter()
    for search in server_searches:
        if search.done or search.low <= 0:
            continue
        lo_offset, hi_offset = search.target_range(search.low)
        confirm.write(
            server.strong.bits(
                server.data[lo_offset:hi_offset], confirm_bits
            ),
            confirm_bits,
        )
    channel.send(
        Direction.SERVER_TO_CLIENT, confirm.getvalue(), PHASE_MAP,
        bits=confirm.bit_length,
    )
    confirm_reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
    verdicts = BitWriter()
    gained = 0
    for search in client_searches:
        if search.done or search.low <= 0:
            continue
        assert search.source is not None
        expected = confirm_reader.read(confirm_bits)
        if search.is_left:
            position = search.source
        else:
            position = search.source - search.low
        window = client.data[position : position + search.low]
        accepted = client.strong.bits(window, confirm_bits) == expected
        verdicts.write_bit(accepted)
        if accepted:
            target_start, _target_end = search.target_range(search.low)
            client_map.add(target_start, search.low, position)
            client._source_after_end[target_start + search.low] = (
                position + search.low
            )
            client._source_at_start[target_start] = position
            gained += search.low
    channel.send(
        Direction.CLIENT_TO_SERVER, verdicts.getvalue(), PHASE_MAP,
        bits=verdicts.bit_length,
    )
    verdict_reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
    for search in server_searches:
        if search.done or search.low <= 0:
            continue
        if verdict_reader.read_bit():
            target_start, _target_end = search.target_range(search.low)
            server.tracker.confirmed_regions.append(
                (target_start, search.low)
            )
    return gained
