"""The client's map of the server file.

During map construction the client learns, region by region, that
``F_new[start : start + length]`` equals ``F_old[source : source + length]``.
The :class:`FileMap` collects these facts; the regions it does not cover
are the paper's "?" areas.  Both parties derive the same *reference
string* from the map — the server from ``F_new``, the client from
``F_old`` — which phase two uses as the delta-compression reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class MatchEntry:
    """One confirmed common region."""

    start: int  # offset in the server's file F_new
    length: int
    source: int  # offset in the client's file F_old

    @property
    def end(self) -> int:
        return self.start + self.length


class FileMap:
    """Confirmed common regions of a target (server) file.

    Entries are disjoint in target space (they come from a disjoint block
    partition); they may overlap arbitrarily in source space.
    """

    def __init__(self, target_length: int) -> None:
        if target_length < 0:
            raise ValueError("target_length must be non-negative")
        self._target_length = target_length
        self._entries: dict[int, MatchEntry] = {}

    @property
    def target_length(self) -> int:
        return self._target_length

    def add(self, start: int, length: int, source: int) -> None:
        """Record that target ``[start, start+length)`` = source region."""
        if length <= 0:
            raise ProtocolError(f"match length must be positive, got {length}")
        if start < 0 or start + length > self._target_length:
            raise ProtocolError(
                f"match [{start}, {start + length}) outside target of "
                f"length {self._target_length}"
            )
        if start in self._entries:
            raise ProtocolError(f"duplicate match at target offset {start}")
        self._entries[start] = MatchEntry(start, length, source)

    def entries(self) -> list[MatchEntry]:
        """Entries sorted by target offset."""
        return [self._entries[start] for start in sorted(self._entries)]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def known_bytes(self) -> int:
        return sum(entry.length for entry in self._entries.values())

    @property
    def known_fraction(self) -> float:
        if self._target_length == 0:
            return 1.0
        return self.known_bytes / self._target_length

    def unknown_intervals(self) -> list[tuple[int, int]]:
        """The "?" areas as ``(start, end)`` pairs, sorted."""
        gaps = []
        cursor = 0
        for entry in self.entries():
            if entry.start > cursor:
                gaps.append((cursor, entry.start))
            cursor = entry.end
        if cursor < self._target_length:
            gaps.append((cursor, self._target_length))
        return gaps

    def validate_disjoint(self) -> None:
        """Raise if any two entries overlap in target space."""
        cursor = -1
        for entry in self.entries():
            if entry.start < cursor:
                raise ProtocolError(
                    f"overlapping match at target offset {entry.start}"
                )
            cursor = entry.end

    def reference_from_target(self, target: bytes) -> bytes:
        """The server's reference string (built from ``F_new``)."""
        return b"".join(target[e.start : e.end] for e in self.entries())

    def reference_from_source(self, source: bytes) -> bytes:
        """The client's reference string (built from ``F_old``).

        Equal to :meth:`reference_from_target` whenever every confirmed
        match is genuine; the whole-file checksum catches the exception.
        """
        parts = []
        for entry in self.entries():
            chunk = source[entry.source : entry.source + entry.length]
            if len(chunk) != entry.length:
                raise ProtocolError(
                    f"match source [{entry.source}, "
                    f"{entry.source + entry.length}) outside client file"
                )
            parts.append(chunk)
        return b"".join(parts)
