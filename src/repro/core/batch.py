"""Batched synchronization: many files share every roundtrip.

The paper's protocols are practical *because* "many files can be
processed simultaneously", so the extra roundtrips of recursive splitting
cost latency once per collection, not once per file.  This module runs
the per-file state machines in lockstep: each round sends ONE combined
hash message for every active file, one combined candidate bitmap, one
combined message per verification batch, and finally one combined delta
message.  Per-file sessions, planning and verification pools are exactly
the single-file ones — only the framing is shared.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import Block, HashAssignment, HashKind
from repro.core.client import Candidate, ClientSession
from repro.core.config import ProtocolConfig
from repro.core.engine import resolve_engine
from repro.core.planning import (
    apply_known_hashes,
    plan_continuation,
    plan_global,
    plan_mixed,
)
from repro.core.protocol import (
    PHASE_DELTA,
    PHASE_FALLBACK,
    PHASE_HANDSHAKE,
    PHASE_MAP,
)
from repro.core.server import ServerSession
from repro.core.verification import VerificationPools, make_units
from repro.exceptions import ProtocolError
from repro.hashing.strong import file_fingerprint
from repro.io.bitstream import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction, TransferStats


@dataclass
class _FileState:
    """Lockstep state for one file pair."""

    name: str
    client: ClientSession
    server: ServerSession
    unchanged: bool = False
    reconstructed: bytes | None = None
    used_fallback: bool = False


@dataclass
class BatchReport:
    """Outcome of one batched collection synchronization."""

    stats: TransferStats
    reconstructed: dict[str, bytes] = field(default_factory=dict)
    unchanged_files: list[str] = field(default_factory=list)
    fallback_files: list[str] = field(default_factory=list)
    rounds: int = 0

    @property
    def total_bytes(self) -> int:
        return self.stats.total_bytes

    @property
    def roundtrips(self) -> int:
        return self.stats.roundtrips


def _planners(config: ProtocolConfig):
    if config.continuation_first and config.continuation_enabled:
        return (plan_continuation, None), (plan_global, "bits")
    return ((plan_mixed, "bits"),)


def _make_plans(
    states: list[_FileState], planner, needs_bits: bool, endpoint: str
) -> list[tuple[_FileState, list[HashAssignment]]]:
    plans = []
    for state in states:
        if endpoint == "server":
            tracker = state.server.tracker
            bits = state.server.global_bits
        else:
            tracker = state.client.tracker
            bits = state.client.global_bits
        assert tracker is not None
        plan = planner(tracker, bits) if needs_bits else planner(tracker)
        plans.append((state, plan))
    return plans


def synchronize_batch(
    client_files: dict[str, bytes],
    server_files: dict[str, bytes],
    config: ProtocolConfig | None = None,
    channel: SimulatedChannel | None = None,
    engine: str | None = None,
) -> BatchReport:
    """Synchronise every common file, sharing each roundtrip.

    Files present only on one side are ignored here (the collection layer
    handles adds/removes); both dictionaries must cover the names being
    synchronised.  ``engine`` selects the round engine exactly as in
    :func:`repro.core.protocol.synchronize`.
    """
    if config is None:
        config = ProtocolConfig()
    if channel is None:
        channel = SimulatedChannel()
    engine = resolve_engine(engine)

    names = sorted(set(client_files) & set(server_files))
    states = [
        _FileState(
            name=name,
            client=ClientSession(client_files[name], config, engine=engine),
            server=ServerSession(server_files[name], config, engine=engine),
        )
        for name in names
    ]
    report = BatchReport(stats=channel.stats)

    # --- Combined handshake -------------------------------------------
    request = BitWriter()
    for state in states:
        request.write_uvarint(len(client_files[state.name]))
    channel.send(
        Direction.CLIENT_TO_SERVER, request.getvalue(), PHASE_HANDSHAKE,
        bits=request.bit_length,
    )
    request_reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
    for state in states:
        state.server.set_client_length(request_reader.read_uvarint())

    hello = BitWriter()
    for state in states:
        hello.write_bytes(state.server.fingerprint())
        hello.write_uvarint(len(server_files[state.name]))
    channel.send(
        Direction.SERVER_TO_CLIENT, hello.getvalue(), PHASE_HANDSHAKE,
        bits=hello.bit_length,
    )
    hello_reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
    proceed = BitWriter()
    for state in states:
        state.unchanged = state.client.process_handshake(
            hello_reader.read_bytes(16), hello_reader.read_uvarint()
        )
        proceed.write_bit(not state.unchanged)
        if state.unchanged:
            state.reconstructed = client_files[state.name]
            report.unchanged_files.append(state.name)
    channel.send(
        Direction.CLIENT_TO_SERVER, proceed.getvalue(), PHASE_HANDSHAKE,
        bits=proceed.bit_length,
    )
    channel.receive(Direction.CLIENT_TO_SERVER)

    active = [s for s in states if not s.unchanged]

    # --- Lockstep map construction --------------------------------------
    while any(
        s.server.tracker.has_active() for s in active
    ):
        report.rounds += 1
        for planner_spec in _planners(config):
            planner, flag = planner_spec
            needs_bits = flag == "bits"
            server_plans = _make_plans(active, planner, needs_bits, "server")
            client_plans = _make_plans(active, planner, needs_bits, "client")
            _run_combined_subphase(
                channel, config, server_plans, client_plans, engine
            )
        for state in active:
            more_server = state.server.tracker.advance_level()
            client_tracker = state.client.tracker
            assert client_tracker is not None
            more_client = client_tracker.advance_level()
            if more_server != more_client:
                raise ProtocolError("endpoint trees diverged in batch mode")
        if config.max_rounds is not None and report.rounds >= config.max_rounds:
            break

    # --- Boundary refinement (optional; sequential per file) ------------
    if config.refine_boundaries:
        from repro.core.refine import run_boundary_refinement

        for state in active:
            run_boundary_refinement(channel, state.client, state.server)

    # --- Combined delta --------------------------------------------------
    delta_message = BitWriter()
    for state in active:
        delta = state.server.emit_delta()
        delta_message.write_uvarint(len(delta))
        delta_message.write_bytes(delta)
    channel.send(
        Direction.SERVER_TO_CLIENT, delta_message.getvalue(), PHASE_DELTA,
        bits=delta_message.bit_length,
    )
    delta_reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
    nack = BitWriter()
    failed: list[_FileState] = []
    for state in active:
        delta = delta_reader.read_bytes(delta_reader.read_uvarint())
        state.reconstructed = state.client.apply_delta(delta)
        bad = state.reconstructed is None
        nack.write_bit(bad)
        if bad:
            failed.append(state)
    channel.send(
        Direction.CLIENT_TO_SERVER, nack.getvalue(), PHASE_FALLBACK,
        bits=nack.bit_length,
    )
    channel.receive(Direction.CLIENT_TO_SERVER)
    if failed:
        fallback = BitWriter()
        for state in failed:
            payload = zlib.compress(server_files[state.name], 9)
            fallback.write_uvarint(len(payload))
            fallback.write_bytes(payload)
        channel.send(
            Direction.SERVER_TO_CLIENT, fallback.getvalue(), PHASE_FALLBACK,
            bits=fallback.bit_length,
        )
        fallback_reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
        for state in failed:
            payload = fallback_reader.read_bytes(fallback_reader.read_uvarint())
            state.reconstructed = zlib.decompress(payload)
            state.used_fallback = True
            report.fallback_files.append(state.name)

    for state in states:
        assert state.reconstructed is not None
        report.reconstructed[state.name] = state.reconstructed
    return report


def _run_combined_subphase(
    channel: SimulatedChannel,
    config: ProtocolConfig,
    server_plans: list[tuple[_FileState, list[HashAssignment]]],
    client_plans: list[tuple[_FileState, list[HashAssignment]]],
    engine: str = "vectorized",
) -> None:
    """One sub-phase across every file, one message per direction step."""
    total_assignments = sum(len(plan) for _s, plan in server_plans)
    if total_assignments == 0:
        return
    vectorized = engine == "vectorized"

    # Server -> client: concatenated hash sections in file order.
    hashes = BitWriter()
    for state, plan in server_plans:
        section = state.server.emit_hashes(plan)
        section_bits = sum(a.transmitted_bits for a in plan)
        if vectorized:
            hashes.write_flags(BitReader(section).read_flags(section_bits))
        else:
            reader = BitReader(section)
            for _ in range(section_bits):
                hashes.write_bit(reader.read_bit())
    channel.send(
        Direction.SERVER_TO_CLIENT, hashes.getvalue(), PHASE_MAP,
        bits=hashes.bit_length,
    )

    # Client: parse each file's section, find candidates, reply bitmap.
    combined_reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
    per_file_candidates: list[tuple[_FileState, list[Candidate | None]]] = []
    bitmap = BitWriter()
    for state, plan in client_plans:
        section_bits = sum(a.transmitted_bits for a in plan)
        section_writer = BitWriter()
        if vectorized:
            section_writer.write_flags(
                combined_reader.read_flags(section_bits)
            )
        else:
            for _ in range(section_bits):
                section_writer.write_bit(combined_reader.read_bit())
        candidates = state.client.process_hashes(
            plan, section_writer.getvalue()
        )
        per_file_candidates.append((state, candidates))
        if vectorized:
            bitmap.write_flags(
                [candidate is not None for candidate in candidates]
            )
        else:
            for candidate in candidates:
                bitmap.write_bit(candidate is not None)
    channel.send(
        Direction.CLIENT_TO_SERVER, bitmap.getvalue(), PHASE_MAP,
        bits=bitmap.bit_length,
    )

    bitmap_reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
    client_pools: list[tuple[_FileState, VerificationPools[Candidate]]] = []
    server_pools: list[tuple[_FileState, VerificationPools[Block]]] = []
    for (state, s_plan), (_c_state, candidates) in zip(
        server_plans, per_file_candidates
    ):
        if vectorized:
            flags = bitmap_reader.read_flags(len(s_plan)).tolist()
        else:
            flags = [bool(bitmap_reader.read_bit()) for _ in s_plan]
        server_blocks = [
            a.block for a, flagged in zip(s_plan, flags) if flagged
        ]
        server_pools.append(
            (state, VerificationPools(main=server_blocks))
        )
        client_pools.append(
            (state, VerificationPools(main=[c for c in candidates if c]))
        )

    # Verification batches, combined across files per batch index.
    strategy = config.strategy()
    for batch in strategy.batches:
        client_selections = [
            (state, pools, pools.select(batch)) for state, pools in client_pools
        ]
        server_selections = [
            (state, pools, pools.select(batch)) for state, pools in server_pools
        ]
        if not any(selection for _s, _p, selection in client_selections):
            continue
        writer = BitWriter()
        client_units_by_file = []
        for state, _pools, selection in client_selections:
            units = make_units(selection, batch)
            client_units_by_file.append(units)
            if vectorized:
                writer.write_many(
                    np.asarray(
                        state.client.verification_values(units, batch),
                        dtype=np.uint64,
                    ),
                    batch.bits,
                )
            else:
                for unit in units:
                    writer.write(
                        state.client.verification_value(unit, batch),
                        batch.bits,
                    )
        channel.send(
            Direction.CLIENT_TO_SERVER, writer.getvalue(), PHASE_MAP,
            bits=writer.bit_length,
        )

        verify_reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
        confirm = BitWriter()
        server_results_by_file = []
        for state, _pools, selection in server_selections:
            units = make_units(selection, batch)
            if vectorized:
                received_values = verify_reader.read_many(
                    len(units), batch.bits
                ).tolist()
                expected_values = state.server.verification_values(
                    units, batch
                )
                passed = [
                    received == expected
                    for received, expected in zip(
                        received_values, expected_values
                    )
                ]
                confirm.write_flags(passed)
            else:
                passed = []
                for unit in units:
                    received = verify_reader.read(batch.bits)
                    passed.append(
                        received
                        == state.server.verification_value(unit, batch)
                    )
                    confirm.write_bit(passed[-1])
            server_results_by_file.append((units, passed))
        channel.send(
            Direction.SERVER_TO_CLIENT, confirm.getvalue(), PHASE_MAP,
            bits=confirm.bit_length,
        )

        confirm_reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
        for index, (state, pools, _selection) in enumerate(client_selections):
            units = client_units_by_file[index]
            if vectorized:
                passed = confirm_reader.read_flags(len(units)).tolist()
            else:
                passed = [bool(confirm_reader.read_bit()) for _ in units]
            pools.apply(batch, units, passed)
        for (state, pools, _selection), (units, passed) in zip(
            server_selections, server_results_by_file
        ):
            pools.apply(batch, units, passed)

    # Finish: record matches and continuation failures on both endpoints.
    for file_index, (state, c_pools) in enumerate(client_pools):
        _same_state, s_pools = server_pools[file_index]
        _plan_state, server_plan = server_plans[file_index]
        _plan_state_c, client_plan = client_plans[file_index]

        accepted_candidates = c_pools.finish()
        accepted_blocks = s_pools.finish()
        state.client.record_accepted(accepted_candidates)
        for block in accepted_blocks:
            state.server.tracker.record_match(block)

        accepted_client_ids = {id(c.block) for c in accepted_candidates}
        accepted_server_ids = {id(b) for b in accepted_blocks}
        for s_assignment, c_assignment in zip(server_plan, client_plan):
            if s_assignment.kind is HashKind.CONTINUATION:
                if id(s_assignment.block) not in accepted_server_ids:
                    s_assignment.block.continuation_failed = True
                if id(c_assignment.block) not in accepted_client_ids:
                    c_assignment.block.continuation_failed = True
        apply_known_hashes(server_plan)
        apply_known_hashes(client_plan)
