"""The paper's contribution: multi-round map construction + delta.

Public entry point: :func:`synchronize`, configured by
:class:`ProtocolConfig`.  See DESIGN.md for the technique inventory
(recursive splitting, optimized group-testing verification, continuation
and local hashes, decomposable hash suppression).
"""

from repro.core.adaptive import (
    ProbeResult,
    adaptive_synchronize,
    choose_config,
    probe_similarity,
)
from repro.core.batch import BatchReport, synchronize_batch
from repro.core.broadcast import BroadcastReport, synchronize_broadcast
from repro.core.blocks import Block, BlockStatus, BlockTracker, HashKind
from repro.core.client import Candidate, ClientSession
from repro.core.config import ProtocolConfig
from repro.core.engine import ENGINE_ENV, ENGINES, default_engine, resolve_engine
from repro.core.filemap import FileMap, MatchEntry
from repro.core.protocol import CoreSyncSession, SyncResult, synchronize
from repro.core.server import ServerSession

__all__ = [
    "BatchReport",
    "synchronize_batch",
    "BroadcastReport",
    "synchronize_broadcast",
    "Block",
    "ProbeResult",
    "adaptive_synchronize",
    "choose_config",
    "probe_similarity",
    "BlockStatus",
    "BlockTracker",
    "Candidate",
    "ClientSession",
    "CoreSyncSession",
    "ENGINES",
    "ENGINE_ENV",
    "default_engine",
    "resolve_engine",
    "FileMap",
    "HashKind",
    "MatchEntry",
    "ProtocolConfig",
    "ServerSession",
    "SyncResult",
    "synchronize",
]
