"""Adaptive parameter selection (the paper's §7 "ideal tool").

"Ideally, such a tool would be adaptive and thus choose the best set of
parameters and number of roundtrips based on the characteristics of the
data set and communication link."  This module implements that tool:

1. a cheap *similarity probe* — the server sends a handful of block
   hashes; the client reports how many match anywhere in its file — whose
   cost is fully accounted on the same channel;
2. a rule that maps (probe result, file sizes, link latency class) to a
   :class:`~repro.core.config.ProtocolConfig`:

   * dissimilar files: recursing is wasted effort — keep blocks large,
     few rounds, then let the delta (mostly literals) do the work;
   * similar files: recurse deep with continuation hashes to shave the
     delta as far as possible;
   * high-latency links: cap rounds and use single-batch verification,
     trading some bytes for roundtrips.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.core.protocol import SyncResult, synchronize
from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import HashIndex
from repro.io.bitstream import BitReader, BitWriter
from repro.net.channel import LinkModel, SimulatedChannel
from repro.net.metrics import Direction

PHASE_PROBE = "probe"

#: Probe parameters (fixed protocol constants known to both endpoints).
PROBE_BLOCK_SIZE = 256
PROBE_SAMPLES = 24


def probe_hash_bits(client_length: int) -> int:
    """Probe hash width: enough bits that a random collision against all
    ``client_length`` window positions stays below ~2%.

    The client's length travels in the probe request (a varint the
    accounting includes), so both endpoints compute the same width.
    """
    import math

    bits = int(math.ceil(math.log2(max(client_length, 2)))) + 6
    return max(16, min(bits, 30))

#: A link slower than this round-trip budget is treated as high latency.
HIGH_LATENCY_THRESHOLD_S = 0.2


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of the similarity probe."""

    samples: int
    matched: int

    @property
    def similarity(self) -> float:
        """Fraction of probed server blocks found verbatim at the client."""
        if self.samples == 0:
            return 0.0
        return self.matched / self.samples


def probe_similarity(
    client_data: bytes,
    server_data: bytes,
    channel: SimulatedChannel,
    hash_seed: int = 1,
) -> ProbeResult:
    """Run the accounted similarity probe over ``channel``.

    The server samples block positions with a deterministic generator
    seeded by the (already exchanged) file length, so the client knows
    which positions were probed without extra bytes.
    """
    usable = len(server_data) - PROBE_BLOCK_SIZE
    if usable < 0:
        return ProbeResult(samples=0, matched=0)
    hasher = DecomposableAdler(seed=hash_seed)
    rng = random.Random(len(server_data))
    positions = [rng.randrange(usable + 1) for _ in range(PROBE_SAMPLES)]

    # The client announces its length so both sides fix the hash width.
    request = BitWriter()
    request.write_uvarint(len(client_data))
    channel.send(
        Direction.CLIENT_TO_SERVER, request.getvalue(), PHASE_PROBE,
        bits=request.bit_length,
    )
    announced = BitReader(
        channel.receive(Direction.CLIENT_TO_SERVER)
    ).read_uvarint()
    width = probe_hash_bits(announced)

    writer = BitWriter()
    for position in positions:
        block = server_data[position : position + PROBE_BLOCK_SIZE]
        writer.write(hasher.packed_hash(block, width), width)
    channel.send(
        Direction.SERVER_TO_CLIENT, writer.getvalue(), PHASE_PROBE,
        bits=writer.bit_length,
    )

    reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
    index = HashIndex(client_data, PROBE_BLOCK_SIZE, hasher)
    matched = 0
    for _ in positions:
        value = reader.read(width)
        if index.lookup(value, width, max_results=1):
            matched += 1

    reply = BitWriter()
    reply.write_uvarint(matched)
    channel.send(
        Direction.CLIENT_TO_SERVER, reply.getvalue(), PHASE_PROBE,
        bits=reply.bit_length,
    )
    reported = BitReader(channel.receive(Direction.CLIENT_TO_SERVER)).read_uvarint()
    return ProbeResult(samples=len(positions), matched=reported)


def choose_config(
    probe: ProbeResult,
    link: LinkModel | None = None,
    hash_seed: int = 1,
    use_cost_model: bool = False,
) -> ProtocolConfig:
    """Map a probe outcome and link class to protocol parameters.

    With ``use_cost_model`` the minimum block size comes from the
    Bernoulli-edit cost model (:mod:`repro.core.estimate`) instead of
    the regime rule — the analytic variant of the same decision.  The
    model assumes dispersed edits, so the rule (tuned on clustered
    workloads) remains the default.
    """
    high_latency = bool(link and link.latency_s >= HIGH_LATENCY_THRESHOLD_S)
    similarity = probe.similarity

    if use_cost_model and probe.samples > 0 and similarity > 0.0:
        from repro.core.estimate import (
            best_min_block_size,
            dirty_rate_from_similarity,
        )

        dirty = dirty_rate_from_similarity(similarity, PROBE_BLOCK_SIZE)
        min_block = best_min_block_size(1_000_000, dirty)
        config = ProtocolConfig(
            min_block_size=min_block,
            continuation_min_block_size=max(4, min_block // 4),
            verification="group2",
            hash_seed=hash_seed,
        )
        if high_latency:
            config = config.with_overrides(
                verification="light", max_rounds=6
            )
        return config

    if similarity < 0.15:
        # Nearly disjoint: a shallow map pass, then let the delta carry it.
        config = ProtocolConfig(
            min_block_size=256,
            continuation_min_block_size=None,
            verification="light",
            max_rounds=4,
            hash_seed=hash_seed,
        )
    elif similarity < 0.6:
        config = ProtocolConfig(
            min_block_size=64,
            continuation_min_block_size=16,
            verification="group2",
            hash_seed=hash_seed,
        )
    else:
        # Highly similar: recurse deep; every matched byte is a byte the
        # delta does not have to carry.
        config = ProtocolConfig(
            min_block_size=32,
            continuation_min_block_size=8,
            verification="group2",
            hash_seed=hash_seed,
        )
    if high_latency:
        config = config.with_overrides(
            verification="light",
            max_rounds=min(config.max_rounds or 6, 6),
        )
    return config


def adaptive_synchronize(
    client_data: bytes,
    server_data: bytes,
    link: LinkModel | None = None,
    channel: SimulatedChannel | None = None,
) -> tuple[SyncResult, ProtocolConfig]:
    """Probe, pick parameters, then synchronise — all on one channel.

    Returns the sync result (whose stats include the probe cost) and the
    chosen configuration.
    """
    if channel is None:
        channel = SimulatedChannel(link)
    probe = probe_similarity(client_data, server_data, channel)
    config = choose_config(probe, link=link or channel.link)
    result = synchronize(client_data, server_data, config, channel)
    return result, config
