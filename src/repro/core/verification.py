"""Optimized match verification (the group-testing machinery in situ).

Candidates — (block, client position) pairs that a weak candidate hash
flagged — are pushed through the batches of a
:class:`~repro.grouptesting.strategies.VerificationStrategy`.  Pool
evolution is shared logic executed identically by both endpoints: each
batch's unit composition depends only on the strategy and the
confirmation bitmaps that crossed the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.grouptesting.strategies import (
    BatchMode,
    BatchScope,
    BatchSpec,
    VerificationStrategy,
)

ItemT = TypeVar("ItemT")


@dataclass
class VerificationPools(Generic[ItemT]):
    """Per-endpoint candidate pools during a verification exchange."""

    main: list[ItemT]
    salvage: list[ItemT] = field(default_factory=list)
    accepted: list[ItemT] = field(default_factory=list)

    def select(self, batch: BatchSpec) -> list[ItemT]:
        """Items this batch covers (consumes the salvage pool)."""
        if batch.scope is BatchScope.FAILED_GROUP_MEMBERS:
            items = self.salvage
            self.salvage = []
            return items
        return self.main

    def apply(
        self,
        batch: BatchSpec,
        units: list[list[ItemT]],
        passed: list[bool],
    ) -> None:
        """Fold one batch's confirmation bitmap into the pools."""
        if len(units) != len(passed):
            raise ValueError("bitmap length does not match unit count")
        passed_items: list[ItemT] = []
        failed_items: list[ItemT] = []
        for unit, ok in zip(units, passed):
            (passed_items if ok else failed_items).extend(unit)
        if batch.scope is BatchScope.FAILED_GROUP_MEMBERS:
            # Salvaged items are decided immediately.
            self.accepted.extend(passed_items)
        else:
            if batch.mode is BatchMode.GROUP:
                self.salvage.extend(failed_items)
            self.main = passed_items

    def finish(self) -> list[ItemT]:
        """Final accepted items once all batches ran."""
        self.accepted.extend(self.main)
        self.main = []
        # Anything still in salvage was never salvaged: rejected.
        self.salvage = []
        return self.accepted


def make_units(items: list[ItemT], batch: BatchSpec) -> list[list[ItemT]]:
    """Chunk ``items`` into this batch's units (groups or singletons)."""
    if batch.mode is BatchMode.INDIVIDUAL:
        return [[item] for item in items]
    size = batch.group_size
    return [items[i : i + size] for i in range(0, len(items), size)]


def batch_wire_bits(units: list[list[ItemT]], batch: BatchSpec) -> int:
    """Client→server bits one batch costs (one hash per unit)."""
    return len(units) * batch.bits


def strategy_max_batches(strategy: VerificationStrategy) -> int:
    """Number of client→server batches the exchange may need."""
    return len(strategy.batches)
