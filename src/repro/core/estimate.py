"""Predictive cost model for the protocol itself.

The theory module bounds what *any* protocol can do; this model predicts
what *ours* will do, well enough to pick parameters.  The file model is
Bernoulli edits: each byte of the server file is "dirty" independently
with probability ``p`` (calibrated from the similarity probe).  A block
of ``b`` bytes then matches with probability ``(1 - p) ** b``, which
yields, level by level:

* how many blocks stay active (their parent was dirty),
* how many hashes each level sends (halved by decomposability below the
  top level, shaved further by continuation hashes),
* the expected unmatched bytes left for the delta.

The model's point is not precision — real edits are clustered, which it
ignores — but *shape*: its cost curve over the minimum block size is
U-shaped like Figures 6.1/6.2, and its argmin lands near the measured
optimum, which is all `choose_config` needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProtocolConfig

#: Compressed literal cost of a delta byte on text-like content.
DELTA_BITS_PER_BYTE = 3.0
#: Copy-instruction overhead per surviving matched region.
DELTA_BITS_PER_REGION = 40.0


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost split for one configuration."""

    map_bits: float
    delta_bits: float
    matched_fraction: float

    @property
    def total_bits(self) -> float:
        return self.map_bits + self.delta_bits

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


def dirty_rate_from_similarity(similarity: float, probe_block: int) -> float:
    """Invert the probe: block-match fraction → per-byte dirty rate.

    A probe block of ``probe_block`` bytes matches with probability
    ``(1 - p) ** probe_block``; solve for ``p``.
    """
    if not 0.0 <= similarity <= 1.0:
        raise ValueError("similarity must be in [0, 1]")
    if probe_block < 1:
        raise ValueError("probe_block must be positive")
    if similarity <= 0.0:
        return 1.0
    if similarity >= 1.0:
        return 0.0
    return 1.0 - similarity ** (1.0 / probe_block)


def estimate_protocol_cost(
    file_length: int,
    dirty_rate: float,
    config: ProtocolConfig | None = None,
    literal_bits_per_byte: float = DELTA_BITS_PER_BYTE,
) -> CostEstimate:
    """Expected map and delta cost under the Bernoulli-edit model.

    ``literal_bits_per_byte`` models the delta coder's entropy pass: ~3
    for text-like content, 8 for incompressible data.
    """
    if file_length < 0:
        raise ValueError("file_length must be non-negative")
    if not 0.0 <= dirty_rate <= 1.0:
        raise ValueError("dirty_rate must be in [0, 1]")
    if config is None:
        config = ProtocolConfig()
    if file_length == 0:
        return CostEstimate(0.0, 0.0, 1.0)

    global_bits = config.resolve_global_hash_bits(file_length)
    verify_bits = float(config.strategy().total_individual_bits or 12)
    start = config.resolve_start_block_size(file_length)

    def match_probability(block: int) -> float:
        return (1.0 - dirty_rate) ** block

    map_bits = 0.0
    matched_bytes = 0.0
    matched_regions = 0.0
    #: blocks still active entering the level
    active = file_length / start
    block = start
    first_level = True
    while block >= config.min_block_size and active >= 1e-9:
        survive = match_probability(block)
        # A block at this level is active because its parent was dirty;
        # it still matches if all ITS bytes are clean (the dirty byte sat
        # in the sibling).  Conditional probability for non-root levels:
        if first_level:
            level_match = survive
        else:
            parent_dirty = 1.0 - match_probability(2 * block)
            level_match = (
                (survive - match_probability(2 * block)) / parent_dirty
                if parent_dirty > 0
                else 0.0
            )
        level_match = min(max(level_match, 0.0), 1.0)

        hashes = active
        if config.use_decomposable and not first_level:
            hashes /= 2.0  # right siblings derived
        map_bits += hashes * global_bits
        map_bits += active  # candidate bitmap
        confirmed = active * level_match
        map_bits += confirmed * verify_bits  # verification for real matches
        matched_bytes += confirmed * block
        matched_regions += confirmed

        active = (active - confirmed) * 2.0
        block //= 2
        first_level = False

    # Continuation hashes extend below the global minimum cheaply: model
    # them as matching the same conditional fraction at ~6 bits per try.
    if config.continuation_enabled:
        assert config.continuation_min_block_size is not None
        while block >= config.continuation_min_block_size and active >= 1e-9:
            survive_fraction = min(
                max(match_probability(block), 0.0), 1.0
            )
            # Only blocks adjacent to a confirmed match participate —
            # roughly the matched-region count, twice (both edges).
            participants = min(active, 2.0 * max(matched_regions, 1.0))
            map_bits += participants * (config.continuation_hash_bits + 2)
            confirmed = participants * survive_fraction * 0.5
            matched_bytes += confirmed * block
            matched_regions += confirmed
            active = (active - confirmed) * 2.0
            block //= 2

    matched_bytes = min(matched_bytes, float(file_length))
    unmatched = file_length - matched_bytes
    delta_bits = (
        unmatched * literal_bits_per_byte
        + matched_regions * DELTA_BITS_PER_REGION
    )
    return CostEstimate(
        map_bits=map_bits,
        delta_bits=delta_bits,
        matched_fraction=matched_bytes / file_length,
    )


def best_min_block_size(
    file_length: int,
    dirty_rate: float,
    candidates: tuple[int, ...] = (16, 32, 64, 128, 256, 512),
    continuation: bool = True,
    literal_bits_per_byte: float = DELTA_BITS_PER_BYTE,
) -> int:
    """The candidate minimum block size the model predicts cheapest."""
    best: tuple[float, int] | None = None
    for min_block in candidates:
        config = ProtocolConfig(
            min_block_size=min_block,
            continuation_min_block_size=(
                max(4, min_block // 4) if continuation else None
            ),
        )
        estimate = estimate_protocol_cost(
            file_length, dirty_rate, config,
            literal_bits_per_byte=literal_bits_per_byte,
        )
        if best is None or estimate.total_bits < best[0]:
            best = (estimate.total_bits, min_block)
    assert best is not None
    return best[1]
