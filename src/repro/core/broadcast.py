"""Broadcast synchronization: one hash stream, many clients (§7).

The paper closes with "we plan to look at synchronization in asymmetric
cases, e.g., in cases with server broadcast capability".  When a server
updates many clients that hold *different* stale copies, the map phase
can be restructured so the expensive server→client hash stream is
**client-independent** — computable once, multicast (or CDN-cached) to
every client:

* the server walks the *full* block tree (every block of every level
  down to the minimum — no pruning by any client's confirmations, since
  different clients confirm different blocks) and emits one hash per
  sibling pair (decomposability still applies);
* each client parses the same stream positionally, finds its own
  candidates, and verifies them over its private (unicast) back-channel;
* each client's delta is unicast, encoded against that client's own
  confirmed regions.

The trade: the shared stream is larger than any single client's pruned
stream (no skip rules, no continuation hashes), but it is paid **once**
instead of per client — the bench shows the break-even around 2–3
clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocks import Block
from repro.core.client import Candidate, ClientSession
from repro.core.config import ProtocolConfig
from repro.core.server import ServerSession
from repro.core.verification import VerificationPools, make_units
from repro.exceptions import ProtocolError
from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.strong import file_fingerprint
from repro.io.bitstream import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction, TransferStats

#: The shared stream's phase — counted once regardless of client count.
PHASE_BROADCAST = "map-broadcast"
PHASE_UNICAST = "map"
PHASE_DELTA = "delta"
PHASE_HANDSHAKE = "handshake"


@dataclass
class BroadcastReport:
    """Outcome of one broadcast update."""

    reconstructed: dict[str, bytes] = field(default_factory=dict)
    shared_stats: TransferStats = field(default_factory=TransferStats)
    per_client_stats: dict[str, TransferStats] = field(default_factory=dict)

    @property
    def shared_bytes(self) -> int:
        return self.shared_stats.total_bytes

    def unicast_bytes(self, name: str) -> int:
        return self.per_client_stats[name].total_bytes

    def total_bytes(self) -> int:
        """Broadcast stream once + every client's private traffic."""
        return self.shared_bytes + sum(
            stats.total_bytes for stats in self.per_client_stats.values()
        )


def _broadcast_levels(
    server_length: int, config: ProtocolConfig
) -> list[list[Block]]:
    """The full (unpruned) block tree, level by level.

    Client-independent by construction: every block splits down to the
    global minimum regardless of who matched what.
    """
    start = config.resolve_start_block_size(server_length)
    level: list[Block] = []
    offset = 0
    while offset < server_length:
        length = min(start, server_length - offset)
        level.append(Block(start=offset, length=length, level=0))
        offset += length
    levels = []
    while level:
        levels.append(level)
        next_level: list[Block] = []
        for block in level:
            if block.length // 2 >= config.min_block_size:
                next_level.extend(block.split())
        level = next_level
    return levels


def synchronize_broadcast(
    client_files: dict[str, bytes],
    server_data: bytes,
    config: ProtocolConfig | None = None,
) -> BroadcastReport:
    """Update every client to ``server_data`` with one shared hash stream.

    Returns per-client reconstructions plus the shared/unicast cost
    split.  Continuation hashes and skip rules are inherently
    per-client, so the broadcast stream uses global hashes only; the
    private verification and delta traffic runs per client exactly as in
    the unicast protocol.
    """
    if config is None:
        config = ProtocolConfig()
    report = BroadcastReport()
    if not client_files:
        return report

    # Broadcast hash widths must fit every client; size for the largest.
    widest_client = max(len(data) for data in client_files.values())
    global_bits = config.resolve_global_hash_bits(max(widest_client, 2))

    levels = _broadcast_levels(len(server_data), config)
    server_template = ServerSession(server_data, config)
    hasher = DecomposableAdler(seed=config.hash_seed)

    # --- The shared stream: fingerprint + every level's hashes ----------
    shared_channel = SimulatedChannel()
    hello = BitWriter()
    hello.write_bytes(file_fingerprint(server_data))
    hello.write_uvarint(len(server_data))
    shared_channel.send(
        Direction.SERVER_TO_CLIENT, hello.getvalue(), PHASE_HANDSHAKE,
        bits=hello.bit_length,
    )
    level_payloads: list[bytes] = [shared_channel.receive(Direction.SERVER_TO_CLIENT)]

    for depth, level in enumerate(levels):
        stream = BitWriter()
        for block in level:
            # Decomposable suppression: below the top level the right
            # sibling is derivable for every client (the parent hash is
            # always in the stream).
            if depth > 0 and not block.is_left and config.use_decomposable:
                continue
            packed = DecomposableAdler.pack(
                server_template.prefix.block_pair(block.start, block.length),
                global_bits,
            )
            stream.write(packed, global_bits)
        shared_channel.send(
            Direction.SERVER_TO_CLIENT, stream.getvalue(), PHASE_BROADCAST,
            bits=stream.bit_length,
        )
        level_payloads.append(shared_channel.receive(Direction.SERVER_TO_CLIENT))
    report.shared_stats = shared_channel.stats

    # --- Per-client: parse, verify, delta --------------------------------
    for name, client_data in sorted(client_files.items()):
        channel = SimulatedChannel()
        client = ClientSession(client_data, config)
        server = ServerSession(server_data, config)

        hello_reader = BitReader(level_payloads[0])
        unchanged = client.process_handshake(
            hello_reader.read_bytes(16), hello_reader.read_uvarint()
        )
        if unchanged:
            report.reconstructed[name] = client_data
            report.per_client_stats[name] = channel.stats
            continue

        client_levels = _broadcast_levels(len(server_data), config)
        server_levels = _broadcast_levels(len(server_data), config)
        matched_regions: list[tuple[int, int]] = []
        #: Parsed/derived hash values, persistent across levels so right
        #: children can be decomposed from their parent's value.
        values: dict[int, int] = {}

        for depth, (payload, client_level, server_level) in enumerate(
            zip(level_payloads[1:], client_levels, server_levels)
        ):
            reader = BitReader(payload)
            candidates: list[Candidate] = []
            server_blocks: list[Block] = []
            for c_block, s_block in zip(client_level, server_level):
                if depth > 0 and not c_block.is_left and config.use_decomposable:
                    parent = c_block.parent
                    sibling = c_block.sibling
                    assert parent is not None and sibling is not None
                    value = DecomposableAdler.decompose_right_packed(
                        values[id(parent)],
                        values[id(sibling)],
                        global_bits,
                        c_block.length,
                    )
                else:
                    value = reader.read(global_bits)
                values[id(c_block)] = value
                # Skip blocks inside an already-matched ancestor region.
                if any(
                    start <= c_block.start and c_block.end <= start + length
                    for start, length in matched_regions
                ):
                    continue
                positions = client._index(c_block.length).lookup(
                    value, global_bits,
                    max_results=config.max_candidate_positions,
                )
                if positions:
                    candidates.append(Candidate(c_block, positions[0]))
                    server_blocks.append(s_block)
            # Private verification for this level's candidates.
            accepted_c, accepted_s = _verify_unicast(
                channel, client, server, config, candidates, server_blocks
            )
            client.record_accepted(accepted_c)
            for candidate, s_block in zip(accepted_c, accepted_s):
                matched_regions.append(
                    (candidate.block.start, candidate.block.length)
                )
                server.tracker.confirmed_regions.append(
                    (s_block.start, s_block.length)
                )

        delta = server.emit_delta()
        channel.send(Direction.SERVER_TO_CLIENT, delta, PHASE_DELTA)
        reconstructed = client.apply_delta(
            channel.receive(Direction.SERVER_TO_CLIENT)
        )
        if reconstructed is None:
            import zlib

            channel.send(
                Direction.SERVER_TO_CLIENT,
                zlib.compress(server_data, 9),
                "fallback",
            )
            reconstructed = zlib.decompress(
                channel.receive(Direction.SERVER_TO_CLIENT)
            )
        report.reconstructed[name] = reconstructed
        report.per_client_stats[name] = channel.stats
    return report


def _verify_unicast(
    channel: SimulatedChannel,
    client: ClientSession,
    server: ServerSession,
    config: ProtocolConfig,
    candidates: list[Candidate],
    server_blocks: list[Block],
) -> tuple[list[Candidate], list[Block]]:
    """Private verification, mirroring the unicast protocol's exchange.

    Accepted candidate/block pairs keep their alignment so callers can
    zip them.
    """
    if len(candidates) != len(server_blocks):
        raise ProtocolError("broadcast candidate lists diverged")
    strategy = config.strategy()
    # Keep (candidate, block) pairs together through the pools.
    paired = list(zip(candidates, server_blocks))
    client_pools: VerificationPools = VerificationPools(main=list(paired))
    for batch in strategy.batches:
        selection = client_pools.select(batch)
        if not selection:
            continue
        units = make_units(selection, batch)
        writer = BitWriter()
        passed = []
        for unit in units:
            candidate_unit = [pair[0] for pair in unit]
            value = client.verification_value(candidate_unit, batch)
            writer.write(value, batch.bits)
            block_unit = [pair[1] for pair in unit]
            passed.append(
                value == server.verification_value(block_unit, batch)
            )
        channel.send(
            Direction.CLIENT_TO_SERVER, writer.getvalue(), PHASE_UNICAST,
            bits=writer.bit_length,
        )
        bitmap = BitWriter()
        for ok in passed:
            bitmap.write_bit(ok)
        channel.send(
            Direction.SERVER_TO_CLIENT, bitmap.getvalue(), PHASE_UNICAST,
            bits=bitmap.bit_length,
        )
        channel.receive(Direction.CLIENT_TO_SERVER)
        channel.receive(Direction.SERVER_TO_CLIENT)
        client_pools.apply(batch, units, passed)
    accepted = client_pools.finish()
    return [pair[0] for pair in accepted], [pair[1] for pair in accepted]
