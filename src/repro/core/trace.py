"""Per-round protocol instrumentation.

With ``ProtocolConfig(collect_trace=True)`` every sub-phase records what
was sent and what it achieved — the data behind the paper's per-technique
discussion (how many hashes of each kind, how many candidates, how many
bits of verification, what was confirmed).  Traces power the
``examples/protocol_trace.py`` walkthrough and several regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocks import HashKind


@dataclass
class SubphaseTrace:
    """Everything one sub-phase did."""

    round_index: int
    #: Dominant block length of this level (tail blocks may differ by ±1
    #: per split generation).
    block_length: int
    hash_counts: dict[HashKind, int] = field(default_factory=dict)
    hash_bits_sent: int = 0
    candidates: int = 0
    accepted: int = 0
    verification_bits: int = 0

    @property
    def harvest_rate(self) -> float:
        """Accepted fraction of candidates (1.0 when none were found)."""
        if self.candidates == 0:
            return 1.0
        return self.accepted / self.candidates

    @property
    def total_hashes(self) -> int:
        return sum(self.hash_counts.values())

    def describe(self) -> str:
        """One human-readable line for trace listings."""
        kinds = ", ".join(
            f"{count} {kind.value}"
            for kind, count in sorted(
                self.hash_counts.items(), key=lambda item: item[0].value
            )
            if count
        )
        return (
            f"round {self.round_index:2d}  b={self.block_length:<6d} "
            f"[{kinds or 'nothing'}]  {self.hash_bits_sent:5d}b hashes, "
            f"{self.verification_bits:5d}b verify -> "
            f"{self.accepted}/{self.candidates} confirmed"
        )


def summarize_trace(traces: list[SubphaseTrace]) -> dict[str, int]:
    """Aggregate counters over a whole run."""
    summary = {
        "subphases": len(traces),
        "hashes_sent": 0,
        "derived_hashes": 0,
        "continuation_hashes": 0,
        "global_hashes": 0,
        "local_hashes": 0,
        "candidates": 0,
        "accepted": 0,
        "hash_bits": 0,
        "verification_bits": 0,
    }
    for trace in traces:
        summary["hashes_sent"] += trace.total_hashes
        summary["derived_hashes"] += trace.hash_counts.get(HashKind.DERIVED, 0)
        summary["continuation_hashes"] += trace.hash_counts.get(
            HashKind.CONTINUATION, 0
        )
        summary["global_hashes"] += trace.hash_counts.get(HashKind.GLOBAL, 0)
        summary["local_hashes"] += trace.hash_counts.get(HashKind.LOCAL, 0)
        summary["candidates"] += trace.candidates
        summary["accepted"] += trace.accepted
        summary["hash_bits"] += trace.hash_bits_sent
        summary["verification_bits"] += trace.verification_bits
    return summary
