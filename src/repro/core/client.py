"""The client endpoint: owns the outdated file ``F_old`` and builds the map."""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.core.blocks import Block, BlockTracker, HashAssignment, HashKind
from repro.core.config import ProtocolConfig
from repro.core.engine import resolve_engine
from repro.core.filemap import FileMap
from repro.delta import vcdiff_decode, zdelta_decode
from repro.exceptions import DeltaFormatError, ProtocolError
from repro.grouptesting.strategies import BatchMode, BatchSpec
from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import (
    HashIndex,
    PrefixHasher,
    pack_to_widths,
)
from repro.hashing.strong import StrongHasher, file_fingerprint
from repro.io.bitstream import BitReader
from repro.parallel.cache import HashIndexCache, default_cache


@dataclass(frozen=True)
class Candidate:
    """A client-side candidate match: this block ≙ my bytes at ``position``."""

    block: Block
    position: int


class SortedPositionMap:
    """An int→int map backed by sorted ndarrays instead of a dict.

    The client's match-extension bookkeeping (``_source_after_end`` /
    ``_source_at_start``) used to be plain dicts probed one block at a
    time; the vectorized engine needs the *whole round's* probes answered
    in one ``searchsorted`` pass, so the keys live in a sorted array that
    serves both a ``bisect`` point probe (scalar oracle) and a batched
    :meth:`get_many` (vectorized engine).  Writes append and mark the
    snapshot dirty; the sort is rebuilt lazily on the next probe, with
    the last write for a key winning — exactly dict semantics.
    """

    __slots__ = ("_keys", "_values", "_sorted_keys", "_sorted_values",
                 "_key_list")

    def __init__(self) -> None:
        self._keys: list[int] = []
        self._values: list[int] = []
        self._sorted_keys: np.ndarray | None = None
        self._sorted_values: np.ndarray | None = None
        self._key_list: list[int] = []

    def __setitem__(self, key: int, value: int) -> None:
        self._keys.append(key)
        self._values.append(value)
        self._sorted_keys = None

    def __len__(self) -> int:
        self._ensure_sorted()
        return len(self._key_list)

    def _ensure_sorted(self) -> None:
        if self._sorted_keys is not None:
            return
        keys = np.asarray(self._keys, dtype=np.int64)
        values = np.asarray(self._values, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
        if keys.size:
            # Stable sort keeps insertion order within equal keys; keep
            # the last occurrence so rewrites override earlier entries.
            keep = np.ones(keys.size, dtype=bool)
            keep[:-1] = keys[1:] != keys[:-1]
            keys = keys[keep]
            values = values[keep]
        self._sorted_keys = keys
        self._sorted_values = values
        self._key_list = keys.tolist()

    def get(self, key: int) -> int | None:
        """Point probe (bisect over the sorted key list)."""
        self._ensure_sorted()
        keys = self._key_list
        at = bisect_left(keys, key)
        if at < len(keys) and keys[at] == key:
            return int(self._sorted_values[at])
        return None

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched probe: one value per key, ``-1`` where absent."""
        self._ensure_sorted()
        sorted_keys = self._sorted_keys
        assert sorted_keys is not None
        out = np.full(keys.shape, -1, dtype=np.int64)
        if sorted_keys.size == 0 or keys.size == 0:
            return out
        at = np.searchsorted(sorted_keys, keys)
        inside = at < sorted_keys.size
        found = inside.copy()
        found[inside] = sorted_keys[at[inside]] == keys[inside]
        out[found] = self._sorted_values[at[found]]
        return out


class ClientSession:
    """Client-side protocol state for one file synchronization."""

    def __init__(
        self,
        data: bytes,
        config: ProtocolConfig,
        cache: HashIndexCache | None = None,
        engine: str | None = None,
    ) -> None:
        self.data = data
        self.config = config
        self.engine = resolve_engine(engine)
        self.hasher = DecomposableAdler(seed=config.hash_seed)
        self.strong = StrongHasher(salt=config.hash_seed.to_bytes(8, "big"))
        self._cache = cache if cache is not None else default_cache()
        self._fingerprint = file_fingerprint(data)
        self.prefix = PrefixHasher(
            data,
            self.hasher,
            sums=self._cache.prefix_sums(
                data, self.hasher, fingerprint=self._fingerprint
            ),
        )
        self.global_bits = config.resolve_global_hash_bits(len(data))
        self.server_fingerprint: bytes | None = None
        self.tracker: BlockTracker | None = None
        self.map: FileMap | None = None
        # Source positions keyed by target offsets, for match extension.
        self._source_after_end = SortedPositionMap()
        self._source_at_start = SortedPositionMap()
        self._indexes: dict[int, HashIndex] = {}

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def process_handshake(self, fingerprint: bytes, server_length: int) -> bool:
        """Learn the server file identity; returns True if already in sync."""
        self.server_fingerprint = fingerprint
        self.tracker = BlockTracker(server_length, self.config)
        self.map = FileMap(server_length)
        return self._fingerprint == fingerprint

    def _require_tracker(self) -> BlockTracker:
        if self.tracker is None:
            raise ProtocolError("handshake has not completed")
        return self.tracker

    def _require_map(self) -> FileMap:
        if self.map is None:
            raise ProtocolError("handshake has not completed")
        return self.map

    # ------------------------------------------------------------------
    # Candidate search
    # ------------------------------------------------------------------
    def _index(self, length: int) -> HashIndex:
        index = self._indexes.get(length)
        if index is None:
            if length > len(self.data):
                # No window of this length exists: an empty index, built
                # without scanning the data (and without a cache slot).
                index = HashIndex(b"", length, self.hasher)
            else:
                index = self._cache.hash_index(
                    self.data, length, self.hasher,
                    fingerprint=self._fingerprint,
                )
            self._indexes[length] = index
        return index

    def _expected_positions(self, block: Block) -> list[int]:
        """Source positions a match would occupy if it extends a neighbor."""
        positions = []
        source_after = self._source_after_end.get(block.start)
        if source_after is not None:
            positions.append(source_after)
        source_at = self._source_at_start.get(block.end)
        if source_at is not None:
            positions.append(source_at - block.length)
        return [
            p for p in positions if 0 <= p <= len(self.data) - block.length
        ]

    def _hash_matches_at(self, block: Block, position: int, value: int, width: int) -> bool:
        return self.prefix.packed(position, block.length, width) == value

    def _find_candidate(
        self, assignment: HashAssignment, value: int
    ) -> int | None:
        """Pick the client position to verify for this hash, if any."""
        block = assignment.block
        if block.length > len(self.data):
            return None
        expected = self._expected_positions(block)
        if assignment.kind is HashKind.CONTINUATION:
            for position in expected:
                if self._hash_matches_at(block, position, value, assignment.width):
                    return position
            return None
        # Extension positions are the most trustworthy — try them first.
        for position in expected:
            if self._hash_matches_at(block, position, value, assignment.width):
                return position
        if assignment.kind is HashKind.LOCAL:
            return self._local_candidate(assignment, value)
        positions = self._index(block.length).lookup(
            value,
            assignment.width,
            max_results=self.config.max_candidate_positions,
        )
        return positions[0] if positions else None

    def _local_candidate(
        self, assignment: HashAssignment, value: int
    ) -> int | None:
        """Anchored neighborhood search for a LOCAL hash (rare; scalar)."""
        block = assignment.block
        anchor = self._require_tracker().local_anchor(block)
        if anchor is None:
            return None
        anchor_start, _anchor_length = anchor
        anchor_source = self._source_at_start.get(anchor_start)
        if anchor_source is None:
            return None
        center = anchor_source + (block.start - anchor_start)
        radius = self.config.local_neighborhood
        positions = self._index(block.length).lookup_in_range(
            value,
            assignment.width,
            center - radius,
            center + radius,
            max_results=self.config.max_candidate_positions,
        )
        return positions[0] if positions else None

    def process_hashes(
        self, plan: list[HashAssignment], payload: bytes
    ) -> list[Candidate | None]:
        """Parse a hash message; return one entry per plan item.

        Derived hashes are reconstructed from the parent's stored value and
        the left sibling's value seen earlier in the same message.
        """
        if self.engine == "scalar":
            return self._process_hashes_scalar(plan, payload)
        return self._process_hashes_vectorized(plan, payload)

    def _process_hashes_scalar(
        self, plan: list[HashAssignment], payload: bytes
    ) -> list[Candidate | None]:
        """Parity oracle: the original block-at-a-time loop."""
        reader = BitReader(payload)
        parsed: dict[int, int] = {}  # id(block) -> packed value
        results: list[Candidate | None] = []
        for assignment in plan:
            block = assignment.block
            if assignment.kind is HashKind.DERIVED:
                parent = block.parent
                sibling = block.sibling
                if parent is None or sibling is None:
                    raise ProtocolError("derived hash without parent/sibling")
                if parent.known_width < assignment.width:
                    raise ProtocolError("derived hash without parent value")
                parent_value = DecomposableAdler.truncate(
                    parent.known_value, parent.known_width, assignment.width
                )
                left_value = parsed.get(id(sibling), sibling.known_value)
                value = DecomposableAdler.decompose_right_packed(
                    parent_value, left_value, assignment.width, block.length
                )
            else:
                value = reader.read(assignment.width)
            parsed[id(block)] = value
            if assignment.kind in (HashKind.GLOBAL, HashKind.DERIVED):
                block.known_value = value
            position = self._find_candidate(assignment, value)
            results.append(
                Candidate(block, position) if position is not None else None
            )
        return results

    def _process_hashes_vectorized(
        self, plan: list[HashAssignment], payload: bytes
    ) -> list[Candidate | None]:
        """Whole-plan engine: batched parse, probes, and index lookups."""
        count = len(plan)
        if count == 0:
            return []
        reader = BitReader(payload)
        values: list[int] = [0] * count
        # Parse the wire in runs of equal width (DERIVED sends no bits,
        # so the wire order is simply plan order minus DERIVED rows).
        wire_rows = [
            at for at, assignment in enumerate(plan)
            if assignment.kind is not HashKind.DERIVED
        ]
        cursor = 0
        while cursor < len(wire_rows):
            width = plan[wire_rows[cursor]].width
            stop = cursor + 1
            while (
                stop < len(wire_rows)
                and plan[wire_rows[stop]].width == width
            ):
                stop += 1
            run = reader.read_many(stop - cursor, width).tolist()
            for offset, value in enumerate(run):
                values[wire_rows[cursor + offset]] = value
            cursor = stop
        # Reconstruct DERIVED values and record known hashes in plan
        # order, so a derived row always sees its (earlier) left sibling.
        parsed: dict[int, int] = {}  # id(block) -> packed value
        for at, assignment in enumerate(plan):
            block = assignment.block
            if assignment.kind is HashKind.DERIVED:
                parent = block.parent
                sibling = block.sibling
                if parent is None or sibling is None:
                    raise ProtocolError("derived hash without parent/sibling")
                if parent.known_width < assignment.width:
                    raise ProtocolError("derived hash without parent value")
                parent_value = DecomposableAdler.truncate(
                    parent.known_value, parent.known_width, assignment.width
                )
                left_value = parsed.get(id(sibling), sibling.known_value)
                values[at] = DecomposableAdler.decompose_right_packed(
                    parent_value, left_value, assignment.width, block.length
                )
            value = values[at]
            parsed[id(block)] = value
            if assignment.kind in (HashKind.GLOBAL, HashKind.DERIVED):
                block.known_value = value
        # Batched candidate search.  Probe order matches the scalar
        # oracle: source-after-end extension first, then source-at-start,
        # then (GLOBAL/DERIVED only) the full hash index.
        data_len = len(self.data)
        starts = np.fromiter(
            (a.block.start for a in plan), dtype=np.int64, count=count
        )
        lengths = np.fromiter(
            (a.block.length for a in plan), dtype=np.int64, count=count
        )
        widths = np.fromiter(
            (a.width for a in plan), dtype=np.int64, count=count
        )
        packed_values = np.array(values, dtype=np.uint32)
        fits = lengths <= data_len
        max_start = data_len - lengths
        candidate = np.full(count, -1, dtype=np.int64)

        after_pos = self._source_after_end.get_many(starts)
        probe_after = fits & (after_pos >= 0) & (after_pos <= max_start)
        rows = np.flatnonzero(probe_after)
        if rows.size:
            full = self.prefix.block_pairs(after_pos[rows], lengths[rows])
            hit = pack_to_widths(full, widths[rows]) == packed_values[rows]
            matched = rows[hit]
            candidate[matched] = after_pos[matched]

        at_source = self._source_at_start.get_many(starts + lengths)
        at_pos = at_source - lengths
        probe_at = (
            (candidate < 0)
            & fits
            & (at_source >= 0)
            & (at_pos >= 0)
            & (at_pos <= max_start)
        )
        rows = np.flatnonzero(probe_at)
        if rows.size:
            full = self.prefix.block_pairs(at_pos[rows], lengths[rows])
            hit = pack_to_widths(full, widths[rows]) == packed_values[rows]
            matched = rows[hit]
            candidate[matched] = at_pos[matched]

        # Index lookups for still-unmatched GLOBAL/DERIVED rows, grouped
        # by (length, width) so each group is one batched searchsorted.
        index_groups: dict[tuple[int, int], list[int]] = {}
        local_rows: list[int] = []
        for at, assignment in enumerate(plan):
            if candidate[at] >= 0 or not fits[at]:
                continue
            if assignment.kind is HashKind.CONTINUATION:
                continue
            if assignment.kind is HashKind.LOCAL:
                local_rows.append(at)
                continue
            key = (assignment.block.length, assignment.width)
            index_groups.setdefault(key, []).append(at)
        for (length, width), group in index_groups.items():
            rows = np.asarray(group, dtype=np.int64)
            first = self._index(length).lookup_many(
                packed_values[rows], width
            )
            matched = rows[first >= 0]
            candidate[matched] = first[first >= 0]
        for at in local_rows:
            position = self._local_candidate(plan[at], values[at])
            if position is not None:
                candidate[at] = position

        positions = candidate.tolist()
        return [
            Candidate(assignment.block, position) if position >= 0 else None
            for assignment, position in zip(plan, positions)
        ]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def window_bytes(self, candidate: Candidate) -> bytes:
        return self.data[
            candidate.position : candidate.position + candidate.block.length
        ]

    def verification_value(
        self, unit: list[Candidate], batch: BatchSpec
    ) -> int:
        """The hash value sent to the server for this unit."""
        if batch.mode is BatchMode.INDIVIDUAL:
            return self.strong.bits(self.window_bytes(unit[0]), batch.bits)
        return self.strong.group_bits(
            (self.window_bytes(candidate) for candidate in unit), batch.bits
        )

    def verification_values(
        self, units: list[list[Candidate]], batch: BatchSpec
    ) -> list[int]:
        """Batched :meth:`verification_value`: one value per unit."""
        bits = batch.bits
        if batch.mode is BatchMode.INDIVIDUAL:
            window = self.window_bytes
            strong_bits = self.strong.bits
            return [strong_bits(window(unit[0]), bits) for unit in units]
        group_bits = self.strong.group_bits
        return [
            group_bits(
                (self.window_bytes(candidate) for candidate in unit), bits
            )
            for unit in units
        ]

    def record_accepted(self, accepted: list[Candidate]) -> None:
        """Fold confirmed matches into the map and adjacency dictionaries."""
        tracker = self._require_tracker()
        file_map = self._require_map()
        for candidate in accepted:
            block = candidate.block
            tracker.record_match(block)
            file_map.add(block.start, block.length, candidate.position)
            self._source_after_end[block.end] = candidate.position + block.length
            self._source_at_start[block.start] = candidate.position

    # ------------------------------------------------------------------
    # Delta phase
    # ------------------------------------------------------------------
    def apply_delta(self, delta: bytes) -> bytes | None:
        """Decode the final delta; ``None`` signals a failed reconstruction."""
        reference = self._require_map().reference_from_source(self.data)
        try:
            if self.config.delta_coder == "vcdiff":
                reconstructed = vcdiff_decode(reference, delta)
            else:
                reconstructed = zdelta_decode(reference, delta)
        except DeltaFormatError:
            return None
        if (
            self.server_fingerprint is not None
            and file_fingerprint(reconstructed) != self.server_fingerprint
        ):
            return None
        return reconstructed
