"""The client endpoint: owns the outdated file ``F_old`` and builds the map."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocks import Block, BlockTracker, HashAssignment, HashKind
from repro.core.config import ProtocolConfig
from repro.core.filemap import FileMap
from repro.delta import vcdiff_decode, zdelta_decode
from repro.exceptions import DeltaFormatError, ProtocolError
from repro.grouptesting.strategies import BatchMode, BatchSpec
from repro.hashing.decomposable import DecomposableAdler
from repro.hashing.scan import HashIndex, PrefixHasher
from repro.hashing.strong import StrongHasher, file_fingerprint
from repro.io.bitstream import BitReader
from repro.parallel.cache import HashIndexCache, default_cache


@dataclass(frozen=True)
class Candidate:
    """A client-side candidate match: this block ≙ my bytes at ``position``."""

    block: Block
    position: int


class ClientSession:
    """Client-side protocol state for one file synchronization."""

    def __init__(
        self,
        data: bytes,
        config: ProtocolConfig,
        cache: HashIndexCache | None = None,
    ) -> None:
        self.data = data
        self.config = config
        self.hasher = DecomposableAdler(seed=config.hash_seed)
        self.strong = StrongHasher(salt=config.hash_seed.to_bytes(8, "big"))
        self._cache = cache if cache is not None else default_cache()
        self._fingerprint = file_fingerprint(data)
        self.prefix = PrefixHasher(
            data,
            self.hasher,
            sums=self._cache.prefix_sums(
                data, self.hasher, fingerprint=self._fingerprint
            ),
        )
        self.global_bits = config.resolve_global_hash_bits(len(data))
        self.server_fingerprint: bytes | None = None
        self.tracker: BlockTracker | None = None
        self.map: FileMap | None = None
        # Source positions keyed by target offsets, for match extension.
        self._source_after_end: dict[int, int] = {}
        self._source_at_start: dict[int, int] = {}
        self._indexes: dict[int, HashIndex] = {}

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def process_handshake(self, fingerprint: bytes, server_length: int) -> bool:
        """Learn the server file identity; returns True if already in sync."""
        self.server_fingerprint = fingerprint
        self.tracker = BlockTracker(server_length, self.config)
        self.map = FileMap(server_length)
        return self._fingerprint == fingerprint

    def _require_tracker(self) -> BlockTracker:
        if self.tracker is None:
            raise ProtocolError("handshake has not completed")
        return self.tracker

    def _require_map(self) -> FileMap:
        if self.map is None:
            raise ProtocolError("handshake has not completed")
        return self.map

    # ------------------------------------------------------------------
    # Candidate search
    # ------------------------------------------------------------------
    def _index(self, length: int) -> HashIndex:
        index = self._indexes.get(length)
        if index is None:
            if length > len(self.data):
                # No window of this length exists: an empty index, built
                # without scanning the data (and without a cache slot).
                index = HashIndex(b"", length, self.hasher)
            else:
                index = self._cache.hash_index(
                    self.data, length, self.hasher,
                    fingerprint=self._fingerprint,
                )
            self._indexes[length] = index
        return index

    def _expected_positions(self, block: Block) -> list[int]:
        """Source positions a match would occupy if it extends a neighbor."""
        positions = []
        source_after = self._source_after_end.get(block.start)
        if source_after is not None:
            positions.append(source_after)
        source_at = self._source_at_start.get(block.end)
        if source_at is not None:
            positions.append(source_at - block.length)
        return [
            p for p in positions if 0 <= p <= len(self.data) - block.length
        ]

    def _hash_matches_at(self, block: Block, position: int, value: int, width: int) -> bool:
        return self.prefix.packed(position, block.length, width) == value

    def _find_candidate(
        self, assignment: HashAssignment, value: int
    ) -> int | None:
        """Pick the client position to verify for this hash, if any."""
        block = assignment.block
        if block.length > len(self.data):
            return None
        expected = self._expected_positions(block)
        if assignment.kind is HashKind.CONTINUATION:
            for position in expected:
                if self._hash_matches_at(block, position, value, assignment.width):
                    return position
            return None
        # Extension positions are the most trustworthy — try them first.
        for position in expected:
            if self._hash_matches_at(block, position, value, assignment.width):
                return position
        if assignment.kind is HashKind.LOCAL:
            anchor = self._require_tracker().local_anchor(block)
            if anchor is None:
                return None
            anchor_start, _anchor_length = anchor
            anchor_source = self._source_at_start.get(anchor_start)
            if anchor_source is None:
                return None
            center = anchor_source + (block.start - anchor_start)
            radius = self.config.local_neighborhood
            positions = self._index(block.length).lookup_in_range(
                value,
                assignment.width,
                center - radius,
                center + radius,
                max_results=self.config.max_candidate_positions,
            )
            return positions[0] if positions else None
        positions = self._index(block.length).lookup(
            value,
            assignment.width,
            max_results=self.config.max_candidate_positions,
        )
        return positions[0] if positions else None

    def process_hashes(
        self, plan: list[HashAssignment], payload: bytes
    ) -> list[Candidate | None]:
        """Parse a hash message; return one entry per plan item.

        Derived hashes are reconstructed from the parent's stored value and
        the left sibling's value seen earlier in the same message.
        """
        reader = BitReader(payload)
        parsed: dict[int, int] = {}  # id(block) -> packed value
        results: list[Candidate | None] = []
        for assignment in plan:
            block = assignment.block
            if assignment.kind is HashKind.DERIVED:
                parent = block.parent
                sibling = block.sibling
                if parent is None or sibling is None:
                    raise ProtocolError("derived hash without parent/sibling")
                if parent.known_width < assignment.width:
                    raise ProtocolError("derived hash without parent value")
                parent_value = DecomposableAdler.truncate(
                    parent.known_value, parent.known_width, assignment.width
                )
                left_value = parsed.get(id(sibling), sibling.known_value)
                value = DecomposableAdler.decompose_right_packed(
                    parent_value, left_value, assignment.width, block.length
                )
            else:
                value = reader.read(assignment.width)
            parsed[id(block)] = value
            if assignment.kind in (HashKind.GLOBAL, HashKind.DERIVED):
                block.known_value = value
            position = self._find_candidate(assignment, value)
            results.append(
                Candidate(block, position) if position is not None else None
            )
        return results

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def window_bytes(self, candidate: Candidate) -> bytes:
        return self.data[
            candidate.position : candidate.position + candidate.block.length
        ]

    def verification_value(
        self, unit: list[Candidate], batch: BatchSpec
    ) -> int:
        """The hash value sent to the server for this unit."""
        if batch.mode is BatchMode.INDIVIDUAL:
            return self.strong.bits(self.window_bytes(unit[0]), batch.bits)
        return self.strong.group_bits(
            (self.window_bytes(candidate) for candidate in unit), batch.bits
        )

    def record_accepted(self, accepted: list[Candidate]) -> None:
        """Fold confirmed matches into the map and adjacency dictionaries."""
        tracker = self._require_tracker()
        file_map = self._require_map()
        for candidate in accepted:
            block = candidate.block
            tracker.record_match(block)
            file_map.add(block.start, block.length, candidate.position)
            self._source_after_end[block.end] = candidate.position + block.length
            self._source_at_start[block.start] = candidate.position

    # ------------------------------------------------------------------
    # Delta phase
    # ------------------------------------------------------------------
    def apply_delta(self, delta: bytes) -> bytes | None:
        """Decode the final delta; ``None`` signals a failed reconstruction."""
        reference = self._require_map().reference_from_source(self.data)
        try:
            if self.config.delta_coder == "vcdiff":
                reconstructed = vcdiff_decode(reference, delta)
            else:
                reconstructed = zdelta_decode(reference, delta)
        except DeltaFormatError:
            return None
        if (
            self.server_fingerprint is not None
            and file_fingerprint(reconstructed) != self.server_fingerprint
        ):
            return None
        return reconstructed
