"""Configuration of the multi-round synchronization protocol.

The paper's prototype is driven by "a simple parameter file ... to specify
all the options and techniques that should be used in each round";
:class:`ProtocolConfig` plays that role.  The defaults correspond to the
paper's best practical setting: recursive halving with decomposable
hashes, two-phase rounds (continuation hashes first), and two-batch group
verification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.exceptions import ConfigError
from repro.grouptesting.strategies import VerificationStrategy, make_strategy

#: Upper bound on the automatically chosen starting block size.
MAX_START_BLOCK_SIZE = 32768


@dataclass(frozen=True)
class ProtocolConfig:
    """All tunables of the map-construction and delta phases.

    Parameters
    ----------
    start_block_size:
        Block size of the first round.  ``None`` picks a size based on the
        server file length (roughly ``n / 4``, clamped).
    min_block_size:
        Smallest block size for which *global* hashes (compared against
        every client position) are sent.  Figures 6.1/6.2 sweep this.
    continuation_min_block_size:
        Smallest block size for which *continuation* hashes (compared only
        at positions adjacent to confirmed matches) are sent; may be much
        smaller than ``min_block_size`` because the hashes are tiny.
        ``None`` disables continuation hashes.
    continuation_first:
        Split every round into a continuation sub-phase followed by a
        global sub-phase, enabling the paper's omission rules (skip global
        hashes for blocks whose sibling matched, or whose own continuation
        hash just failed).
    use_decomposable:
        Suppress the right sibling's global hash whenever the client can
        derive it from the parent's and the left sibling's.
    global_hash_bits:
        Width of global candidate hashes.  ``None`` uses
        ``ceil(log2(n)) + 3`` for a client file of length ``n`` (enough to
        keep the expected number of false candidates per hash near 1/8;
        verification mops up the rest).
    continuation_hash_bits:
        Width of continuation hashes (the paper uses 4–8 bits).
    use_local_hashes / local_hash_bits / local_neighborhood:
        The paper's local-hash variant: intermediate-width hashes compared
        only within a neighborhood of confirmed matches.  Off by default —
        the paper "were unable to get any significant improvements".
    verification:
        Name of a :mod:`repro.grouptesting.strategies` strategy.
    max_candidate_positions:
        How many client positions per global hash are considered before
        picking the verification candidate.
    delta_coder:
        ``"zdelta"`` or ``"vcdiff"`` for the final phase.
    hash_seed:
        Seed of the decomposable hash's substitution table; both parties
        derive the same table from it.  A retry after a whole-file
        checksum failure would bump this seed.
    """

    start_block_size: int | None = None
    min_block_size: int = 64
    continuation_min_block_size: int | None = 16
    continuation_first: bool = True
    use_decomposable: bool = True
    global_hash_bits: int | None = None
    continuation_hash_bits: int = 6
    use_local_hashes: bool = False
    local_hash_bits: int = 10
    local_neighborhood: int = 4096
    verification: str = "group2"
    max_candidate_positions: int = 4
    delta_coder: str = "zdelta"
    hash_seed: int = 1
    #: Stop map construction after this many rounds (block-size levels)
    #: and go straight to the delta.  ``None`` recurses to the floor.
    #: The paper's §7 asks how well one can do "restricted to just one or
    #: two round-trips"; this knob answers it (see the rounds ablation).
    max_rounds: int | None = None
    #: Record a per-sub-phase :class:`~repro.core.trace.SubphaseTrace` on
    #: the result (hash counts by kind, bits, candidates, confirmations).
    collect_trace: bool = False
    #: After map construction, binary-search the exact byte boundary of
    #: each confirmed match into its neighbouring gap (the §5.4
    #: searching-with-liars game), so the delta no longer carries bytes
    #: the client already holds below block granularity.
    refine_boundaries: bool = False
    #: Width of each refinement probe hash (the lying oracle's answer).
    refinement_hash_bits: int = 8
    #: Width of the final boundary confirmation hash.
    refinement_confirm_bits: int = 16
    #: On a whole-file checksum failure, re-run the protocol this many
    #: times with a different hash seed before falling back to a full
    #: transfer — the paper: "the algorithm could be repeated with
    #: different hashes, or we can simply transfer the entire file".
    collision_retries: int = 0

    def __post_init__(self) -> None:
        if self.start_block_size is not None and self.start_block_size < 2:
            raise ConfigError(
                f"start_block_size must be >= 2, got {self.start_block_size}"
            )
        if self.min_block_size < 2:
            raise ConfigError(
                f"min_block_size must be >= 2, got {self.min_block_size}"
            )
        if (
            self.start_block_size is not None
            and self.start_block_size < self.min_block_size
        ):
            raise ConfigError("start_block_size must be >= min_block_size")
        if self.continuation_min_block_size is not None:
            if self.continuation_min_block_size < 2:
                raise ConfigError("continuation_min_block_size must be >= 2")
            if self.continuation_min_block_size > self.min_block_size:
                raise ConfigError(
                    "continuation_min_block_size must not exceed min_block_size"
                )
        if not 1 <= self.continuation_hash_bits <= 16:
            raise ConfigError(
                "continuation_hash_bits must be in [1, 16], got "
                f"{self.continuation_hash_bits}"
            )
        if self.global_hash_bits is not None and not 4 <= self.global_hash_bits <= 32:
            raise ConfigError(
                f"global_hash_bits must be in [4, 32], got {self.global_hash_bits}"
            )
        if not 1 <= self.local_hash_bits <= 32:
            raise ConfigError(
                f"local_hash_bits must be in [1, 32], got {self.local_hash_bits}"
            )
        if self.local_neighborhood < 1:
            raise ConfigError("local_neighborhood must be positive")
        if self.delta_coder not in ("zdelta", "vcdiff"):
            raise ConfigError(
                f"delta_coder must be 'zdelta' or 'vcdiff', got {self.delta_coder!r}"
            )
        if self.max_candidate_positions < 1:
            raise ConfigError("max_candidate_positions must be >= 1")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ConfigError("max_rounds must be >= 1 or None")
        if not 1 <= self.refinement_hash_bits <= 32:
            raise ConfigError("refinement_hash_bits must be in [1, 32]")
        if not 4 <= self.refinement_confirm_bits <= 64:
            raise ConfigError("refinement_confirm_bits must be in [4, 64]")
        if self.collision_retries < 0:
            raise ConfigError("collision_retries must be non-negative")
        # Validates the name eagerly.
        make_strategy(self.verification)

    @property
    def continuation_enabled(self) -> bool:
        return self.continuation_min_block_size is not None

    @property
    def floor_block_size(self) -> int:
        """Smallest block size any technique may hash."""
        if self.continuation_enabled:
            assert self.continuation_min_block_size is not None
            return self.continuation_min_block_size
        return self.min_block_size

    def strategy(self) -> VerificationStrategy:
        """The verification strategy object."""
        return make_strategy(self.verification)

    def resolve_start_block_size(self, server_length: int) -> int:
        """Starting block size for a server file of ``server_length`` bytes."""
        if self.start_block_size is not None:
            return self.start_block_size
        if server_length <= 4 * self.min_block_size:
            return max(self.min_block_size, 2)
        target = max(self.min_block_size * 4, server_length // 4)
        size = 1 << int(math.ceil(math.log2(target)))
        return min(size, MAX_START_BLOCK_SIZE)

    def resolve_global_hash_bits(self, client_length: int) -> int:
        """Width of global candidate hashes for a client file of ``n`` bytes."""
        if self.global_hash_bits is not None:
            return self.global_hash_bits
        bits = int(math.ceil(math.log2(max(client_length, 2)))) + 3
        return max(8, min(bits, 30))

    def with_overrides(self, **changes: object) -> "ProtocolConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)  # type: ignore[arg-type]
