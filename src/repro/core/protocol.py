"""Orchestration of one file synchronization over the simulated channel.

:func:`synchronize` drives both endpoints through the full exchange:

1. handshake (client file length →; server fingerprint + file length ←);
2. rounds of map construction — per block size, an optional continuation
   sub-phase followed by a global sub-phase, each consisting of a hash
   message, a candidate bitmap, and the verification batches of the
   configured group-testing strategy;
3. the final delta, checked against the whole-file fingerprint, with a
   compressed full transfer as the (accounted) fallback.

Both sessions evolve mirrored block trees; any divergence is a bug and
raises :class:`~repro.exceptions.ProtocolError` immediately.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import Block, HashAssignment, HashKind
from repro.core.client import Candidate, ClientSession
from repro.core.config import ProtocolConfig
from repro.core.engine import resolve_engine
from repro.core.planning import (
    apply_known_hashes,
    plan_continuation,
    plan_global,
    plan_mixed,
)
from repro.core.server import ServerSession
from repro.core.trace import SubphaseTrace
from repro.core.verification import VerificationPools, make_units
from repro.exceptions import ProtocolError, SyncStalledError
from repro.io.bitstream import BitReader, BitWriter
from repro.net.channel import SimulatedChannel
from repro.net.metrics import Direction, TransferStats

PHASE_HANDSHAKE = "handshake"
PHASE_MAP = "map"
PHASE_DELTA = "delta"
PHASE_FALLBACK = "fallback"

#: Hard stall circuit for map construction.  A healthy session's round
#: count is bounded by the block-split depth (~log2 of the file size, so
#: < 64 even for exabyte files); hitting this ceiling means the frontier
#: stopped converging (adversarial corruption, a forged resume, a bug)
#: and the session dies with a typed error instead of looping.  Distinct
#: from ``config.max_rounds``, which is a *graceful* byte/latency cap.
_STALL_ROUND_LIMIT = 96


@dataclass
class SyncResult:
    """Outcome of one synchronization run."""

    reconstructed: bytes
    stats: TransferStats
    unchanged: bool
    used_fallback: bool
    matched_blocks: int
    known_fraction: float
    rounds: int
    #: Continuation-hash bookkeeping: how many continuation hashes found
    #: a candidate, and how many of those were confirmed.  Their ratio is
    #: the paper's "harvest rate" (high for continuation hashes, which is
    #: why they remain profitable at tiny block sizes).
    continuation_candidates: int = 0
    continuation_accepted: int = 0
    #: Per-sub-phase instrumentation; populated when the config sets
    #: ``collect_trace=True``.
    trace: "list[SubphaseTrace]" = field(default_factory=list)

    @property
    def continuation_harvest_rate(self) -> float:
        """Confirmed fraction of continuation candidates (1.0 if none)."""
        if self.continuation_candidates == 0:
            return 1.0
        return self.continuation_accepted / self.continuation_candidates

    @property
    def total_bytes(self) -> int:
        return self.stats.total_bytes

    @property
    def map_bytes(self) -> int:
        return self.stats.bytes_in_phase(PHASE_MAP)

    @property
    def delta_bytes(self) -> int:
        return self.stats.bytes_in_phase(PHASE_DELTA)


def _check_plans_match(
    server_plan: list[HashAssignment], client_plan: list[HashAssignment]
) -> None:
    """Defensive mirror check (free in-process; a real deployment relies
    on determinism alone)."""
    if len(server_plan) != len(client_plan):
        raise ProtocolError(
            f"endpoint plans diverged: {len(server_plan)} vs {len(client_plan)}"
        )
    for ours, theirs in zip(server_plan, client_plan):
        if (
            ours.kind is not theirs.kind
            or ours.width != theirs.width
            or ours.block.start != theirs.block.start
            or ours.block.length != theirs.block.length
        ):
            raise ProtocolError(
                f"endpoint plans diverged at block {ours.block.start}"
            )


def _run_verification(
    channel: SimulatedChannel,
    client: ClientSession,
    server: ServerSession,
    candidates: list[Candidate],
    server_blocks: list[Block],
) -> tuple[list[Candidate], list[Block], int]:
    """Execute the configured verification strategy for one sub-phase.

    Returns the accepted candidates/blocks plus the client->server
    verification bits spent (for tracing).
    """
    strategy = client.config.strategy()
    client_pools: VerificationPools[Candidate] = VerificationPools(
        main=list(candidates)
    )
    server_pools: VerificationPools[Block] = VerificationPools(
        main=list(server_blocks)
    )
    verification_bits = 0
    vectorized = client.engine == "vectorized"
    for batch in strategy.batches:
        client_selection = client_pools.select(batch)
        server_selection = server_pools.select(batch)
        if len(client_selection) != len(server_selection):
            raise ProtocolError("verification pools diverged")
        if not client_selection:
            continue
        client_units = make_units(client_selection, batch)
        server_units = make_units(server_selection, batch)

        writer = BitWriter()
        if vectorized:
            writer.write_many(
                np.asarray(
                    client.verification_values(client_units, batch),
                    dtype=np.uint64,
                ),
                batch.bits,
            )
        else:
            for unit in client_units:
                writer.write(
                    client.verification_value(unit, batch), batch.bits
                )
        verification_bits += writer.bit_length
        channel.send(
            Direction.CLIENT_TO_SERVER,
            writer.getvalue(),
            PHASE_MAP,
            bits=writer.bit_length,
        )

        reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
        if vectorized:
            received_values = reader.read_many(
                len(server_units), batch.bits
            ).tolist()
            expected_values = server.verification_values(server_units, batch)
            passed = [
                received == expected
                for received, expected in zip(received_values, expected_values)
            ]
        else:
            passed = []
            for unit in server_units:
                received = reader.read(batch.bits)
                passed.append(
                    received == server.verification_value(unit, batch)
                )

        bitmap = BitWriter()
        if vectorized:
            bitmap.write_flags(passed)
        else:
            for ok in passed:
                bitmap.write_bit(ok)
        channel.send(
            Direction.SERVER_TO_CLIENT,
            bitmap.getvalue(),
            PHASE_MAP,
            bits=bitmap.bit_length,
        )
        confirm = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
        if vectorized:
            client_passed = confirm.read_flags(len(client_units)).tolist()
        else:
            client_passed = [bool(confirm.read_bit()) for _ in client_units]

        client_pools.apply(batch, client_units, client_passed)
        server_pools.apply(batch, server_units, passed)
    return client_pools.finish(), server_pools.finish(), verification_bits


def _run_subphase(
    channel: SimulatedChannel,
    client: ClientSession,
    server: ServerSession,
    server_plan: list[HashAssignment],
    client_plan: list[HashAssignment],
    round_index: int = 0,
) -> tuple[int, int, "SubphaseTrace | None"]:
    """One hash message + candidate bitmap + verification exchange.

    Returns ``(continuation_candidates, continuation_accepted, trace)``.
    """
    _check_plans_match(server_plan, client_plan)
    if not server_plan:
        return (0, 0, None)

    payload = server.emit_hashes(server_plan)
    payload_bits = sum(a.transmitted_bits for a in server_plan)
    channel.send(
        Direction.SERVER_TO_CLIENT, payload, PHASE_MAP, bits=payload_bits
    )
    candidates_by_plan = client.process_hashes(
        client_plan, channel.receive(Direction.SERVER_TO_CLIENT)
    )

    bitmap = BitWriter()
    if client.engine == "vectorized":
        bitmap.write_flags(
            [candidate is not None for candidate in candidates_by_plan]
        )
    else:
        for candidate in candidates_by_plan:
            bitmap.write_bit(candidate is not None)
    channel.send(
        Direction.CLIENT_TO_SERVER,
        bitmap.getvalue(),
        PHASE_MAP,
        bits=bitmap.bit_length,
    )
    reader = BitReader(channel.receive(Direction.CLIENT_TO_SERVER))
    if server.engine == "vectorized":
        server_flags = reader.read_flags(len(server_plan)).tolist()
    else:
        server_flags = [bool(reader.read_bit()) for _ in server_plan]

    candidates = [c for c in candidates_by_plan if c is not None]
    server_blocks = [
        assignment.block
        for assignment, flagged in zip(server_plan, server_flags)
        if flagged
    ]

    accepted_candidates, accepted_blocks, verification_bits = (
        _run_verification(channel, client, server, candidates, server_blocks)
    )

    client.record_accepted(accepted_candidates)
    for block in accepted_blocks:
        server.tracker.record_match(block)

    # Both endpoints now mark failed continuation attempts identically.
    accepted_client_ids = {id(c.block) for c in accepted_candidates}
    accepted_server_ids = {id(b) for b in accepted_blocks}
    continuation_candidates = 0
    continuation_accepted = 0
    for (s_assignment, c_assignment), candidate in zip(
        zip(server_plan, client_plan), candidates_by_plan
    ):
        if s_assignment.kind is HashKind.CONTINUATION:
            if candidate is not None:
                continuation_candidates += 1
                if id(c_assignment.block) in accepted_client_ids:
                    continuation_accepted += 1
            if id(s_assignment.block) not in accepted_server_ids:
                s_assignment.block.continuation_failed = True
            if id(c_assignment.block) not in accepted_client_ids:
                c_assignment.block.continuation_failed = True

    apply_known_hashes(server_plan)
    apply_known_hashes(client_plan)

    trace = None
    if client.config.collect_trace:
        hash_counts: dict[HashKind, int] = {}
        for assignment in server_plan:
            hash_counts[assignment.kind] = hash_counts.get(assignment.kind, 0) + 1
        trace = SubphaseTrace(
            round_index=round_index,
            block_length=max(a.block.length for a in server_plan),
            hash_counts=hash_counts,
            hash_bits_sent=payload_bits,
            candidates=len(candidates),
            accepted=len(accepted_candidates),
            verification_bits=verification_bits,
        )
    return (continuation_candidates, continuation_accepted, trace)


class CoreSyncSession:
    """Resumable step-wise state machine for one core-protocol exchange.

    The schedulable decomposition of :func:`synchronize` — handshake
    (:meth:`start`), one map-construction round per :meth:`step_round`,
    and the refinement/delta/fallback endgame (:meth:`finish`) — with
    the exact send/receive sequence of the former run-to-completion
    loop, so the sequential driver below stays byte-identical and the
    pipelined collection scheduler can interleave many sessions' rounds
    over one shared channel.

    Round checkpoints (``checkpointer``) use the same
    :func:`~repro.core.snapshot.snapshot_round_state` payloads as
    before, so checkpoints stay interchangeable between schedulers and
    engines.
    """

    def __init__(
        self,
        client_data: bytes,
        server_data: bytes,
        config: ProtocolConfig | None = None,
        checkpointer=None,
        engine: str | None = None,
    ) -> None:
        self.client_data = client_data
        self.server_data = server_data
        self.config = config or ProtocolConfig()
        self.checkpointer = checkpointer
        self.engine = resolve_engine(engine)
        self.server = ServerSession(server_data, self.config, engine=self.engine)
        self.client = ClientSession(client_data, self.config, engine=self.engine)
        self.rounds = 0
        self.unchanged = False
        self.continuation_candidates = 0
        self.continuation_accepted = 0
        self.trace: list[SubphaseTrace] = []
        self._started = False
        self._no_more = False

    # ------------------------------------------------------------------
    def start(self, channel: SimulatedChannel, resume_from=None) -> None:
        """Run the handshake, or restore a checkpointed round boundary."""
        if resume_from is not None:
            from repro.core.snapshot import restore_round_state

            (
                self.rounds,
                self.continuation_candidates,
                self.continuation_accepted,
            ) = restore_round_state(resume_from.payload, self.client, self.server)
        else:
            # --- Handshake ---------------------------------------------
            request = BitWriter()
            request.write_uvarint(len(self.client_data))
            channel.send(
                Direction.CLIENT_TO_SERVER,
                request.getvalue(),
                PHASE_HANDSHAKE,
                bits=request.bit_length,
            )
            self.server.set_client_length(
                BitReader(
                    channel.receive(Direction.CLIENT_TO_SERVER)
                ).read_uvarint()
            )

            hello = BitWriter()
            hello.write_bytes(self.server.fingerprint())
            hello.write_uvarint(len(self.server_data))
            channel.send(
                Direction.SERVER_TO_CLIENT, hello.getvalue(), PHASE_HANDSHAKE
            )
            hello_reader = BitReader(channel.receive(Direction.SERVER_TO_CLIENT))
            self.unchanged = self.client.process_handshake(
                hello_reader.read_bytes(16), hello_reader.read_uvarint()
            )

            channel.send(
                Direction.CLIENT_TO_SERVER,
                b"\x00" if self.unchanged else b"\x01",
                PHASE_HANDSHAKE,
                bits=1,
            )
            channel.receive(Direction.CLIENT_TO_SERVER)
        if not self.unchanged:
            assert self.server.global_bits is not None
        self._started = True

    @property
    def done(self) -> bool:
        """True when no map-construction rounds remain.

        Mirrors the former loop condition exactly: the ``max_rounds``
        guard doubles as part of the condition so a run resumed *at* the
        cap does not buy extra rounds.
        """
        if not self._started:
            return False
        if self.unchanged or self._no_more:
            return True
        if not (
            self.server.tracker.has_active()
            or self.client._require_tracker().has_active()
        ):
            return True
        config = self.config
        return config.max_rounds is not None and self.rounds >= config.max_rounds

    # ------------------------------------------------------------------
    def step_round(self, channel: SimulatedChannel) -> None:
        """Execute exactly one map-construction round, checkpoint included."""
        if not self._started:
            raise ValueError("step_round before start()")
        config = self.config
        self.rounds += 1
        if self.rounds > _STALL_ROUND_LIMIT:
            raise SyncStalledError(
                f"map construction still has active blocks after "
                f"{_STALL_ROUND_LIMIT} rounds — session is not converging"
            )
        channel.mark_round(self.rounds)
        client_tracker = self.client._require_tracker()
        if config.continuation_first and config.continuation_enabled:
            planners = [
                lambda tracker, bits: plan_continuation(tracker),
                plan_global,
            ]
        else:
            planners = [plan_mixed]
        for planner in planners:
            # Plans must be derived immediately before each sub-phase:
            # the continuation sub-phase's confirmations feed the global
            # sub-phase's skip rules.
            found, accepted, subphase_trace = _run_subphase(
                channel,
                self.client,
                self.server,
                planner(self.server.tracker, self.server.global_bits),
                planner(client_tracker, self.client.global_bits),
                round_index=self.rounds,
            )
            self.continuation_candidates += found
            self.continuation_accepted += accepted
            if subphase_trace is not None:
                self.trace.append(subphase_trace)
        more_server = self.server.tracker.advance_level()
        more_client = client_tracker.advance_level()
        if more_server != more_client:
            raise ProtocolError("endpoint trees diverged while splitting")
        if self.checkpointer is not None:
            from repro.core.snapshot import snapshot_round_state

            self.checkpointer.record_round(
                self.rounds,
                snapshot_round_state(
                    self.client,
                    self.server,
                    self.rounds,
                    self.continuation_candidates,
                    self.continuation_accepted,
                ),
                channel.stats,
            )
        if not more_server:
            self._no_more = True

    # ------------------------------------------------------------------
    def finish(self, channel: SimulatedChannel) -> SyncResult:
        """Refinement, delta and the fingerprint-guarded endgame."""
        if self.unchanged:
            return SyncResult(
                reconstructed=self.client_data,
                stats=channel.stats,
                unchanged=True,
                used_fallback=False,
                matched_blocks=0,
                known_fraction=1.0,
                rounds=0,
                trace=[],
            )
        config = self.config

        # --- Boundary refinement (optional, §5.4) ----------------------
        if config.refine_boundaries:
            from repro.core.refine import run_boundary_refinement

            run_boundary_refinement(channel, self.client, self.server)

        # --- Delta phase -----------------------------------------------
        delta = self.server.emit_delta()
        channel.send(Direction.SERVER_TO_CLIENT, delta, PHASE_DELTA)
        reconstructed = self.client.apply_delta(
            channel.receive(Direction.SERVER_TO_CLIENT)
        )

        used_fallback = False
        if reconstructed is None:
            used_fallback = True
            channel.send(
                Direction.CLIENT_TO_SERVER, b"\x01", PHASE_FALLBACK, bits=1
            )
            channel.receive(Direction.CLIENT_TO_SERVER)
            if config.collision_retries > 0:
                # Repeat with an independent hash function (different
                # substitution table); all bytes land on the same channel.
                retry_config = config.with_overrides(
                    hash_seed=config.hash_seed + 1,
                    collision_retries=config.collision_retries - 1,
                )
                retry = synchronize(
                    self.client_data,
                    self.server_data,
                    retry_config,
                    channel,
                    engine=self.engine,
                )
                retry.used_fallback = True
                return retry
            channel.send(
                Direction.SERVER_TO_CLIENT,
                zlib.compress(self.server_data, 9),
                PHASE_FALLBACK,
            )
            reconstructed = zlib.decompress(
                channel.receive(Direction.SERVER_TO_CLIENT)
            )
        else:
            channel.send(
                Direction.CLIENT_TO_SERVER, b"\x00", PHASE_FALLBACK, bits=1
            )
            channel.receive(Direction.CLIENT_TO_SERVER)

        file_map = self.client._require_map()
        return SyncResult(
            reconstructed=reconstructed,
            stats=channel.stats,
            unchanged=False,
            used_fallback=used_fallback,
            matched_blocks=len(file_map),
            known_fraction=file_map.known_fraction,
            rounds=self.rounds,
            continuation_candidates=self.continuation_candidates,
            continuation_accepted=self.continuation_accepted,
            trace=self.trace,
        )


def synchronize(
    client_data: bytes,
    server_data: bytes,
    config: ProtocolConfig | None = None,
    channel: SimulatedChannel | None = None,
    checkpointer=None,
    resume_from=None,
    engine: str | None = None,
) -> SyncResult:
    """Synchronise the client's file to the server's current version.

    Always returns a reconstruction equal to ``server_data``; the
    whole-file fingerprint plus the full-transfer fallback guarantee it
    even under (engineered) hash collisions.

    ``checkpointer`` (an opened
    :class:`~repro.resilience.checkpoint.SessionJournal`) snapshots both
    endpoints after every completed round; ``resume_from`` (a
    :class:`~repro.resilience.checkpoint.RoundCheckpoint`) rebuilds that
    state and continues, skipping the handshake and the already-completed
    rounds.  The caller of a resumed run is expected to have seeded
    ``channel.stats`` with the checkpoint's counters so the returned
    stats cover the whole logical session.

    ``engine`` selects the round engine (``"vectorized"`` | ``"scalar"``,
    ``None`` = the ``REPRO_PROTOCOL_ENGINE`` environment default); both
    put byte-identical traffic on the wire and write interchangeable
    checkpoints, so a resumed run may use a different engine than the one
    that crashed.

    This is the sequential driver over :class:`CoreSyncSession`; the
    pipelined collection scheduler drives the same state machine with
    the rounds of many files interleaved.
    """
    if channel is None:
        channel = SimulatedChannel()
    session = CoreSyncSession(
        client_data, server_data, config, checkpointer=checkpointer, engine=engine
    )
    session.start(channel, resume_from=resume_from)
    while not session.done:
        session.step_round(channel)
    return session.finish(channel)
