"""Byte-oriented LEB128 varints for the delta instruction streams."""

from __future__ import annotations


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint value must be non-negative, got {value}")
    out = bytearray()
    while True:
        chunk = value & 0x7F
        value >>= 7
        out.append(chunk | (0x80 if value else 0))
        if not value:
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    value = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7
        if shift > 63:
            raise ValueError("uvarint too long")


def uvarint_size(value: int) -> int:
    """Number of bytes :func:`encode_uvarint` uses for ``value``."""
    if value < 0:
        raise ValueError(f"uvarint value must be non-negative, got {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size
