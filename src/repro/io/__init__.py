"""Bit-level I/O primitives used to serialise protocol messages.

The synchronization protocols transmit hashes of arbitrary bit widths
(4-bit continuation hashes, 13-bit candidate hashes, ...) plus bitmaps, so
honest bandwidth accounting requires genuinely bit-packed encodings rather
than byte-aligned approximations.
"""

from repro.io.bitstream import BitReader, BitWriter
from repro.io.varint import decode_uvarint, encode_uvarint, uvarint_size

__all__ = [
    "BitReader",
    "BitWriter",
    "decode_uvarint",
    "encode_uvarint",
    "uvarint_size",
]
