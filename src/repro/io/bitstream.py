"""Bit-packed writer and reader.

``BitWriter`` accumulates values of explicit bit widths (MSB-first within
each value, bits packed LSB-first into bytes) and produces a ``bytes``
payload.  ``BitReader`` decodes such a payload.  The pair is used by the
protocol message codecs so transmitted message sizes reflect the exact
number of bits the paper's protocol would put on the wire.

The batched variants (``write_many``/``write_flags`` and
``read_many``/``read_flags``) move whole-round arrays of equal-width
values in one numpy pass — the per-value loop is what made map
construction the protocol bottleneck (DESIGN §13).  They are bit-exact
drop-ins for the equivalent sequence of scalar calls: ``np.packbits``
and ``np.unpackbits`` with ``bitorder="little"`` reproduce exactly the
LSB-first byte packing of :meth:`BitWriter.write`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


class BitWriter:
    """Accumulates unsigned integers with explicit bit widths.

    Example::

        w = BitWriter()
        w.write(5, 3)        # three bits
        w.write(1, 1)        # one bit
        payload = w.getvalue()
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._pending_bits = 0

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buffer) + self._pending_bits

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self)

    def write(self, value: int, width: int) -> None:
        """Append ``value`` using exactly ``width`` bits.

        Raises ``ValueError`` if ``value`` does not fit in ``width`` bits.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._accumulator |= value << self._pending_bits
        self._pending_bits += width
        while self._pending_bits >= 8:
            self._buffer.append(self._accumulator & 0xFF)
            self._accumulator >>= 8
            self._pending_bits -= 8

    def write_bit(self, bit: int | bool) -> None:
        """Append a single bit."""
        self.write(1 if bit else 0, 1)

    def write_bits(self, values: Iterable[int], width: int) -> None:
        """Append each value in ``values`` using ``width`` bits."""
        for value in values:
            self.write(value, width)

    def _append_bit_array(self, bits: "np.ndarray") -> None:
        """Append a 0/1 ``uint8`` array of individual bits (LSB-first)."""
        if self._pending_bits:
            pending = (
                np.uint64(self._accumulator)
                >> np.arange(self._pending_bits, dtype=np.uint64)
            ) & np.uint64(1)
            bits = np.concatenate([pending.astype(np.uint8), bits])
        packed = np.packbits(bits, bitorder="little")
        full_bytes, remainder = divmod(int(bits.size), 8)
        self._buffer += packed[:full_bytes].tobytes()
        self._accumulator = int(packed[full_bytes]) if remainder else 0
        self._pending_bits = remainder

    def write_many(self, values, width: int) -> None:
        """Append every value using ``width`` bits each, in one numpy pass.

        Bit-exact equivalent of ``for v in values: self.write(v, width)``.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        values = np.asarray(values, dtype=np.uint64)
        if values.size == 0:
            return
        if width < 64 and bool((values >> np.uint64(width)).any()):
            bad = int(values[(values >> np.uint64(width)) != 0][0])
            raise ValueError(f"value {bad} does not fit in {width} bits")
        if width == 0:
            return
        shifts = np.arange(width, dtype=np.uint64)
        bits = (
            (values[:, None] >> shifts) & np.uint64(1)
        ).astype(np.uint8).ravel()
        self._append_bit_array(bits)

    def write_flags(self, flags) -> None:
        """Append one bit per element (batched :meth:`write_bit`)."""
        arr = np.asarray(flags)
        if arr.size == 0:
            return
        self._append_bit_array((arr != 0).astype(np.uint8))

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes (8 bits each, in order)."""
        for byte in data:
            self.write(byte, 8)

    def write_uvarint(self, value: int) -> None:
        """Append ``value`` as a LEB128-style varint (7 data bits/byte)."""
        if value < 0:
            raise ValueError(f"uvarint value must be non-negative, got {value}")
        while True:
            chunk = value & 0x7F
            value >>= 7
            self.write(chunk | (0x80 if value else 0), 8)
            if not value:
                return

    def getvalue(self) -> bytes:
        """Return the accumulated payload, zero-padding the final byte."""
        result = bytes(self._buffer)
        if self._pending_bits:
            result += bytes([self._accumulator & 0xFF])
        return result


class BitReader:
    """Decodes a payload produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # in bits

    @property
    def remaining_bits(self) -> int:
        """Number of unread bits (including any final-byte padding)."""
        return 8 * len(self._data) - self._position

    def read(self, width: int) -> int:
        """Read an unsigned integer of ``width`` bits.

        Raises ``EOFError`` if fewer than ``width`` bits remain.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if width > self.remaining_bits:
            raise EOFError(
                f"requested {width} bits but only {self.remaining_bits} remain"
            )
        value = 0
        produced = 0
        while produced < width:
            byte_index, bit_offset = divmod(self._position, 8)
            take = min(8 - bit_offset, width - produced)
            chunk = (self._data[byte_index] >> bit_offset) & ((1 << take) - 1)
            value |= chunk << produced
            produced += take
            self._position += take
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read(1)

    def read_bits(self, count: int, width: int) -> list[int]:
        """Read ``count`` values of ``width`` bits each."""
        return [self.read(width) for _ in range(count)]

    def _read_bit_array(self, total_bits: int) -> "np.ndarray":
        """Consume ``total_bits`` bits as a 0/1 ``uint8`` array."""
        if total_bits > self.remaining_bits:
            raise EOFError(
                f"requested {total_bits} bits but only "
                f"{self.remaining_bits} remain"
            )
        start_byte, offset = divmod(self._position, 8)
        end_byte = (self._position + total_bits + 7) // 8
        raw = np.frombuffer(
            self._data, dtype=np.uint8, count=end_byte - start_byte,
            offset=start_byte,
        )
        bits = np.unpackbits(raw, bitorder="little")[
            offset : offset + total_bits
        ]
        self._position += total_bits
        return bits

    def read_many(self, count: int, width: int) -> "np.ndarray":
        """Read ``count`` values of ``width`` bits each as a uint64 array.

        Bit-exact equivalent of ``[self.read(width) for _ in range(count)]``.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0 or width == 0:
            self._read_bit_array(0)
            return np.zeros(count, dtype=np.uint64)
        bits = self._read_bit_array(count * width)
        weights = np.uint64(1) << np.arange(width, dtype=np.uint64)
        return (bits.reshape(count, width) * weights).sum(
            axis=1, dtype=np.uint64
        )

    def read_flags(self, count: int) -> "np.ndarray":
        """Read ``count`` single bits as a boolean array."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self._read_bit_array(count).astype(bool)

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` raw bytes."""
        return bytes(self.read(8) for _ in range(count))

    def read_uvarint(self) -> int:
        """Read a varint written by :meth:`BitWriter.write_uvarint`."""
        value = 0
        shift = 0
        while True:
            byte = self.read(8)
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise ValueError("uvarint too long")
