"""Bit-packed writer and reader.

``BitWriter`` accumulates values of explicit bit widths (MSB-first within
each value, bits packed LSB-first into bytes) and produces a ``bytes``
payload.  ``BitReader`` decodes such a payload.  The pair is used by the
protocol message codecs so transmitted message sizes reflect the exact
number of bits the paper's protocol would put on the wire.
"""

from __future__ import annotations

from collections.abc import Iterable


class BitWriter:
    """Accumulates unsigned integers with explicit bit widths.

    Example::

        w = BitWriter()
        w.write(5, 3)        # three bits
        w.write(1, 1)        # one bit
        payload = w.getvalue()
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._pending_bits = 0

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buffer) + self._pending_bits

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self)

    def write(self, value: int, width: int) -> None:
        """Append ``value`` using exactly ``width`` bits.

        Raises ``ValueError`` if ``value`` does not fit in ``width`` bits.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._accumulator |= value << self._pending_bits
        self._pending_bits += width
        while self._pending_bits >= 8:
            self._buffer.append(self._accumulator & 0xFF)
            self._accumulator >>= 8
            self._pending_bits -= 8

    def write_bit(self, bit: int | bool) -> None:
        """Append a single bit."""
        self.write(1 if bit else 0, 1)

    def write_bits(self, values: Iterable[int], width: int) -> None:
        """Append each value in ``values`` using ``width`` bits."""
        for value in values:
            self.write(value, width)

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes (8 bits each, in order)."""
        for byte in data:
            self.write(byte, 8)

    def write_uvarint(self, value: int) -> None:
        """Append ``value`` as a LEB128-style varint (7 data bits/byte)."""
        if value < 0:
            raise ValueError(f"uvarint value must be non-negative, got {value}")
        while True:
            chunk = value & 0x7F
            value >>= 7
            self.write(chunk | (0x80 if value else 0), 8)
            if not value:
                return

    def getvalue(self) -> bytes:
        """Return the accumulated payload, zero-padding the final byte."""
        result = bytes(self._buffer)
        if self._pending_bits:
            result += bytes([self._accumulator & 0xFF])
        return result


class BitReader:
    """Decodes a payload produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # in bits

    @property
    def remaining_bits(self) -> int:
        """Number of unread bits (including any final-byte padding)."""
        return 8 * len(self._data) - self._position

    def read(self, width: int) -> int:
        """Read an unsigned integer of ``width`` bits.

        Raises ``EOFError`` if fewer than ``width`` bits remain.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if width > self.remaining_bits:
            raise EOFError(
                f"requested {width} bits but only {self.remaining_bits} remain"
            )
        value = 0
        produced = 0
        while produced < width:
            byte_index, bit_offset = divmod(self._position, 8)
            take = min(8 - bit_offset, width - produced)
            chunk = (self._data[byte_index] >> bit_offset) & ((1 << take) - 1)
            value |= chunk << produced
            produced += take
            self._position += take
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read(1)

    def read_bits(self, count: int, width: int) -> list[int]:
        """Read ``count`` values of ``width`` bits each."""
        return [self.read(width) for _ in range(count)]

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` raw bytes."""
        return bytes(self.read(8) for _ in range(count))

    def read_uvarint(self) -> int:
        """Read a varint written by :meth:`BitWriter.write_uvarint`."""
        value = 0
        shift = 0
        while True:
            byte = self.read(8)
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise ValueError("uvarint too long")
