"""Health-aware adaptive retry: AIMD backoff, breakers, deadlines.

:class:`~repro.resilience.retry.RetryPolicy` charges the same schedule
whatever the link is doing.  This module adapts, in the same
simulated-time contract (nothing sleeps; every second is an estimate
charged to recovery accounting):

* :class:`AdaptiveRetryPolicy` — wraps a static schedule in an AIMD
  scale: each failure widens the backoff multiplicatively (the link is
  worse than we thought — stop hammering it), each sustained clean
  streak tightens it additively (the link recovered — stop dawdling).
  Deterministic seeded jitter decorrelates retry timing without
  sacrificing reproducibility.  The embedded
  :class:`~repro.resilience.health.LinkHealthMonitor` turns per-attempt
  evidence into the ``health_score`` reported per file.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-file fail-fast:
  after ``failure_threshold`` consecutive failures the breaker opens and
  refuses further attempts (:class:`~repro.exceptions.CircuitOpenError`)
  until a cooldown of *simulated* seconds has been charged elsewhere in
  the run, after which one half-open probe is admitted.  One poisoned
  file can no longer consume the run's retry budget.
* :class:`DeadlineBudget` — a shared pot of simulated seconds (per file
  or per run).  When it runs dry the supervisor salvages whatever round
  checkpoints exist and degrades gracefully
  (:class:`~repro.exceptions.DeadlineExceededError` carries the partial
  accounting) instead of retrying forever.

See DESIGN.md §14.
"""

from __future__ import annotations

import random

from repro.resilience.health import LinkHealthMonitor, TRANSIENT_SIGNATURES
from repro.resilience.retry import RetryPolicy


class AdaptiveRetryPolicy:
    """AIMD backoff around a static :class:`RetryPolicy` schedule.

    Duck-types the static policy's interface (``max_attempts``,
    ``backoff_seconds``) so the supervisor can hold either.  The backoff
    actually charged is ``schedule * scale * jitter`` where ``scale``
    starts at 1.0, multiplies by ``widen_factor`` on every failure (up to
    ``max_widen``) and subtracts ``tighten_step`` after every
    ``tighten_after``-long clean streak (down to ``min_scale``).  Jitter
    is a deterministic ``±jitter`` fraction from a seeded RNG, drawn once
    per backoff in charge order.

    The policy is stateful and belongs to one supervisor; the parallel
    executor pickles the supervisor per chunk, giving every chunk an
    identical fresh copy — runs stay deterministic for a fixed chunking.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_backoff_s: float = 0.5,
        multiplier: float = 2.0,
        max_backoff_s: float = 30.0,
        seed: int = 0,
        jitter: float = 0.1,
        widen_factor: float = 2.0,
        max_widen: float = 8.0,
        tighten_step: float = 0.25,
        min_scale: float = 0.25,
        tighten_after: int = 2,
        window: int = 16,
    ) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if widen_factor < 1.0:
            raise ValueError(
                f"widen_factor must be >= 1, got {widen_factor}"
            )
        if max_widen < 1.0:
            raise ValueError(f"max_widen must be >= 1, got {max_widen}")
        if tighten_step < 0.0:
            raise ValueError(
                f"tighten_step must be non-negative, got {tighten_step}"
            )
        if not 0.0 < min_scale <= 1.0:
            raise ValueError(
                f"min_scale must be in (0, 1], got {min_scale}"
            )
        if tighten_after < 1:
            raise ValueError(
                f"tighten_after must be >= 1, got {tighten_after}"
            )
        self.schedule = RetryPolicy(
            max_attempts=max_attempts,
            base_backoff_s=base_backoff_s,
            multiplier=multiplier,
            max_backoff_s=max_backoff_s,
        )
        self.seed = seed
        self.jitter = jitter
        self.widen_factor = widen_factor
        self.max_widen = max_widen
        self.tighten_step = tighten_step
        self.min_scale = min_scale
        self.tighten_after = tighten_after
        self.monitor = LinkHealthMonitor(window=window)
        self._rng = random.Random(seed)
        self._scale = 1.0

    # -- static-policy interface --------------------------------------
    @property
    def max_attempts(self) -> int:
        return self.schedule.max_attempts

    @property
    def scale(self) -> float:
        return self._scale

    def backoff_seconds(self, failed_attempts: int) -> float:
        """Scaled, jittered backoff after the ``failed_attempts``-th
        failure.  Consumes one RNG draw; call exactly once per charge."""
        base = self.schedule.backoff_seconds(failed_attempts)
        if base == 0.0:
            return 0.0
        jittered = 1.0
        if self.jitter:
            jittered = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return base * self._scale * jittered

    # -- AIMD control loop --------------------------------------------
    def note_failure(self, signature: str | None = None) -> None:
        """Widen multiplicatively: the link just burnt an attempt.

        Non-transient signatures (decode, stall, protocol) indict the
        *rung*, not the link, so they do not widen the backoff — the
        router answers them by descending the ladder instead.
        """
        if signature is not None and signature not in TRANSIENT_SIGNATURES:
            return
        self._scale = min(self._scale * self.widen_factor, self.max_widen)

    def note_success(self) -> None:
        """Tighten additively once the link has proven itself again."""
        if (
            self.monitor.clean_streak >= self.tighten_after
            and self._scale > self.min_scale
        ):
            self._scale = max(self.min_scale, self._scale - self.tighten_step)


class BreakerState:
    """Circuit-breaker states (string enum, serialises into reports)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Fail-fast guard for one file's retry budget, in simulated time.

    CLOSED admits every attempt.  ``failure_threshold`` *consecutive*
    failures trip it OPEN: attempts are refused until ``cooldown_s``
    simulated seconds pass on the caller's clock, after which the next
    ``allow`` admits a single HALF_OPEN probe.  A successful probe closes
    the breaker and resets the cooldown; a failed one re-opens it with
    the cooldown multiplied by ``cooldown_multiplier`` (capped at
    ``max_cooldown_s``), so a persistently dead file backs itself off the
    schedule entirely.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 60.0,
        cooldown_multiplier: float = 2.0,
        max_cooldown_s: float = 900.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0.0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        if cooldown_multiplier < 1.0:
            raise ValueError(
                f"cooldown_multiplier must be >= 1, got {cooldown_multiplier}"
            )
        if max_cooldown_s < cooldown_s:
            raise ValueError("max_cooldown_s must be >= cooldown_s")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.cooldown_multiplier = cooldown_multiplier
        self.max_cooldown_s = max_cooldown_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self._open_until = 0.0
        self._current_cooldown = cooldown_s

    def allow(self, now: float) -> bool:
        """May an attempt proceed at simulated time ``now``?"""
        if self.state == BreakerState.CLOSED:
            return True
        if self.state == BreakerState.OPEN:
            if now >= self._open_until:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: the probe is in flight

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if (
            self.state == BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            self._trip(now)

    def record_success(self, now: float) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._current_cooldown = self.cooldown_s

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opens += 1
        self._open_until = now + self._current_cooldown
        self._current_cooldown = min(
            self._current_cooldown * self.cooldown_multiplier,
            self.max_cooldown_s,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state}, "
            f"failures={self.consecutive_failures}, opens={self.opens})"
        )


class BreakerBoard:
    """Per-file breakers sharing one simulated clock.

    The clock advances whenever the supervisor charges simulated seconds
    (backoff, wasted transfer, successful transfer), so an open breaker's
    cooldown elapses as the *rest of the run* makes progress — exactly
    the semantics of "come back to this file later".
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 60.0,
        cooldown_multiplier: float = 2.0,
        max_cooldown_s: float = 900.0,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.cooldown_multiplier = cooldown_multiplier
        self.max_cooldown_s = max_cooldown_s
        self.clock = 0.0
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, name: str | None) -> CircuitBreaker:
        key = name if name is not None else "<anonymous>"
        found = self._breakers.get(key)
        if found is None:
            found = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
                cooldown_multiplier=self.cooldown_multiplier,
                max_cooldown_s=self.max_cooldown_s,
            )
            self._breakers[key] = found
        return found

    def advance(self, seconds: float) -> None:
        if seconds > 0.0:
            self.clock += seconds

    @property
    def total_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())


class DeadlineBudget:
    """A pot of simulated seconds shared by everything charged to it."""

    def __init__(self, total_s: float) -> None:
        if total_s <= 0.0:
            raise ValueError(f"total_s must be > 0, got {total_s}")
        self.total_s = total_s
        self.spent_s = 0.0

    def charge(self, seconds: float) -> None:
        if seconds > 0.0:
            self.spent_s += seconds

    @property
    def remaining_s(self) -> float:
        return max(0.0, self.total_s - self.spent_s)

    @property
    def exhausted(self) -> bool:
        return self.spent_s >= self.total_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeadlineBudget(spent={self.spent_s:.1f}s "
            f"of {self.total_s:.1f}s)"
        )
